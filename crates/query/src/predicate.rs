//! Predicates: the decomposition into predicate functions and intervals.
//!
//! Following §2.2 of the paper, each predicate `P_i` of a query
//! `Q = P_1 ∧ … ∧ P_d` is split into a monotonic *predicate function*
//! `P_F` over the attributes of the referenced relations and a *predicate
//! interval* `P_I = [min, max]` of acceptable function values. Range
//! predicates such as `10 < y < 50` are rewritten into two one-sided
//! predicates so that each side can be refined independently; we therefore
//! canonicalise every predicate to carry exactly one *refinable side*.
//!
//! Join predicates (§2.4) use a delta function `Δ(f1, f2) = |f1 - f2|` with
//! interval `[0, w]`; refining a join by `w` units turns `A.x = B.x` into
//! `|A.x - B.x| <= w`. Categorical predicates (§7.3) score values through an
//! ontology tree.

use std::fmt;
use std::sync::Arc;

use crate::interval::Interval;
use crate::ontology::OntologyTree;

/// Denominator used by Eq. (1) for zero-width (equality / equi-join)
/// intervals: *"For equality join predicates, the denominator is set to
/// 100"* (§2.3). We apply the same convention to any degenerate interval.
pub const EQUIJOIN_WIDTH_BASIS: f64 = 100.0;

/// A fully qualified (or not-yet-resolved) column reference.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct ColRef {
    /// Table the column belongs to; `None` until a binder resolves it.
    pub table: Option<String>,
    /// Column name.
    pub column: String,
}

impl ColRef {
    /// A fully qualified reference `table.column`.
    #[must_use]
    pub fn new(table: impl Into<String>, column: impl Into<String>) -> Self {
        Self {
            table: Some(table.into()),
            column: column.into(),
        }
    }

    /// An unqualified reference, to be resolved by a binder.
    #[must_use]
    pub fn bare(column: impl Into<String>) -> Self {
        Self {
            table: None,
            column: column.into(),
        }
    }
}

impl fmt::Display for ColRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.table {
            Some(t) => write!(f, "{t}.{}", self.column),
            None => write!(f, "{}", self.column),
        }
    }
}

/// A linear expression `scale * column + offset`, enough to express the
/// paper's non-equi join example `2*A.x < 3*B.x` (§2.2).
#[derive(Debug, Clone, PartialEq)]
pub struct LinearExpr {
    /// Multiplicative coefficient.
    pub scale: f64,
    /// The referenced column.
    pub col: ColRef,
    /// Additive constant.
    pub offset: f64,
}

impl LinearExpr {
    /// The identity expression over a column (`1 * col + 0`).
    #[must_use]
    pub fn col(col: ColRef) -> Self {
        Self {
            scale: 1.0,
            col,
            offset: 0.0,
        }
    }

    /// Evaluates the expression for a raw attribute value.
    #[must_use]
    pub fn eval(&self, v: f64) -> f64 {
        self.scale * v + self.offset
    }
}

impl fmt::Display for LinearExpr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if (self.scale - 1.0).abs() > f64::EPSILON {
            write!(f, "{}*{}", self.scale, self.col)?;
        } else {
            write!(f, "{}", self.col)?;
        }
        if self.offset.abs() > f64::EPSILON {
            write!(f, "{:+}", self.offset)?;
        }
        Ok(())
    }
}

/// The predicate function `P_F` (§2.2).
#[derive(Debug, Clone, PartialEq)]
pub enum PredFunction {
    /// A selection predicate over a single numeric attribute: `f(τ) = τ.attr`.
    Attr(ColRef),
    /// A join predicate: `f(τ1, τ2) = |left(τ1) - right(τ2)|`, the distance
    /// `Δ` between two predicate functions (§2.2). Equi-joins use identity
    /// expressions and the interval `[0, 0]`.
    JoinDelta {
        /// Expression over the left relation.
        left: LinearExpr,
        /// Expression over the right relation.
        right: LinearExpr,
    },
    /// A categorical predicate scored through an ontology tree (§7.3): the
    /// refinement score of a value is the number of roll-up levels needed
    /// for the accepted set to generalise over it, as a percentage of the
    /// tree height.
    Categorical {
        /// The (string-typed) column.
        col: ColRef,
        /// The taxonomy used to measure roll-up distance.
        ontology: Arc<OntologyTree>,
        /// Accepted leaf values of the original query.
        accepted: Vec<String>,
    },
}

/// Which side of the predicate interval may be refined.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RefineSide {
    /// The lower bound may move down (`y > 10` refines toward smaller `y`).
    Lower,
    /// The upper bound may move up (`y < 50`, join widths, roll-ups).
    Upper,
}

/// A canonical one-sided predicate: function, interval of acceptable values,
/// the refinable side, and refinement metadata.
#[derive(Debug, Clone, PartialEq)]
pub struct Predicate {
    /// The predicate function `P_F`.
    pub func: PredFunction,
    /// The interval `P_I` of acceptable function values.
    pub interval: Interval,
    /// Which bound of `interval` moves when the predicate is refined.
    pub refine: RefineSide,
    /// `false` for NOREFINE predicates, which never contribute a refinement
    /// dimension and exclude any tuple outside their interval.
    pub refinable: bool,
    /// Optional cap (in PScore percent) on how far this predicate may be
    /// refined (§7.1 "maximum refinement limits on predicates").
    pub max_refinement: Option<f64>,
    /// Overrides the Eq. (1) denominator. Used by the §7.2 contraction
    /// transform, which anchors a predicate at its minimum (zero-width
    /// interval) while keeping the original predicate's refinement scale.
    pub basis_override: Option<f64>,
    /// The attribute's domain in the data, when known; expansion past the
    /// domain admits no further tuples, so search can stop there.
    pub domain: Option<Interval>,
    /// Human-readable label used when rendering refined queries back to SQL.
    pub label: String,
}

impl Predicate {
    /// A refinable one-sided selection predicate.
    #[must_use]
    pub fn select(col: ColRef, interval: Interval, refine: RefineSide) -> Self {
        let label = col.to_string();
        Self {
            func: PredFunction::Attr(col),
            interval,
            refine,
            refinable: true,
            max_refinement: None,
            basis_override: None,
            domain: None,
            label,
        }
    }

    /// A refinable equi-join predicate `left = right` (delta interval
    /// `[0, 0]`, refined into a band `|left - right| <= w`).
    #[must_use]
    pub fn equi_join(left: ColRef, right: ColRef) -> Self {
        let label = format!("{left}={right}");
        Self {
            func: PredFunction::JoinDelta {
                left: LinearExpr::col(left),
                right: LinearExpr::col(right),
            },
            interval: Interval::point(0.0),
            refine: RefineSide::Upper,
            refinable: true,
            max_refinement: None,
            basis_override: None,
            domain: None,
            label,
        }
    }

    /// A refinable band-join predicate `|left - right| <= width`.
    #[must_use]
    pub fn band_join(left: LinearExpr, right: LinearExpr, width: f64) -> Self {
        let label = format!("|{left}-{right}|<={width}");
        Self {
            func: PredFunction::JoinDelta { left, right },
            interval: Interval::new(0.0, width),
            refine: RefineSide::Upper,
            refinable: true,
            max_refinement: None,
            basis_override: None,
            domain: None,
            label,
        }
    }

    /// A categorical predicate accepting the given ontology leaves (§7.3).
    #[must_use]
    pub fn categorical(col: ColRef, ontology: Arc<OntologyTree>, accepted: Vec<String>) -> Self {
        let height = ontology.height().max(1) as f64;
        let label = format!("{col} IN {{{}}}", accepted.join(", "));
        Self {
            func: PredFunction::Categorical {
                col,
                ontology,
                accepted,
            },
            // Score space: 0 .. 100, one roll-up level = 100/height percent.
            interval: Interval::point(0.0),
            refine: RefineSide::Upper,
            refinable: true,
            max_refinement: Some(height * (100.0 / height)),
            basis_override: None,
            domain: Some(Interval::new(0.0, 100.0)),
            label,
        }
    }

    /// Marks the predicate NOREFINE and returns it.
    #[must_use]
    pub fn no_refine(mut self) -> Self {
        self.refinable = false;
        self
    }

    /// Sets the refinement cap (§7.1) and returns the predicate.
    #[must_use]
    pub fn with_max_refinement(mut self, cap: f64) -> Self {
        self.max_refinement = Some(cap);
        self
    }

    /// Sets the attribute domain and returns the predicate.
    #[must_use]
    pub fn with_domain(mut self, domain: Interval) -> Self {
        self.domain = Some(domain);
        self
    }

    /// Sets the display label and returns the predicate.
    #[must_use]
    pub fn with_label(mut self, label: impl Into<String>) -> Self {
        self.label = label.into();
        self
    }

    /// The denominator of Eq. (1): the interval width, or
    /// [`EQUIJOIN_WIDTH_BASIS`] for degenerate intervals.
    #[must_use]
    pub fn width_basis(&self) -> f64 {
        if let Some(b) = self.basis_override {
            return b;
        }
        let w = self.interval.width();
        if w > 0.0 {
            w
        } else {
            EQUIJOIN_WIDTH_BASIS
        }
    }

    /// Sets an explicit Eq. (1) denominator and returns the predicate.
    #[must_use]
    pub fn with_width_basis(mut self, basis: f64) -> Self {
        assert!(basis > 0.0 && basis.is_finite());
        self.basis_override = Some(basis);
        self
    }

    /// The PScore (percent refinement, Eq. 1) needed to admit a tuple whose
    /// predicate-function value is `v`:
    ///
    /// * `0` when `v` already satisfies the predicate;
    /// * the percent departure of the refined bound when `v` lies beyond the
    ///   refinable side;
    /// * `+∞` when `v` violates the fixed side or the predicate is NOREFINE,
    ///   or when the required refinement exceeds `max_refinement`.
    ///
    /// ```
    /// use acq_query::{ColRef, Interval, Predicate, RefineSide};
    ///
    /// // The paper's Q3 predicate: B.y < 50 with min(B.y) = 0.
    /// let p = Predicate::select(ColRef::new("B", "y"), Interval::new(0.0, 50.0),
    ///                           RefineSide::Upper);
    /// assert_eq!(p.score_value(25.0), 0.0);   // already satisfied
    /// assert_eq!(p.score_value(60.0), 20.0);  // Example 3: widen to [0, 60]
    /// assert!(p.score_value(-1.0).is_infinite()); // fixed side violated
    /// ```
    #[must_use]
    pub fn score_value(&self, v: f64) -> f64 {
        if v.is_nan() {
            return f64::INFINITY;
        }
        if self.interval.contains(v) {
            return 0.0;
        }
        if !self.refinable {
            return f64::INFINITY;
        }
        let score = match self.refine {
            RefineSide::Upper => {
                if v < self.interval.lo() {
                    return f64::INFINITY;
                }
                (v - self.interval.hi()) / self.width_basis() * 100.0
            }
            RefineSide::Lower => {
                if v > self.interval.hi() {
                    return f64::INFINITY;
                }
                (self.interval.lo() - v) / self.width_basis() * 100.0
            }
        };
        match self.max_refinement {
            Some(cap) if score > cap => f64::INFINITY,
            _ => score,
        }
    }

    /// The PScore needed to admit a categorical value `v` (§7.3): the number
    /// of roll-up levels required for the accepted set to cover `v`, as a
    /// percentage of the ontology height. Returns `+∞` for NOREFINE
    /// predicates whose accepted set does not contain `v`, or for values
    /// absent from the ontology.
    #[must_use]
    pub fn score_category(&self, v: &str) -> f64 {
        let PredFunction::Categorical {
            ontology, accepted, ..
        } = &self.func
        else {
            return f64::INFINITY;
        };
        if accepted.iter().any(|a| a == v) {
            return 0.0;
        }
        if !self.refinable {
            return f64::INFINITY;
        }
        let height = ontology.height().max(1) as f64;
        let Some(levels) = ontology.rollup_distance(accepted, v) else {
            return f64::INFINITY;
        };
        let score = levels as f64 * (100.0 / height);
        match self.max_refinement {
            Some(cap) if score > cap => f64::INFINITY,
            _ => score,
        }
    }

    /// The interval obtained by refining this predicate by `score` percent
    /// (the inverse of [`Predicate::score_value`]).
    #[must_use]
    pub fn refined_interval(&self, score: f64) -> Interval {
        debug_assert!(score >= 0.0 && score.is_finite());
        let amount = score / 100.0 * self.width_basis();
        match self.refine {
            RefineSide::Upper => self.interval.expand_upper(amount),
            RefineSide::Lower => self.interval.expand_lower(amount),
        }
    }

    /// The PScore of a given refined interval relative to this predicate's
    /// original interval — Eq. (1):
    /// `(|Δmin| + |Δmax|) / width * 100`.
    #[must_use]
    pub fn refinement_of(&self, refined: &Interval) -> f64 {
        let dlo = (self.interval.lo() - refined.lo()).abs();
        let dhi = (self.interval.hi() - refined.hi()).abs();
        (dlo + dhi) / self.width_basis() * 100.0
    }

    /// The largest PScore that can still admit new tuples, i.e. the score at
    /// which the refined interval covers the whole attribute domain. Returns
    /// `None` when the domain is unknown.
    #[must_use]
    pub fn max_useful_score(&self) -> Option<f64> {
        let domain = self.domain?;
        let gap = match self.refine {
            RefineSide::Upper => (domain.hi() - self.interval.hi()).max(0.0),
            RefineSide::Lower => (self.interval.lo() - domain.lo()).max(0.0),
        };
        let mut score = gap / self.width_basis() * 100.0;
        if let Some(cap) = self.max_refinement {
            score = score.min(cap);
        }
        Some(score)
    }

    /// Whether this is a join predicate.
    #[must_use]
    pub fn is_join(&self) -> bool {
        matches!(self.func, PredFunction::JoinDelta { .. })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn upper_pred() -> Predicate {
        // B.y < 50 with min(B.y) = 0  =>  interval [0, 50], refine Upper.
        Predicate::select(
            ColRef::new("B", "y"),
            Interval::new(0.0, 50.0),
            RefineSide::Upper,
        )
    }

    #[test]
    fn score_zero_inside_interval() {
        let p = upper_pred();
        assert_eq!(p.score_value(0.0), 0.0);
        assert_eq!(p.score_value(25.0), 0.0);
        assert_eq!(p.score_value(50.0), 0.0);
    }

    #[test]
    fn score_is_percent_overshoot_of_width() {
        let p = upper_pred();
        // Example 3 of the paper: widening [0,50] to [0,60] is a PScore of 20.
        assert!((p.score_value(60.0) - 20.0).abs() < 1e-12);
        assert!((p.score_value(75.0) - 50.0).abs() < 1e-12);
    }

    #[test]
    fn fixed_side_violation_is_infinite() {
        let p = upper_pred();
        assert!(p.score_value(-1.0).is_infinite());
        let mut lower = upper_pred();
        lower.refine = RefineSide::Lower;
        assert!(lower.score_value(51.0).is_infinite());
        assert!((lower.score_value(-25.0) - 50.0).abs() < 1e-12);
    }

    #[test]
    fn norefine_scores_infinite_outside() {
        let p = upper_pred().no_refine();
        assert_eq!(p.score_value(10.0), 0.0);
        assert!(p.score_value(51.0).is_infinite());
    }

    #[test]
    fn max_refinement_caps_score() {
        let p = upper_pred().with_max_refinement(30.0);
        assert!((p.score_value(60.0) - 20.0).abs() < 1e-12);
        assert!(p.score_value(80.0).is_infinite()); // would need 60%
    }

    #[test]
    fn equijoin_uses_denominator_100() {
        let p = Predicate::equi_join(ColRef::new("A", "x"), ColRef::new("B", "x"));
        // |A.x - B.x| = 10 requires widening to [0, 10]; with denominator 100
        // that is a PScore of exactly 10 (the paper's §2.4 example).
        assert!((p.score_value(10.0) - 10.0).abs() < 1e-12);
        assert_eq!(p.score_value(0.0), 0.0);
    }

    #[test]
    fn refined_interval_roundtrips_with_score() {
        let p = upper_pred();
        let refined = p.refined_interval(20.0);
        assert_eq!(refined, Interval::new(0.0, 60.0));
        assert!((p.refinement_of(&refined) - 20.0).abs() < 1e-12);
        // Any value admitted by the refined interval scores <= 20.
        assert!(p.score_value(59.9) <= 20.0);
        assert!(p.score_value(60.1) > 20.0);
    }

    #[test]
    fn join_refined_interval() {
        let p = Predicate::equi_join(ColRef::new("A", "x"), ColRef::new("B", "x"));
        let refined = p.refined_interval(10.0);
        assert_eq!(refined, Interval::new(0.0, 10.0));
    }

    #[test]
    fn max_useful_score_stops_at_domain() {
        let p = upper_pred().with_domain(Interval::new(0.0, 100.0));
        assert!((p.max_useful_score().unwrap() - 100.0).abs() < 1e-12);
        let capped = upper_pred()
            .with_domain(Interval::new(0.0, 100.0))
            .with_max_refinement(40.0);
        assert!((capped.max_useful_score().unwrap() - 40.0).abs() < 1e-12);
    }

    #[test]
    fn nan_scores_infinite() {
        assert!(upper_pred().score_value(f64::NAN).is_infinite());
    }

    #[test]
    fn linear_expr_eval_and_display() {
        let e = LinearExpr {
            scale: 2.0,
            col: ColRef::new("A", "x"),
            offset: 0.0,
        };
        assert_eq!(e.eval(3.0), 6.0);
        assert_eq!(e.to_string(), "2*A.x");
        let id = LinearExpr::col(ColRef::new("B", "y"));
        assert_eq!(id.eval(5.0), 5.0);
        assert_eq!(id.to_string(), "B.y");
    }
}

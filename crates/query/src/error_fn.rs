//! Aggregate error measures (§2.5).

use std::fmt;

use crate::aggregate::{AggFunc, CmpOp};

/// Measures the discrepancy between the expected aggregate value `A_exp` and
/// the actual value `A_actual` of a refined query.
///
/// §2.5 of the paper: the relative error `|A_exp - A_actual| / A_exp` is
/// appropriate for COUNT and AVG, while a *hinge* function that only
/// penalises undershoot suits SUM, MIN and MAX (overshooting
/// `SUM(ps_availqty) >= 100K` is fine; undershooting is not). The design is
/// user-overridable — these are the paper's sensible defaults.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AggErrorFn {
    /// `|A_exp - A_actual| / A_exp` (Eq. 4).
    Relative,
    /// `max(0, (A_exp - A_actual) / A_exp)`: the paper's hinge measure,
    /// normalised by the target so a single threshold `δ` applies across
    /// aggregates of different magnitudes.
    HingeRelative,
    /// `max(0, A_exp - A_actual)`: the literal hinge of §2.5.
    HingeAbsolute,
    /// `max(0, (A_actual - A_exp) / A_exp)`: the mirrored hinge used by the
    /// §7.2 contraction extension for `<=`/`<` constraints, where only
    /// overshooting the target is an error.
    HingeRelativeAbove,
}

impl AggErrorFn {
    /// Computes the error for `(expected, actual)`.
    ///
    /// A zero `expected` with the relative measures is degenerate: the error
    /// is `0` when `actual` is also zero and `+∞` otherwise.
    #[must_use]
    pub fn error(&self, expected: f64, actual: f64) -> f64 {
        match self {
            Self::Relative => {
                if expected == 0.0 {
                    if actual == 0.0 {
                        0.0
                    } else {
                        f64::INFINITY
                    }
                } else {
                    (expected - actual).abs() / expected.abs()
                }
            }
            Self::HingeRelative => {
                if expected == 0.0 {
                    0.0
                } else {
                    ((expected - actual) / expected.abs()).max(0.0)
                }
            }
            Self::HingeAbsolute => (expected - actual).max(0.0),
            Self::HingeRelativeAbove => {
                if expected == 0.0 {
                    if actual <= 0.0 {
                        0.0
                    } else {
                        f64::INFINITY
                    }
                } else {
                    ((actual - expected) / expected.abs()).max(0.0)
                }
            }
        }
    }

    /// The paper's default error function per constraint operator: the
    /// symmetric relative error (Eq. 4, "appropriate for aggregates such as
    /// COUNT or AVG") for `=` constraints, and the one-sided hinge (§2.5)
    /// for inequality constraints, where overshooting in the allowed
    /// direction costs nothing.
    #[must_use]
    pub fn default_for(_func: &AggFunc, op: CmpOp) -> Self {
        match op {
            CmpOp::Eq => Self::Relative,
            CmpOp::Ge | CmpOp::Gt => Self::HingeRelative,
            CmpOp::Le | CmpOp::Lt => Self::HingeRelativeAbove,
        }
    }
}

impl fmt::Display for AggErrorFn {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Relative => write!(f, "relative"),
            Self::HingeRelative => write!(f, "hinge-relative"),
            Self::HingeAbsolute => write!(f, "hinge-absolute"),
            Self::HingeRelativeAbove => write!(f, "hinge-relative-above"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn relative_error_is_symmetric() {
        let e = AggErrorFn::Relative;
        assert!((e.error(100.0, 90.0) - 0.1).abs() < 1e-12);
        assert!((e.error(100.0, 110.0) - 0.1).abs() < 1e-12);
        assert_eq!(e.error(100.0, 100.0), 0.0);
    }

    #[test]
    fn hinge_only_penalises_undershoot() {
        let e = AggErrorFn::HingeRelative;
        assert!((e.error(100.0, 80.0) - 0.2).abs() < 1e-12);
        assert_eq!(e.error(100.0, 150.0), 0.0);
        let a = AggErrorFn::HingeAbsolute;
        assert_eq!(a.error(100.0, 80.0), 20.0);
        assert_eq!(a.error(100.0, 150.0), 0.0);
    }

    #[test]
    fn zero_expected_is_handled() {
        assert_eq!(AggErrorFn::Relative.error(0.0, 0.0), 0.0);
        assert!(AggErrorFn::Relative.error(0.0, 5.0).is_infinite());
        assert_eq!(AggErrorFn::HingeRelative.error(0.0, 5.0), 0.0);
    }

    #[test]
    fn hinge_above_penalises_overshoot_only() {
        let e = AggErrorFn::HingeRelativeAbove;
        assert_eq!(e.error(100.0, 80.0), 0.0);
        assert!((e.error(100.0, 130.0) - 0.3).abs() < 1e-12);
        assert_eq!(e.error(0.0, 0.0), 0.0);
        assert!(e.error(0.0, 5.0).is_infinite());
    }

    #[test]
    fn defaults_match_paper() {
        assert_eq!(
            AggErrorFn::default_for(&AggFunc::Count, CmpOp::Eq),
            AggErrorFn::Relative
        );
        assert_eq!(
            AggErrorFn::default_for(&AggFunc::Avg, CmpOp::Ge),
            AggErrorFn::HingeRelative
        );
        assert_eq!(
            AggErrorFn::default_for(&AggFunc::Sum, CmpOp::Ge),
            AggErrorFn::HingeRelative
        );
        assert_eq!(
            AggErrorFn::default_for(&AggFunc::Max, CmpOp::Gt),
            AggErrorFn::HingeRelative
        );
        assert_eq!(
            AggErrorFn::default_for(&AggFunc::Count, CmpOp::Le),
            AggErrorFn::HingeRelativeAbove
        );
    }
}

//! Aggregate constraints: the `CONSTRAINT AGG(attr) Op X` clause (§2.1).

use std::fmt;

use crate::predicate::ColRef;

/// The aggregate function of an ACQ constraint.
///
/// The technique requires the *optimal substructure property* (OSP, §2.6):
/// the aggregate of a containing query must be computable from the aggregates
/// of a contained query and of their difference, without re-reading the
/// contained query's tuples. COUNT, SUM, MIN and MAX satisfy it directly;
/// AVG decomposes into SUM and COUNT; STDDEV does not satisfy it and is
/// rejected at construction time (see [`AggFunc::from_name`]).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum AggFunc {
    /// `COUNT(*)` — result-set cardinality.
    Count,
    /// `SUM(attr)`.
    Sum,
    /// `MIN(attr)`. Note `MIN(x) = -MAX(-x)`, which is how the paper's §8.4.6
    /// evaluates it.
    Min,
    /// `MAX(attr)`.
    Max,
    /// `AVG(attr)`, decomposed into SUM and COUNT (§2.6).
    Avg,
    /// A named user-defined aggregate registered with the engine. The
    /// registry guarantees the OSP by construction (UDAs are defined through
    /// a mergeable-state interface).
    Uda(String),
}

impl AggFunc {
    /// Parses an aggregate name, rejecting aggregates without the OSP.
    pub fn from_name(name: &str) -> Result<Self, String> {
        match name.to_ascii_uppercase().as_str() {
            "COUNT" => Ok(Self::Count),
            "SUM" => Ok(Self::Sum),
            "MIN" => Ok(Self::Min),
            "MAX" => Ok(Self::Max),
            "AVG" | "AVERAGE" => Ok(Self::Avg),
            "STDDEV" | "STDEV" | "VARIANCE" | "VAR" => Err(format!(
                "aggregate {name} lacks the optimal substructure property (\u{a7}2.6) \
                 and cannot be processed incrementally"
            )),
            other => Ok(Self::Uda(other.to_string())),
        }
    }

    /// Whether the aggregate takes a column argument (`COUNT(*)` does not).
    #[must_use]
    pub fn needs_column(&self) -> bool {
        !matches!(self, Self::Count)
    }
}

impl fmt::Display for AggFunc {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Count => write!(f, "COUNT"),
            Self::Sum => write!(f, "SUM"),
            Self::Min => write!(f, "MIN"),
            Self::Max => write!(f, "MAX"),
            Self::Avg => write!(f, "AVG"),
            Self::Uda(name) => write!(f, "{name}"),
        }
    }
}

/// An aggregate expression `AGG(attr)` or `COUNT(*)`.
#[derive(Debug, Clone, PartialEq)]
pub struct AggregateSpec {
    /// The aggregate function.
    pub func: AggFunc,
    /// The aggregated column; `None` only for `COUNT(*)`.
    pub col: Option<ColRef>,
}

impl AggregateSpec {
    /// `COUNT(*)`.
    #[must_use]
    pub fn count() -> Self {
        Self {
            func: AggFunc::Count,
            col: None,
        }
    }

    /// `SUM(col)`.
    #[must_use]
    pub fn sum(col: ColRef) -> Self {
        Self {
            func: AggFunc::Sum,
            col: Some(col),
        }
    }

    /// `MIN(col)`.
    #[must_use]
    pub fn min(col: ColRef) -> Self {
        Self {
            func: AggFunc::Min,
            col: Some(col),
        }
    }

    /// `MAX(col)`.
    #[must_use]
    pub fn max(col: ColRef) -> Self {
        Self {
            func: AggFunc::Max,
            col: Some(col),
        }
    }

    /// `AVG(col)`.
    #[must_use]
    pub fn avg(col: ColRef) -> Self {
        Self {
            func: AggFunc::Avg,
            col: Some(col),
        }
    }

    /// A named user-defined aggregate over a column.
    #[must_use]
    pub fn uda(name: impl Into<String>, col: ColRef) -> Self {
        Self {
            func: AggFunc::Uda(name.into()),
            col: Some(col),
        }
    }
}

impl fmt::Display for AggregateSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.col {
            Some(c) => write!(f, "{}({c})", self.func),
            None => write!(f, "{}(*)", self.func),
        }
    }
}

/// Comparison operator of an aggregate constraint.
///
/// The paper's main algorithm expands queries to meet `=`, `>=` and `>`
/// constraints; `<=`/`<` constraints are handled by the contraction
/// extension (§7.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CmpOp {
    /// `=`
    Eq,
    /// `>=`
    Ge,
    /// `>`
    Gt,
    /// `<=` (contraction, §7.2)
    Le,
    /// `<` (contraction, §7.2)
    Lt,
}

impl CmpOp {
    /// Whether the comparison holds for `actual Op target`.
    #[must_use]
    pub fn satisfied(&self, actual: f64, target: f64) -> bool {
        match self {
            Self::Eq => actual == target,
            Self::Ge => actual >= target,
            Self::Gt => actual > target,
            Self::Le => actual <= target,
            Self::Lt => actual < target,
        }
    }

    /// Whether the constraint calls for *expanding* the query (the query
    /// undershoots and must admit more tuples): `=`, `>=`, `>`.
    #[must_use]
    pub fn is_expanding(&self) -> bool {
        matches!(self, Self::Eq | Self::Ge | Self::Gt)
    }
}

impl fmt::Display for CmpOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Self::Eq => "=",
            Self::Ge => ">=",
            Self::Gt => ">",
            Self::Le => "<=",
            Self::Lt => "<",
        };
        write!(f, "{s}")
    }
}

/// The full `CONSTRAINT AGG(attr) Op X` clause: an aggregate, a comparison
/// operator, and the expected aggregate value `A_exp` (a positive number,
/// §2.1).
#[derive(Debug, Clone, PartialEq)]
pub struct AggConstraint {
    /// Aggregate expression.
    pub spec: AggregateSpec,
    /// Comparison operator.
    pub op: CmpOp,
    /// The expected aggregate value `A_exp`.
    pub target: f64,
}

impl AggConstraint {
    /// Creates a constraint.
    #[must_use]
    pub fn new(spec: AggregateSpec, op: CmpOp, target: f64) -> Self {
        Self { spec, op, target }
    }
}

impl fmt::Display for AggConstraint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "CONSTRAINT {} {} {}", self.spec, self.op, self.target)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_name_accepts_osp_aggregates() {
        assert_eq!(AggFunc::from_name("count").unwrap(), AggFunc::Count);
        assert_eq!(AggFunc::from_name("Sum").unwrap(), AggFunc::Sum);
        assert_eq!(AggFunc::from_name("AVG").unwrap(), AggFunc::Avg);
        assert_eq!(AggFunc::from_name("AVERAGE").unwrap(), AggFunc::Avg);
        assert_eq!(AggFunc::from_name("MIN").unwrap(), AggFunc::Min);
        assert_eq!(AggFunc::from_name("MAX").unwrap(), AggFunc::Max);
    }

    #[test]
    fn stddev_rejected_for_missing_osp() {
        let err = AggFunc::from_name("STDDEV").unwrap_err();
        assert!(err.contains("optimal substructure"));
        assert!(AggFunc::from_name("variance").is_err());
    }

    #[test]
    fn unknown_names_become_udas() {
        assert_eq!(
            AggFunc::from_name("geomean").unwrap(),
            AggFunc::Uda("GEOMEAN".into())
        );
    }

    #[test]
    fn count_needs_no_column() {
        assert!(!AggFunc::Count.needs_column());
        assert!(AggFunc::Sum.needs_column());
    }

    #[test]
    fn cmp_semantics() {
        assert!(CmpOp::Eq.satisfied(5.0, 5.0));
        assert!(!CmpOp::Eq.satisfied(5.0, 6.0));
        assert!(CmpOp::Ge.satisfied(6.0, 5.0));
        assert!(!CmpOp::Gt.satisfied(5.0, 5.0));
        assert!(CmpOp::Le.satisfied(5.0, 5.0));
        assert!(CmpOp::Lt.satisfied(4.0, 5.0));
    }

    #[test]
    fn expansion_direction() {
        assert!(CmpOp::Eq.is_expanding());
        assert!(CmpOp::Ge.is_expanding());
        assert!(CmpOp::Gt.is_expanding());
        assert!(!CmpOp::Le.is_expanding());
        assert!(!CmpOp::Lt.is_expanding());
    }

    #[test]
    fn display_forms() {
        let c = AggConstraint::new(
            AggregateSpec::sum(ColRef::new("partsupp", "ps_availqty")),
            CmpOp::Ge,
            100_000.0,
        );
        assert_eq!(
            c.to_string(),
            "CONSTRAINT SUM(partsupp.ps_availqty) >= 100000"
        );
        assert_eq!(AggregateSpec::count().to_string(), "COUNT(*)");
    }
}

//! Predicate refinement vectors (§2.3, Eq. 2).

/// A predicate refinement vector `PScore(Q, Q') = (PScore_1, …, PScore_d)`
/// over the *flexible* predicates of a query, in percent units.
pub type PScores = Vec<f64>;

/// Component-wise dominance: `a` dominates `b` when `a_i <= b_i` for every
/// `i`. This is exactly the paper's *query containment* relation (§5.1): a
/// refined query `Q'` is contained in `Q''` iff `PScore(Q, Q')` dominates
/// `PScore(Q, Q'')`, in which case every result of `Q'` is a result of
/// `Q''` (Theorem 3).
#[must_use]
pub fn dominates(a: &[f64], b: &[f64]) -> bool {
    debug_assert_eq!(a.len(), b.len());
    a.iter().zip(b).all(|(x, y)| x <= y)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dominance_is_componentwise() {
        assert!(dominates(&[0.0, 1.0], &[0.0, 2.0]));
        assert!(dominates(&[1.0, 1.0], &[1.0, 1.0]));
        assert!(!dominates(&[2.0, 0.0], &[1.0, 5.0]));
    }

    #[test]
    fn empty_vectors_trivially_dominate() {
        assert!(dominates(&[], &[]));
    }
}

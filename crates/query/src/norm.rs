//! Vector norms folding a predicate refinement vector into a `QScore` (§2.3).
//!
//! The query refinement score of a refined query `Q'` is a monotonic
//! function `f : R^d -> R` of the predicate refinement vector
//! `PScore(Q, Q')`; the paper uses weighted vector p-norms, with `L1` as the
//! default (Eq. 3). `L∞` is special-cased in the Expand phase because its
//! query-layers are L-shaped rather than planar (§4). Weighted norms are the
//! paper's §7.1 mechanism for expressing refinement preferences.

use std::fmt;

/// A (possibly weighted) vector norm over predicate refinement scores.
#[derive(Debug, Clone, PartialEq, Default)]
pub enum Norm {
    /// The default `L1` norm: `QScore = Σ PScore_i` (Eq. 3).
    #[default]
    L1,
    /// A general `Lp` norm, `p >= 1`.
    Lp(f64),
    /// The `L∞` norm: `QScore = max_i PScore_i`.
    LInf,
    /// A weighted `Lp` norm (`LWp`, §7.1): weights scale each predicate's
    /// refinement before the norm is taken, steering refinement away from
    /// heavily weighted predicates.
    WeightedLp {
        /// The exponent `p >= 1`.
        p: f64,
        /// Per-flexible-predicate weights, all `> 0`.
        weights: Vec<f64>,
    },
}

impl Norm {
    /// Computes `QScore(Q, Q')` from the predicate refinement vector.
    ///
    /// Entries must be non-negative; `+∞` entries propagate to an infinite
    /// QScore (a query that cannot be reached by refinement).
    ///
    /// ```
    /// use acq_query::Norm;
    /// assert_eq!(Norm::L1.qscore(&[0.0, 20.0]), 20.0);  // Example 3
    /// assert_eq!(Norm::LInf.qscore(&[5.0, 20.0]), 20.0);
    /// assert!((Norm::Lp(2.0).qscore(&[3.0, 4.0]) - 5.0).abs() < 1e-12);
    /// ```
    #[must_use]
    pub fn qscore(&self, pscores: &[f64]) -> f64 {
        debug_assert!(
            pscores.iter().all(|&s| s >= 0.0),
            "PScores are non-negative"
        );
        match self {
            Norm::L1 => pscores.iter().sum(),
            Norm::Lp(p) => {
                debug_assert!(*p >= 1.0);
                pscores
                    .iter()
                    .map(|s| s.powf(*p))
                    .sum::<f64>()
                    .powf(1.0 / p)
            }
            Norm::LInf => pscores.iter().copied().fold(0.0, f64::max),
            Norm::WeightedLp { p, weights } => {
                debug_assert_eq!(
                    weights.len(),
                    pscores.len(),
                    "one weight per flexible predicate"
                );
                debug_assert!(*p >= 1.0);
                pscores
                    .iter()
                    .zip(weights)
                    .map(|(s, w)| (s * w).powf(*p))
                    .sum::<f64>()
                    .powf(1.0 / p)
            }
        }
    }

    /// Whether this is the `L∞` norm, which the Expand phase enumerates with
    /// Algorithm 2 instead of breadth-first search.
    #[must_use]
    pub fn is_linf(&self) -> bool {
        matches!(self, Norm::LInf)
    }

    /// Validates the norm parameters against a query with `dims` flexible
    /// predicates.
    pub fn validate(&self, dims: usize) -> Result<(), String> {
        match self {
            Norm::L1 | Norm::LInf => Ok(()),
            Norm::Lp(p) => {
                if *p >= 1.0 && p.is_finite() {
                    Ok(())
                } else {
                    Err(format!("Lp norm requires finite p >= 1, got {p}"))
                }
            }
            Norm::WeightedLp { p, weights } => {
                if !(*p >= 1.0 && p.is_finite()) {
                    return Err(format!("weighted Lp norm requires finite p >= 1, got {p}"));
                }
                if weights.len() != dims {
                    return Err(format!(
                        "weighted norm has {} weights but the query has {dims} flexible predicates",
                        weights.len()
                    ));
                }
                if weights.iter().any(|w| *w <= 0.0 || !w.is_finite()) {
                    return Err("weighted norm weights must be finite and > 0".to_string());
                }
                Ok(())
            }
        }
    }
}

impl fmt::Display for Norm {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Norm::L1 => write!(f, "L1"),
            Norm::Lp(p) => write!(f, "L{p}"),
            Norm::LInf => write!(f, "L∞"),
            Norm::WeightedLp { p, .. } => write!(f, "LW{p}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn l1_is_sum() {
        // Example 3: PScore (0, 20) has QScore 20 under L1.
        assert_eq!(Norm::L1.qscore(&[0.0, 20.0]), 20.0);
        assert_eq!(Norm::L1.qscore(&[5.0, 7.0, 8.0]), 20.0);
    }

    #[test]
    fn lp_reduces_to_euclidean_for_p2() {
        let q = Norm::Lp(2.0).qscore(&[3.0, 4.0]);
        assert!((q - 5.0).abs() < 1e-12);
    }

    #[test]
    fn linf_is_max() {
        assert_eq!(Norm::LInf.qscore(&[3.0, 9.0, 1.0]), 9.0);
        assert!(Norm::LInf.is_linf());
        assert!(!Norm::L1.is_linf());
    }

    #[test]
    fn weighted_norm_scales_components() {
        let n = Norm::WeightedLp {
            p: 1.0,
            weights: vec![2.0, 1.0],
        };
        assert_eq!(n.qscore(&[10.0, 10.0]), 30.0);
    }

    #[test]
    fn infinity_propagates() {
        assert!(Norm::L1.qscore(&[1.0, f64::INFINITY]).is_infinite());
        assert!(Norm::LInf.qscore(&[1.0, f64::INFINITY]).is_infinite());
    }

    #[test]
    fn empty_vector_scores_zero() {
        assert_eq!(Norm::L1.qscore(&[]), 0.0);
        assert_eq!(Norm::LInf.qscore(&[]), 0.0);
    }

    #[test]
    fn validation() {
        assert!(Norm::L1.validate(3).is_ok());
        assert!(Norm::Lp(0.5).validate(3).is_err());
        assert!(Norm::WeightedLp {
            p: 1.0,
            weights: vec![1.0, 1.0]
        }
        .validate(3)
        .is_err());
        assert!(Norm::WeightedLp {
            p: 1.0,
            weights: vec![1.0, -1.0, 2.0]
        }
        .validate(3)
        .is_err());
        assert!(Norm::WeightedLp {
            p: 2.0,
            weights: vec![1.0, 1.0, 2.0]
        }
        .validate(3)
        .is_ok());
    }

    #[test]
    fn monotonicity_in_each_component() {
        for norm in [
            Norm::L1,
            Norm::Lp(2.0),
            Norm::LInf,
            Norm::WeightedLp {
                p: 1.5,
                weights: vec![1.0, 3.0],
            },
        ] {
            let base = norm.qscore(&[5.0, 5.0]);
            let bumped = norm.qscore(&[5.0, 6.0]);
            assert!(bumped >= base, "{norm} must be monotone");
        }
    }
}

//! Ontology (taxonomy) trees for categorical predicates (§7.3).
//!
//! The paper measures the refinement distance between categorical values by
//! the relative depths of the values in a taxonomy tree: rolling an accepted
//! category up the tree relaxes the predicate, drilling down contracts it.
//! [`OntologyTree::rollup_distance`] returns the minimal number of roll-up
//! levels an accepted set needs before it generalises over a candidate value,
//! which `acq-query` turns into a PScore.

use std::collections::HashMap;
use std::fmt;

/// Identifier of a node within an [`OntologyTree`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct OntologyNodeId(usize);

/// Errors raised while building or querying an ontology.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum OntologyError {
    /// A node with this name already exists (names must be unique).
    DuplicateName(String),
    /// The referenced parent node does not exist.
    UnknownParent(OntologyNodeId),
    /// The referenced node name does not exist.
    UnknownName(String),
}

impl fmt::Display for OntologyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::DuplicateName(n) => write!(f, "duplicate ontology node name: {n}"),
            Self::UnknownParent(id) => write!(f, "unknown ontology parent id: {:?}", id),
            Self::UnknownName(n) => write!(f, "unknown ontology node name: {n}"),
        }
    }
}

impl std::error::Error for OntologyError {}

#[derive(Debug, Clone, PartialEq, Eq)]
struct Node {
    name: String,
    parent: Option<usize>,
    depth: u32,
}

/// A rooted taxonomy tree over categorical values, e.g. the paper's Fig. 7
/// food-preference and location ontologies.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OntologyTree {
    nodes: Vec<Node>,
    by_name: HashMap<String, usize>,
}

impl OntologyTree {
    /// Creates a tree with a single root node.
    #[must_use]
    pub fn new(root: impl Into<String>) -> Self {
        let root = root.into();
        let mut by_name = HashMap::new();
        by_name.insert(root.clone(), 0);
        Self {
            nodes: vec![Node {
                name: root,
                parent: None,
                depth: 0,
            }],
            by_name,
        }
    }

    /// The root node id.
    #[must_use]
    pub fn root(&self) -> OntologyNodeId {
        OntologyNodeId(0)
    }

    /// Adds a child node under `parent`. Node names must be unique across the
    /// whole tree so values can be referenced by name.
    pub fn add_child(
        &mut self,
        parent: OntologyNodeId,
        name: impl Into<String>,
    ) -> Result<OntologyNodeId, OntologyError> {
        let name = name.into();
        if self.by_name.contains_key(&name) {
            return Err(OntologyError::DuplicateName(name));
        }
        let Some(parent_node) = self.nodes.get(parent.0) else {
            return Err(OntologyError::UnknownParent(parent));
        };
        let depth = parent_node.depth + 1;
        let id = self.nodes.len();
        self.nodes.push(Node {
            name: name.clone(),
            parent: Some(parent.0),
            depth,
        });
        self.by_name.insert(name, id);
        Ok(OntologyNodeId(id))
    }

    /// Convenience: adds a whole path of nodes (creating missing ones) below
    /// the root, returning the id of the last node. Existing prefixes are
    /// reused.
    pub fn add_path(&mut self, path: &[&str]) -> Result<OntologyNodeId, OntologyError> {
        let mut cur = self.root();
        for part in path {
            cur = match self.by_name.get(*part) {
                Some(&id) if self.is_ancestor(cur, OntologyNodeId(id)) => OntologyNodeId(id),
                Some(_) => return Err(OntologyError::DuplicateName((*part).to_string())),
                None => self.add_child(cur, *part)?,
            };
        }
        Ok(cur)
    }

    /// Looks a node up by name.
    #[must_use]
    pub fn node(&self, name: &str) -> Option<OntologyNodeId> {
        self.by_name.get(name).copied().map(OntologyNodeId)
    }

    /// Name of a node.
    #[must_use]
    pub fn name(&self, id: OntologyNodeId) -> &str {
        &self.nodes[id.0].name
    }

    /// Depth of a node (root = 0).
    #[must_use]
    pub fn depth(&self, id: OntologyNodeId) -> u32 {
        self.nodes[id.0].depth
    }

    /// Height of the tree: the maximum node depth.
    #[must_use]
    pub fn height(&self) -> u32 {
        self.nodes.iter().map(|n| n.depth).max().unwrap_or(0)
    }

    /// Number of nodes.
    #[must_use]
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the tree only contains the root.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.nodes.len() <= 1
    }

    /// Whether `a` is an ancestor of (or equal to) `b`.
    #[must_use]
    pub fn is_ancestor(&self, a: OntologyNodeId, b: OntologyNodeId) -> bool {
        let mut cur = Some(b.0);
        while let Some(i) = cur {
            if i == a.0 {
                return true;
            }
            cur = self.nodes[i].parent;
        }
        false
    }

    /// Lowest common ancestor of two nodes.
    #[must_use]
    pub fn lca(&self, a: OntologyNodeId, b: OntologyNodeId) -> OntologyNodeId {
        let (mut x, mut y) = (a.0, b.0);
        while self.nodes[x].depth > self.nodes[y].depth {
            // lint-allow(panic-hygiene): depth > 0 implies a parent exists
            x = self.nodes[x].parent.expect("non-root has parent");
        }
        while self.nodes[y].depth > self.nodes[x].depth {
            // lint-allow(panic-hygiene): depth > 0 implies a parent exists
            y = self.nodes[y].parent.expect("non-root has parent");
        }
        while x != y {
            // lint-allow(panic-hygiene): equal depths; both walks end at the root
            x = self.nodes[x].parent.expect("nodes share the root");
            // lint-allow(panic-hygiene): equal depths; both walks end at the root
            y = self.nodes[y].parent.expect("nodes share the root");
        }
        OntologyNodeId(x)
    }

    /// Symmetric taxonomy distance: the number of edges from `a` to `b`
    /// through their LCA (the paper's "relative depths" notion).
    #[must_use]
    pub fn distance(&self, a: &str, b: &str) -> Option<u32> {
        let (a, b) = (self.node(a)?, self.node(b)?);
        let l = self.lca(a, b);
        Some((self.depth(a) - self.depth(l)) + (self.depth(b) - self.depth(l)))
    }

    /// Minimal number of roll-up levels needed for *some* member of
    /// `accepted` to generalise over `candidate`: rolling node `a` up `k`
    /// levels makes it cover exactly the subtree of its `k`-th ancestor, so
    /// the distance is `min_a (depth(a) - depth(lca(a, candidate)))`.
    ///
    /// Returns `None` when the candidate (or every accepted value) is absent
    /// from the tree.
    ///
    /// ```
    /// use acq_query::OntologyTree;
    /// // Fig. 7(b): relaxing "places that serve Gyro" to "any Mediterranean"
    /// // takes two roll-ups (Gyro -> Greek -> Mediterranean).
    /// let t = OntologyTree::sample_cuisine();
    /// let accepted = vec!["Gyro".to_string()];
    /// assert_eq!(t.rollup_distance(&accepted, "Falafel"), Some(2));
    /// assert_eq!(t.rollup_distance(&accepted, "Sushi"), Some(3));
    /// ```
    #[must_use]
    pub fn rollup_distance(&self, accepted: &[String], candidate: &str) -> Option<u32> {
        let cand = self.node(candidate)?;
        accepted
            .iter()
            .filter_map(|a| {
                let a = self.node(a)?;
                let l = self.lca(a, cand);
                Some(self.depth(a) - self.depth(l))
            })
            .min()
    }

    /// All node names at the leaves of the subtree rooted at `name`
    /// (drill-down view; leaves are nodes without children).
    #[must_use]
    pub fn leaves_under(&self, name: &str) -> Vec<String> {
        let Some(root) = self.node(name) else {
            return Vec::new();
        };
        let mut has_child = vec![false; self.nodes.len()];
        for n in &self.nodes {
            if let Some(p) = n.parent {
                has_child[p] = true;
            }
        }
        (0..self.nodes.len())
            .filter(|&i| !has_child[i] && self.is_ancestor(root, OntologyNodeId(i)))
            .map(|i| self.nodes[i].name.clone())
            .collect()
    }

    /// Builds the paper's Fig. 7(b) cuisine taxonomy, used in tests and the
    /// categorical example.
    #[must_use]
    pub fn sample_cuisine() -> Self {
        let mut t = OntologyTree::new("Restaurants");
        let paths: [&[&str]; 5] = [
            &["Mediterranean", "Greek", "Gyro"],
            &["Mediterranean", "Middle-Eastern", "Falafel"],
            &["Mediterranean", "Middle-Eastern", "Shawarma"],
            &["Asian", "Japanese", "Sushi"],
            &["Asian", "Thai", "PadThai"],
        ];
        for p in paths {
            // Static, distinct paths cannot collide, so the only error
            // `add_path` can raise is unreachable here.
            let _ = t.add_path(p);
        }
        t
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_and_lookup() {
        let t = OntologyTree::sample_cuisine();
        assert!(t.node("Gyro").is_some());
        assert!(t.node("Pizza").is_none());
        assert_eq!(t.height(), 3);
        assert_eq!(t.depth(t.node("Gyro").unwrap()), 3);
    }

    #[test]
    fn duplicate_names_rejected() {
        let mut t = OntologyTree::new("root");
        let a = t.add_child(t.root(), "a").unwrap();
        assert_eq!(
            t.add_child(a, "a"),
            Err(OntologyError::DuplicateName("a".into()))
        );
    }

    #[test]
    fn add_path_reuses_prefixes() {
        let mut t = OntologyTree::new("root");
        t.add_path(&["x", "y"]).unwrap();
        let before = t.len();
        t.add_path(&["x", "z"]).unwrap();
        assert_eq!(t.len(), before + 1);
    }

    #[test]
    fn lca_and_distance() {
        let t = OntologyTree::sample_cuisine();
        // Gyro and Falafel meet at Mediterranean (depth 1):
        // distance = (3-1) + (3-1) = 4.
        assert_eq!(t.distance("Gyro", "Falafel"), Some(4));
        assert_eq!(t.distance("Gyro", "Gyro"), Some(0));
        assert_eq!(t.distance("Gyro", "Sushi"), Some(6));
        assert_eq!(t.distance("Gyro", "Nope"), None);
    }

    #[test]
    fn rollup_distance_matches_paper_example() {
        let t = OntologyTree::sample_cuisine();
        let accepted = vec!["Gyro".to_string()];
        // Relaxing "places that serve Gyro" to "any Mediterranean cuisine"
        // requires rolling Gyro up 2 levels (Gyro -> Greek -> Mediterranean),
        // which then covers Falafel.
        assert_eq!(t.rollup_distance(&accepted, "Falafel"), Some(2));
        // Covering Sushi requires rolling up to the root (3 levels).
        assert_eq!(t.rollup_distance(&accepted, "Sushi"), Some(3));
        assert_eq!(t.rollup_distance(&accepted, "Gyro"), Some(0));
        assert_eq!(t.rollup_distance(&accepted, "Absent"), None);
    }

    #[test]
    fn rollup_takes_minimum_over_accepted_set() {
        let t = OntologyTree::sample_cuisine();
        let accepted = vec!["Gyro".to_string(), "Shawarma".to_string()];
        // Falafel is a sibling of Shawarma: one roll-up suffices.
        assert_eq!(t.rollup_distance(&accepted, "Falafel"), Some(1));
    }

    #[test]
    fn leaves_under_subtree() {
        let t = OntologyTree::sample_cuisine();
        let mut leaves = t.leaves_under("Mediterranean");
        leaves.sort();
        assert_eq!(leaves, vec!["Falafel", "Gyro", "Shawarma"]);
        assert!(t.leaves_under("Nope").is_empty());
    }

    #[test]
    fn is_ancestor_relation() {
        let t = OntologyTree::sample_cuisine();
        let med = t.node("Mediterranean").unwrap();
        let gyro = t.node("Gyro").unwrap();
        assert!(t.is_ancestor(med, gyro));
        assert!(!t.is_ancestor(gyro, med));
        assert!(t.is_ancestor(t.root(), med));
    }
}

//! Property tests for the ACQ model: interval algebra, predicate scoring,
//! norms, and ontology distances.

use proptest::prelude::*;

use acq_query::{ColRef, Interval, Norm, OntologyTree, Predicate, RefineSide};

fn ordered_pair() -> impl Strategy<Value = (f64, f64)> {
    (-1000.0f64..1000.0, -1000.0f64..1000.0).prop_map(|(a, b)| if a <= b { (a, b) } else { (b, a) })
}

proptest! {
    // ---------------------------------------------------------------------
    // Interval algebra
    // ---------------------------------------------------------------------

    #[test]
    fn interval_hull_contains_both((a, b) in ordered_pair(), (c, d) in ordered_pair()) {
        let x = Interval::new(a, b);
        let y = Interval::new(c, d);
        let h = x.hull(&y);
        prop_assert!(h.contains_interval(&x));
        prop_assert!(h.contains_interval(&y));
    }

    #[test]
    fn interval_intersection_is_contained((a, b) in ordered_pair(), (c, d) in ordered_pair()) {
        let x = Interval::new(a, b);
        let y = Interval::new(c, d);
        if let Some(i) = x.intersect(&y) {
            prop_assert!(x.contains_interval(&i));
            prop_assert!(y.contains_interval(&i));
        } else {
            // Disjoint: no point is in both.
            let probe = (a + d) / 2.0;
            prop_assert!(!(x.contains(probe) && y.contains(probe)));
        }
    }

    #[test]
    fn interval_distance_zero_iff_contained((a, b) in ordered_pair(), v in -1000.0f64..1000.0) {
        let x = Interval::new(a, b);
        prop_assert_eq!(x.distance(v) == 0.0, x.contains(v));
        prop_assert!(x.distance(v) >= 0.0);
    }

    // ---------------------------------------------------------------------
    // Predicate scoring
    // ---------------------------------------------------------------------

    /// score_value and refined_interval are inverses: refining by exactly
    /// the score of `v` admits `v` (and nothing needs less refinement).
    #[test]
    fn score_refine_roundtrip(
        (lo, hi) in ordered_pair(),
        v in -2000.0f64..2000.0,
        upper in any::<bool>(),
    ) {
        prop_assume!(hi - lo > 1e-6);
        let side = if upper { RefineSide::Upper } else { RefineSide::Lower };
        let p = Predicate::select(ColRef::new("t", "x"), Interval::new(lo, hi), side);
        let s = p.score_value(v);
        if s.is_finite() {
            let refined = p.refined_interval(s);
            prop_assert!(refined.contains(v) || refined.distance(v) < 1e-9,
                "refined {refined} must admit v={v} (score {s})");
            // Monotonicity: any smaller refinement misses v (strictly
            // outside tuples only).
            if s > 1e-9 {
                let under = p.refined_interval(s * 0.99);
                prop_assert!(!under.contains(v));
            }
        }
    }

    /// Tuple scores are monotone in the refinement: a larger refinement
    /// admits a superset of tuples.
    #[test]
    fn admission_is_monotone(
        (lo, hi) in ordered_pair(),
        v in -2000.0f64..2000.0,
        s1 in 0.0f64..300.0,
        s2 in 0.0f64..300.0,
    ) {
        prop_assume!(hi - lo > 1e-6);
        let p = Predicate::select(ColRef::new("t", "x"), Interval::new(lo, hi), RefineSide::Upper);
        let (small, big) = if s1 <= s2 { (s1, s2) } else { (s2, s1) };
        let admitted_small = p.score_value(v) <= small;
        let admitted_big = p.score_value(v) <= big;
        prop_assert!(!admitted_small || admitted_big);
    }

    /// Eq. 1 consistency: refinement_of(refined_interval(s)) == s.
    #[test]
    fn refinement_of_inverts(
        (lo, hi) in ordered_pair(),
        s in 0.0f64..500.0,
        upper in any::<bool>(),
    ) {
        prop_assume!(hi - lo > 1e-6);
        let side = if upper { RefineSide::Upper } else { RefineSide::Lower };
        let p = Predicate::select(ColRef::new("t", "x"), Interval::new(lo, hi), side);
        let refined = p.refined_interval(s);
        let measured = p.refinement_of(&refined);
        prop_assert!((measured - s).abs() < 1e-6, "{measured} vs {s}");
    }

    // ---------------------------------------------------------------------
    // Norms
    // ---------------------------------------------------------------------

    #[test]
    fn norms_are_monotone_and_zero_at_origin(
        scores in prop::collection::vec(0.0f64..500.0, 1..6),
        bump_idx in 0usize..6,
        bump in 0.1f64..50.0,
        p in 1.0f64..4.0,
    ) {
        let idx = bump_idx % scores.len();
        for norm in [Norm::L1, Norm::Lp(p), Norm::LInf] {
            let base = norm.qscore(&scores);
            let mut bumped = scores.clone();
            bumped[idx] += bump;
            prop_assert!(norm.qscore(&bumped) >= base, "{norm}");
            prop_assert_eq!(norm.qscore(&vec![0.0; scores.len()]), 0.0);
        }
    }

    #[test]
    fn lp_norms_bounded_by_l1_and_linf(
        scores in prop::collection::vec(0.0f64..500.0, 1..6),
        p in 1.0f64..6.0,
    ) {
        let l1 = Norm::L1.qscore(&scores);
        let linf = Norm::LInf.qscore(&scores);
        let lp = Norm::Lp(p).qscore(&scores);
        prop_assert!(lp <= l1 + 1e-9);
        prop_assert!(lp >= linf - 1e-9);
    }

    // ---------------------------------------------------------------------
    // Ontologies
    // ---------------------------------------------------------------------

    /// Roll-up distance is bounded by tree height, 0 exactly on members,
    /// and never increases when the accepted set grows.
    #[test]
    fn rollup_distance_properties(
        paths in prop::collection::vec(prop::collection::vec(0u8..3, 1..4), 2..8),
        pick in any::<prop::sample::Index>(),
    ) {
        let mut tree = OntologyTree::new("root");
        let mut names = Vec::new();
        for path in &paths {
            // Node names encode their full path so shared prefixes reuse
            // nodes and distinct branches never collide.
            let parts: Vec<String> = (0..path.len())
                .map(|d| {
                    let prefix: String =
                        path[..=d].iter().map(|b| char::from(b'a' + *b)).collect();
                    format!("n{prefix}")
                })
                .collect();
            let refs: Vec<&str> = parts.iter().map(String::as_str).collect();
            tree.add_path(&refs).unwrap();
            names.push(parts.last().unwrap().clone());
        }
        let candidate = names[pick.index(names.len())].clone();
        let accepted = vec![names[0].clone()];
        let d = tree.rollup_distance(&accepted, &candidate);
        prop_assert!(d.is_some());
        let d = d.unwrap();
        prop_assert!(d <= tree.height());
        if candidate == accepted[0] {
            prop_assert_eq!(d, 0);
        }
        // Growing the accepted set can only shrink the distance.
        let bigger: Vec<String> = names.clone();
        let d2 = tree.rollup_distance(&bigger, &candidate).unwrap();
        prop_assert!(d2 <= d);
    }
}

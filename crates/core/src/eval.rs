//! Evaluation layers: the modular execution backend of Fig. 2.
//!
//! *"We delegate all actual query execution tasks to an evaluation layer,
//! which in this case is Postgres. However, the evaluation layer is modular
//! and can be replaced with other techniques such as estimation, and/or
//! sampling."* (§3)
//!
//! Three implementations with increasing amounts of precomputation:
//!
//! * [`ScanEvaluator`] — every cell query re-executes against the engine
//!   (scan + per-tuple scoring over the materialised base relation). This is
//!   the faithful model of the paper's Postgres deployment and the honest
//!   cost baseline.
//! * [`CachedScoreEvaluator`] — scores every tuple once at construction;
//!   cell queries filter the cached score matrix (no re-join / re-decode).
//! * [`GridIndexEvaluator`] — additionally buckets tuples by their grid
//!   cell, so a cell query touches exactly its own tuples and **empty cells
//!   are skipped without any execution**, the §7.4 bitmap-grid-index idea
//!   applied in score space.

use acq_engine::{AggState, CellRange, EngineResult, ExecStats, Executor, Relation, ResolvedQuery};
use acq_query::AcqQuery;

use crate::space::GridPoint;

/// Deferred work accounting for one speculatively executed cell query.
///
/// The parallel Explore phase executes cells on worker threads through
/// [`ParallelCells::cell_aggregate_shared`], which must not touch the
/// layer's shared [`ExecStats`]. Instead each execution returns its cost,
/// and the driver applies it via [`EvaluationLayer::commit_cell_cost`] in
/// emission order — so the stats on an [`crate::AcqOutcome`] are
/// bit-identical to a serial run, and speculative work that is never
/// committed (e.g. cells prefetched past an interrupt) is never counted.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CellCost {
    /// Tuples scanned answering the cell query.
    pub tuples_scanned: u64,
    /// Grid-index probes performed.
    pub index_probes: u64,
    /// Cells skipped as provably empty (§7.4).
    pub cells_skipped: u64,
    /// Zone-map blocks skipped outright by min/max classification.
    pub zones_pruned: u64,
    /// Zone-map blocks aggregated wholesale without predicate re-evaluation.
    pub zones_full: u64,
    /// Zone-map blocks that straddled the cell band and were scanned.
    pub zones_scanned: u64,
}

impl CellCost {
    /// Folds this cost (plus the implied one cell query) into `stats`.
    pub(crate) fn apply(&self, stats: &mut ExecStats) {
        stats.cell_queries += 1;
        stats.tuples_scanned += self.tuples_scanned;
        stats.index_probes += self.index_probes;
        stats.cells_skipped += self.cells_skipped;
        stats.zones_pruned += self.zones_pruned;
        stats.zones_full += self.zones_full;
        stats.zones_scanned += self.zones_scanned;
    }

    /// A cost carrying only a cell scan's accounting (no index work).
    pub(crate) fn from_scan(scan: &acq_engine::CellScan) -> Self {
        Self {
            tuples_scanned: scan.tuples_scanned,
            zones_pruned: scan.zones_pruned,
            zones_full: scan.zones_full,
            zones_scanned: scan.zones_scanned,
            ..Self::default()
        }
    }
}

/// Shared-state cell evaluation for the parallel Explore phase.
///
/// Implementations are called concurrently from worker threads and must be
/// pure with respect to observable layer state: the same cell always
/// produces the same `(state, cost)`, and no call mutates anything another
/// call (or a later serial call) can see. All accounting is deferred to
/// [`EvaluationLayer::commit_cell_cost`].
pub trait ParallelCells: Sync {
    /// Aggregate of the tuples whose refinement-score vector lies in
    /// `cell`, plus the work performed computing it.
    fn cell_aggregate_shared(&self, cell: &[CellRange]) -> EngineResult<(AggState, CellCost)>;
}

/// A backend able to answer cell queries and full refined-query aggregates
/// for one ACQ search.
pub trait EvaluationLayer {
    /// Aggregate of the tuples whose refinement-score vector lies in `cell`.
    fn cell_aggregate(&mut self, cell: &[CellRange]) -> EngineResult<AggState>;
    /// Aggregate of the tuples admitted when each flexible predicate `k` is
    /// refined by `bounds[k]` percent (used by repartitioning and by the
    /// baseline techniques).
    fn full_aggregate(&mut self, bounds: &[f64]) -> EngineResult<AggState>;
    /// An identity aggregate state.
    fn empty_state(&self) -> EngineResult<AggState>;
    /// Work counters accumulated so far.
    fn stats(&self) -> ExecStats;
    /// Size of the materialised tuple universe.
    fn universe_size(&self) -> usize;
    /// The layer's shared-state handle for concurrent cell evaluation, if it
    /// supports one. Layers returning `None` (the default) are always driven
    /// serially, whatever [`crate::config::Parallelism`] says.
    fn parallel_cells(&self) -> Option<&dyn ParallelCells> {
        None
    }
    /// Applies the deferred accounting of one committed speculative cell
    /// (see [`ParallelCells::cell_aggregate_shared`]). The driver calls this
    /// in emission order. The default is a no-op, matching the default
    /// `parallel_cells()` of `None`.
    fn commit_cell_cost(&mut self, cost: &CellCost) {
        let _ = cost;
    }
    /// A short stable identifier for this layer, recorded as run metadata
    /// by observability.
    fn kind_name(&self) -> &'static str {
        "custom"
    }
}

/// Selects which evaluation layer [`crate::run_acquire`] constructs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EvalLayerKind {
    /// Re-execute every cell query (the paper's Postgres-style deployment).
    Scan,
    /// Cache per-tuple scores once, scan the cache per query.
    CachedScore,
    /// Bucket tuples by grid cell; skip empty cells without execution (§7.4).
    GridIndex,
}

// ---------------------------------------------------------------------------
// ScanEvaluator
// ---------------------------------------------------------------------------

/// Re-executes every cell/full query against the engine.
#[derive(Debug)]
pub struct ScanEvaluator<'a> {
    exec: &'a mut Executor,
    rq: ResolvedQuery,
    rel: Relation,
}

impl<'a> ScanEvaluator<'a> {
    /// Materialises the base relation for `query` with the given per-flexible
    /// -predicate PScore caps and wraps it for repeated execution.
    pub fn new(exec: &'a mut Executor, query: &AcqQuery, caps: &[f64]) -> EngineResult<Self> {
        let rq = exec.resolve(query)?;
        let rel = exec.base_relation(&rq, caps)?;
        Ok(Self { exec, rq, rel })
    }
}

impl EvaluationLayer for ScanEvaluator<'_> {
    fn cell_aggregate(&mut self, cell: &[CellRange]) -> EngineResult<AggState> {
        self.exec.cell_aggregate(&self.rq, &self.rel, cell)
    }

    fn full_aggregate(&mut self, bounds: &[f64]) -> EngineResult<AggState> {
        self.exec.full_aggregate(&self.rq, &self.rel, bounds)
    }

    fn empty_state(&self) -> EngineResult<AggState> {
        AggState::empty(&self.rq.query.constraint.spec, self.exec.uda_registry())
    }

    fn stats(&self) -> ExecStats {
        self.exec.stats()
    }

    fn universe_size(&self) -> usize {
        self.rel.len()
    }

    fn kind_name(&self) -> &'static str {
        "scan"
    }

    fn parallel_cells(&self) -> Option<&dyn ParallelCells> {
        Some(self)
    }

    fn commit_cell_cost(&mut self, cost: &CellCost) {
        cost.apply(self.exec.stats_mut());
    }
}

impl ParallelCells for ScanEvaluator<'_> {
    fn cell_aggregate_shared(&self, cell: &[CellRange]) -> EngineResult<(AggState, CellCost)> {
        let (state, scan) = self.exec.cell_aggregate_shared(&self.rq, &self.rel, cell)?;
        Ok((state, CellCost::from_scan(&scan)))
    }
}

// ---------------------------------------------------------------------------
// Shared score-matrix machinery
// ---------------------------------------------------------------------------

/// Rows per score-matrix zone block. Smaller than the engine's table
/// blocks: matrix rows are score-sorted, so tight blocks buy sharper
/// per-cell bands at negligible metadata cost.
const MATRIX_ZONE_BLOCK: usize = 256;

/// Per-tuple scores and aggregate inputs, computed once.
///
/// Rows are stored clustered: sorted by their integer-quantised score
/// vector (lexicographic, original index as tie-break). The sort is
/// unconditional — it happens whether or not zone pruning is enabled and is
/// independent of the thread count used to score tuples — so every
/// consumer folds the exact same row order and results stay bit-identical
/// across pruning on/off and threads 1–N.
#[derive(Debug)]
struct ScoreMatrix {
    /// Flattened `n × d` refinement scores of admissible tuples.
    scores: Vec<f64>,
    /// Aggregate-column value per admissible tuple.
    vals: Vec<f64>,
    d: usize,
    /// Per-block, per-dimension exact score bounds:
    /// `zones[b * d + k] = (min, max)` of dimension `k` in block `b`.
    zones: Vec<(f64, f64)>,
}

impl ScoreMatrix {
    /// Scores every admissible tuple using `threads` worker threads.
    /// Deterministic: each thread scores a contiguous row chunk and the
    /// chunks are concatenated in order, so the matrix is identical to a
    /// serial build. Falls back to the serial path for `threads <= 1`.
    fn build_with_threads(
        exec: &mut Executor,
        rq: &ResolvedQuery,
        rel: &Relation,
        threads: usize,
    ) -> EngineResult<Self> {
        if threads <= 1 || rel.len() < 2 * threads {
            return Self::build(exec, rq, rel);
        }
        let d = rq.dims();
        let n = rel.len();
        let chunk = n.div_ceil(threads);
        let parts: Vec<EngineResult<(Vec<f64>, Vec<f64>)>> = std::thread::scope(|scope| {
            let mut handles = Vec::with_capacity(threads);
            for t in 0..threads {
                let lo = t * chunk;
                let hi = ((t + 1) * chunk).min(n);
                handles.push(scope.spawn(move || -> EngineResult<(Vec<f64>, Vec<f64>)> {
                    let bound = rq.bind(rel)?;
                    let mut scores = Vec::new();
                    let mut vals = Vec::new();
                    let mut row_scores = vec![0.0; d];
                    for row in lo..hi {
                        if bound.score_into(rel, row, &mut row_scores) {
                            scores.extend_from_slice(&row_scores);
                            vals.push(bound.agg_value(rel, row));
                        }
                    }
                    Ok((scores, vals))
                }));
            }
            handles
                .into_iter()
                // A worker panic propagates as a panic on this thread (the
                // driver's isolation layer turns it into a typed error).
                .map(|h| h.join().unwrap_or_else(|p| std::panic::resume_unwind(p)))
                .collect()
        });
        let mut scores = Vec::with_capacity(n * d);
        let mut vals = Vec::with_capacity(n);
        for part in parts {
            let (s, v) = part?;
            scores.extend(s);
            vals.extend(v);
        }
        exec.stats_mut().tuples_scanned += n as u64;
        Ok(Self::finalize(scores, vals, d))
    }

    fn build(exec: &mut Executor, rq: &ResolvedQuery, rel: &Relation) -> EngineResult<Self> {
        let d = rq.dims();
        let bound = rq.bind(rel)?;
        let mut scores = Vec::with_capacity(rel.len() * d);
        let mut vals = Vec::with_capacity(rel.len());
        let mut row_scores = vec![0.0; d];
        for row in 0..rel.len() {
            if bound.score_into(rel, row, &mut row_scores) {
                scores.extend_from_slice(&row_scores);
                vals.push(bound.agg_value(rel, row));
            }
        }
        exec.stats_mut().tuples_scanned += rel.len() as u64;
        Ok(Self::finalize(scores, vals, d))
    }

    /// Clusters rows by quantised score and computes the per-block zone
    /// bounds. Deterministic given `(scores, vals, d)`.
    fn finalize(mut scores: Vec<f64>, mut vals: Vec<f64>, d: usize) -> Self {
        let n = vals.len();
        if d > 0 && n > 1 {
            // Matrix scores are finite by construction (infinite-score
            // tuples never enter), so total_cmp is a plain total order.
            let mut perm: Vec<u32> = (0..n as u32).collect();
            perm.sort_unstable_by(|&a, &b| {
                let (ra, rb) = (a as usize * d, b as usize * d);
                for k in 0..d {
                    let (qa, qb) = (scores[ra + k].floor(), scores[rb + k].floor());
                    if qa != qb {
                        return qa.total_cmp(&qb);
                    }
                }
                a.cmp(&b)
            });
            let mut s2 = Vec::with_capacity(scores.len());
            let mut v2 = Vec::with_capacity(n);
            for &p in &perm {
                let p = p as usize;
                s2.extend_from_slice(&scores[p * d..(p + 1) * d]);
                v2.push(vals[p]);
            }
            scores = s2;
            vals = v2;
        }
        let blocks = n.div_ceil(MATRIX_ZONE_BLOCK);
        let mut zones = Vec::with_capacity(blocks * d);
        for b in 0..blocks {
            let start = b * MATRIX_ZONE_BLOCK;
            let end = (start + MATRIX_ZONE_BLOCK).min(n);
            for k in 0..d {
                let mut mn = f64::INFINITY;
                let mut mx = f64::NEG_INFINITY;
                for i in start..end {
                    let s = scores[i * d + k];
                    if s < mn {
                        mn = s;
                    }
                    if s > mx {
                        mx = s;
                    }
                }
                zones.push((mn, mx));
            }
        }
        Self {
            scores,
            vals,
            d,
            zones,
        }
    }

    fn len(&self) -> usize {
        self.vals.len()
    }

    /// How block `b` relates to `cell` in score space: exact comparisons
    /// against the block's per-dimension bounds, no arithmetic that could
    /// round (see DESIGN, "Zone-map pruning and the determinism contract").
    fn classify_block(&self, b: usize, cell: &[CellRange]) -> acq_engine::BlockClass {
        use acq_engine::BlockClass;
        let zs = &self.zones[b * self.d..(b + 1) * self.d];
        let mut cls = BlockClass::Full;
        for (r, &(mn, mx)) in cell.iter().zip(zs) {
            let c = match r {
                CellRange::Zero => {
                    if mn > 0.0 || mx < 0.0 {
                        BlockClass::Skip
                    } else if mn == 0.0 && mx == 0.0 {
                        BlockClass::Full
                    } else {
                        BlockClass::Scan
                    }
                }
                CellRange::Open { lo, hi } => {
                    if mx <= *lo || mn > *hi {
                        BlockClass::Skip
                    } else if mn > *lo && mx <= *hi {
                        BlockClass::Full
                    } else {
                        BlockClass::Scan
                    }
                }
            };
            cls = cls.and(c);
            if cls == BlockClass::Skip {
                return BlockClass::Skip;
            }
        }
        cls
    }

    /// The shared cell scan of the cached-score layer: zone-pruned block
    /// walk when enabled, full filter otherwise. Folds qualifying rows into
    /// `state` in row order (bit-identical either way) and returns the
    /// deferred accounting.
    fn cell_scan_into(&self, cell: &[CellRange], state: &mut AggState, pruned: bool) -> CellCost {
        use acq_engine::BlockClass;
        let n = self.len();
        let mut cost = CellCost::default();
        if !pruned {
            cost.tuples_scanned = n as u64;
            for i in 0..n {
                if self.row(i).iter().zip(cell).all(|(s, r)| r.contains(*s)) {
                    state.update(self.vals[i]);
                }
            }
            return cost;
        }
        let mut start = 0usize;
        let mut b = 0usize;
        while start < n {
            let end = (start + MATRIX_ZONE_BLOCK).min(n);
            match self.classify_block(b, cell) {
                BlockClass::Skip => cost.zones_pruned += 1,
                BlockClass::Full => {
                    cost.zones_full += 1;
                    if let AggState::Count(c) = state {
                        *c += (end - start) as u64;
                    } else {
                        state.update_many(self.vals[start..end].iter().copied());
                    }
                }
                BlockClass::Scan => {
                    cost.zones_scanned += 1;
                    cost.tuples_scanned += (end - start) as u64;
                    for i in start..end {
                        if self.row(i).iter().zip(cell).all(|(s, r)| r.contains(*s)) {
                            state.update(self.vals[i]);
                        }
                    }
                }
            }
            start = end;
            b += 1;
        }
        cost
    }

    #[inline]
    fn row(&self, i: usize) -> &[f64] {
        &self.scores[i * self.d..(i + 1) * self.d]
    }

    /// Folds every tuple admitted by `bounds` into `state` (the shared
    /// full-query scan of the cached-score layers).
    fn full_aggregate_into(&self, bounds: &[f64], state: &mut AggState) {
        for i in 0..self.len() {
            if self.row(i).iter().zip(bounds).all(|(s, b)| s <= b) {
                state.update(self.vals[i]);
            }
        }
    }
}

// ---------------------------------------------------------------------------
// CachedScoreEvaluator
// ---------------------------------------------------------------------------

/// Caches per-tuple scores; each query is a filter over the cache.
#[derive(Debug)]
pub struct CachedScoreEvaluator<'a> {
    exec: &'a mut Executor,
    rq: ResolvedQuery,
    matrix: ScoreMatrix,
    /// Captured from the executor at construction: whether cell queries
    /// walk the score-matrix zone blocks or filter every cached row.
    zone_pruning: bool,
}

impl<'a> CachedScoreEvaluator<'a> {
    /// Builds the evaluator (one base-relation materialisation plus one
    /// scoring pass).
    pub fn new(exec: &'a mut Executor, query: &AcqQuery, caps: &[f64]) -> EngineResult<Self> {
        Self::with_threads(exec, query, caps, 1)
    }

    /// Like [`CachedScoreEvaluator::new`] but scores tuples on `threads`
    /// worker threads (deterministic; identical matrix to a serial build).
    pub fn with_threads(
        exec: &'a mut Executor,
        query: &AcqQuery,
        caps: &[f64],
        threads: usize,
    ) -> EngineResult<Self> {
        let rq = exec.resolve(query)?;
        let rel = exec.base_relation(&rq, caps)?;
        let matrix = ScoreMatrix::build_with_threads(exec, &rq, &rel, threads)?;
        let zone_pruning = exec.zone_pruning();
        Ok(Self {
            exec,
            rq,
            matrix,
            zone_pruning,
        })
    }
}

impl EvaluationLayer for CachedScoreEvaluator<'_> {
    fn cell_aggregate(&mut self, cell: &[CellRange]) -> EngineResult<AggState> {
        let mut state = self.empty_state()?;
        let cost = self
            .matrix
            .cell_scan_into(cell, &mut state, self.zone_pruning);
        cost.apply(self.exec.stats_mut());
        Ok(state)
    }

    fn full_aggregate(&mut self, bounds: &[f64]) -> EngineResult<AggState> {
        let stats = self.exec.stats_mut();
        stats.full_queries += 1;
        stats.tuples_scanned += self.matrix.len() as u64;
        let mut state = self.empty_state()?;
        self.matrix.full_aggregate_into(bounds, &mut state);
        Ok(state)
    }

    fn empty_state(&self) -> EngineResult<AggState> {
        AggState::empty(&self.rq.query.constraint.spec, self.exec.uda_registry())
    }

    fn stats(&self) -> ExecStats {
        self.exec.stats()
    }

    fn universe_size(&self) -> usize {
        self.matrix.len()
    }

    fn parallel_cells(&self) -> Option<&dyn ParallelCells> {
        Some(self)
    }

    fn commit_cell_cost(&mut self, cost: &CellCost) {
        cost.apply(self.exec.stats_mut());
    }

    fn kind_name(&self) -> &'static str {
        "cached-score"
    }
}

impl ParallelCells for CachedScoreEvaluator<'_> {
    fn cell_aggregate_shared(&self, cell: &[CellRange]) -> EngineResult<(AggState, CellCost)> {
        let mut state = self.empty_state()?;
        let cost = self
            .matrix
            .cell_scan_into(cell, &mut state, self.zone_pruning);
        Ok((state, cost))
    }
}

// ---------------------------------------------------------------------------
// GridIndexEvaluator
// ---------------------------------------------------------------------------

/// Buckets tuples by grid cell at construction; cell queries touch exactly
/// their own tuples and provably empty cells are skipped (§7.4).
#[derive(Debug)]
pub struct GridIndexEvaluator<'a> {
    exec: &'a mut Executor,
    rq: ResolvedQuery,
    matrix: ScoreMatrix,
    cells: crate::fasthash::FastMap<GridPoint, CellBucket>,
    step: f64,
}

#[derive(Debug)]
struct CellBucket {
    rows: Vec<u32>,
}

impl<'a> GridIndexEvaluator<'a> {
    /// Builds the evaluator for searches over a grid of the given `step`
    /// (PScore percent per unit — [`crate::RefinedSpace::step`]).
    pub fn new(
        exec: &'a mut Executor,
        query: &AcqQuery,
        caps: &[f64],
        step: f64,
    ) -> EngineResult<Self> {
        Self::with_threads(exec, query, caps, step, 1)
    }

    /// Like [`GridIndexEvaluator::new`] but scores tuples on `threads`
    /// worker threads (deterministic; identical buckets to a serial build).
    pub fn with_threads(
        exec: &'a mut Executor,
        query: &AcqQuery,
        caps: &[f64],
        step: f64,
        threads: usize,
    ) -> EngineResult<Self> {
        assert!(step > 0.0 && step.is_finite(), "grid step must be positive");
        let rq = exec.resolve(query)?;
        let rel = exec.base_relation(&rq, caps)?;
        let matrix = ScoreMatrix::build_with_threads(exec, &rq, &rel, threads)?;
        let mut cells: crate::fasthash::FastMap<GridPoint, CellBucket> =
            crate::fasthash::FastMap::default();
        let mut point = vec![0u32; rq.dims()];
        for i in 0..matrix.len() {
            for (k, &s) in matrix.row(i).iter().enumerate() {
                point[k] = Self::bucket_of(s, step);
            }
            cells
                .entry(point.clone())
                .or_insert_with(|| CellBucket { rows: Vec::new() })
                .rows
                .push(i as u32);
        }
        Ok(Self {
            exec,
            rq,
            matrix,
            cells,
            step,
        })
    }

    /// The grid coordinate whose cell `(k-1)·step < s <= k·step` (with the
    /// `s == 0 -> 0` convention) contains score `s`. Snapped so that the
    /// bucket agrees with the comparison semantics of
    /// [`CellRange::contains`] even at floating-point boundaries.
    #[inline]
    fn bucket_of(s: f64, step: f64) -> u32 {
        if s <= 0.0 {
            return 0;
        }
        let mut k = (s / step).ceil() as u32;
        k = k.max(1);
        // Snap to comparison-consistent bucket: the cell test is
        // (k-1)*step < s <= k*step with multiplied bounds.
        while k > 1 && s <= f64::from(k - 1) * step {
            k -= 1;
        }
        while s > f64::from(k) * step {
            k += 1;
        }
        k
    }

    /// Number of distinct occupied cells (index footprint gauge).
    #[must_use]
    pub fn occupied_cells(&self) -> usize {
        self.cells.len()
    }

    fn point_of_cell(cell: &[CellRange], step: f64) -> GridPoint {
        cell.iter()
            .map(|r| match r {
                CellRange::Zero => 0,
                CellRange::Open { hi, .. } => (hi / step).round() as u32,
            })
            .collect()
    }
}

impl EvaluationLayer for GridIndexEvaluator<'_> {
    fn cell_aggregate(&mut self, cell: &[CellRange]) -> EngineResult<AggState> {
        let point = Self::point_of_cell(cell, self.step);
        let mut state = AggState::empty(&self.rq.query.constraint.spec, self.exec.uda_registry())?;
        let stats = self.exec.stats_mut();
        stats.cell_queries += 1;
        stats.index_probes += 1;
        match self.cells.get(&point) {
            None => {
                // Provably empty: skipped without execution (§7.4).
                stats.cells_skipped += 1;
            }
            Some(bucket) => {
                stats.tuples_scanned += bucket.rows.len() as u64;
                for &i in &bucket.rows {
                    state.update(self.matrix.vals[i as usize]);
                }
            }
        }
        Ok(state)
    }

    fn full_aggregate(&mut self, bounds: &[f64]) -> EngineResult<AggState> {
        let stats = self.exec.stats_mut();
        stats.full_queries += 1;
        stats.tuples_scanned += self.matrix.len() as u64;
        let mut state = self.empty_state()?;
        self.matrix.full_aggregate_into(bounds, &mut state);
        Ok(state)
    }

    fn empty_state(&self) -> EngineResult<AggState> {
        AggState::empty(&self.rq.query.constraint.spec, self.exec.uda_registry())
    }

    fn stats(&self) -> ExecStats {
        self.exec.stats()
    }

    fn universe_size(&self) -> usize {
        self.matrix.len()
    }

    fn parallel_cells(&self) -> Option<&dyn ParallelCells> {
        Some(self)
    }

    fn commit_cell_cost(&mut self, cost: &CellCost) {
        cost.apply(self.exec.stats_mut());
    }

    fn kind_name(&self) -> &'static str {
        "grid-index"
    }
}

impl ParallelCells for GridIndexEvaluator<'_> {
    fn cell_aggregate_shared(&self, cell: &[CellRange]) -> EngineResult<(AggState, CellCost)> {
        let point = Self::point_of_cell(cell, self.step);
        let mut state = self.empty_state()?;
        let mut cost = CellCost {
            index_probes: 1,
            ..CellCost::default()
        };
        match self.cells.get(&point) {
            None => {
                // Provably empty: skipped without execution (§7.4).
                cost.cells_skipped = 1;
            }
            Some(bucket) => {
                cost.tuples_scanned = bucket.rows.len() as u64;
                for &i in &bucket.rows {
                    state.update(self.matrix.vals[i as usize]);
                }
            }
        }
        Ok((state, cost))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use acq_engine::{Catalog, DataType, Field, TableBuilder, Value};
    use acq_query::{AggConstraint, AggregateSpec, CmpOp, ColRef, Interval, Predicate, RefineSide};

    fn setup() -> (Executor, AcqQuery) {
        let mut b = TableBuilder::new(
            "t",
            vec![
                Field::new("x", DataType::Float),
                Field::new("y", DataType::Float),
            ],
        )
        .unwrap();
        for i in 0..100 {
            b.push_row(vec![
                Value::Float(f64::from(i)),
                Value::Float(f64::from(i) * 2.0),
            ]);
        }
        let mut cat = Catalog::new();
        cat.register(b.finish().unwrap()).unwrap();
        let q = AcqQuery::builder()
            .table("t")
            .predicate(
                Predicate::select(
                    ColRef::new("t", "x"),
                    Interval::new(0.0, 20.0),
                    RefineSide::Upper,
                )
                .with_domain(Interval::new(0.0, 99.0)),
            )
            .predicate(
                Predicate::select(
                    ColRef::new("t", "y"),
                    Interval::new(0.0, 40.0),
                    RefineSide::Upper,
                )
                .with_domain(Interval::new(0.0, 198.0)),
            )
            .constraint(AggConstraint::new(AggregateSpec::count(), CmpOp::Eq, 40.0))
            .build()
            .unwrap();
        (Executor::new(cat), q)
    }

    fn caps() -> Vec<f64> {
        vec![500.0, 500.0]
    }

    #[test]
    fn all_layers_agree_on_cells_and_fulls() {
        let step = 5.0;
        let cells: Vec<Vec<CellRange>> = vec![
            vec![CellRange::Zero, CellRange::Zero],
            vec![CellRange::Open { lo: 0.0, hi: step }, CellRange::Zero],
            vec![
                CellRange::Open { lo: 0.0, hi: step },
                CellRange::Open {
                    lo: step,
                    hi: 2.0 * step,
                },
            ],
            vec![
                CellRange::Open { lo: 45.0, hi: 50.0 },
                CellRange::Open { lo: 45.0, hi: 50.0 },
            ],
        ];
        let bounds: Vec<Vec<f64>> = vec![vec![0.0, 0.0], vec![10.0, 5.0], vec![100.0, 250.0]];

        let (mut e1, q) = setup();
        let mut scan = ScanEvaluator::new(&mut e1, &q, &caps()).unwrap();
        let (mut e2, _) = setup();
        let mut cached = CachedScoreEvaluator::new(&mut e2, &q, &caps()).unwrap();
        let (mut e3, _) = setup();
        let mut grid = GridIndexEvaluator::new(&mut e3, &q, &caps(), step).unwrap();

        for cell in &cells {
            let a = scan.cell_aggregate(cell).unwrap().value();
            let b = cached.cell_aggregate(cell).unwrap().value();
            let c = grid.cell_aggregate(cell).unwrap().value();
            assert_eq!(a, b, "cell {cell:?}");
            assert_eq!(a, c, "cell {cell:?}");
        }
        for b in &bounds {
            let x = scan.full_aggregate(b).unwrap().value();
            let y = cached.full_aggregate(b).unwrap().value();
            let z = grid.full_aggregate(b).unwrap().value();
            assert_eq!(x, y, "bounds {b:?}");
            assert_eq!(x, z, "bounds {b:?}");
        }
    }

    #[test]
    fn grid_index_skips_empty_cells() {
        let (mut exec, q) = setup();
        let mut grid = GridIndexEvaluator::new(&mut exec, &q, &caps(), 5.0).unwrap();
        // x and y are perfectly correlated (y = 2x); most off-diagonal cells
        // are empty.
        let empty = vec![
            CellRange::Open { lo: 0.0, hi: 5.0 },
            CellRange::Open {
                lo: 400.0,
                hi: 405.0,
            },
        ];
        let s0 = grid.stats();
        let a = grid.cell_aggregate(&empty).unwrap();
        assert_eq!(a.value(), Some(0.0));
        let s1 = grid.stats();
        assert_eq!(s1.cells_skipped - s0.cells_skipped, 1);
        assert_eq!(s1.tuples_scanned, s0.tuples_scanned, "no tuples touched");
    }

    #[test]
    fn bucket_of_boundaries() {
        let step = 5.0;
        assert_eq!(GridIndexEvaluator::bucket_of(0.0, step), 0);
        assert_eq!(GridIndexEvaluator::bucket_of(0.0001, step), 1);
        assert_eq!(GridIndexEvaluator::bucket_of(5.0, step), 1);
        assert_eq!(GridIndexEvaluator::bucket_of(5.0001, step), 2);
        assert_eq!(GridIndexEvaluator::bucket_of(10.0, step), 2);
        // Bucket agrees with CellRange::contains at awkward steps.
        let step = 10.0 / 3.0;
        for s in [step, 2.0 * step, 0.999 * step, 1.001 * step, 7.77] {
            let k = GridIndexEvaluator::bucket_of(s, step);
            let range = if k == 0 {
                CellRange::Zero
            } else {
                CellRange::Open {
                    lo: f64::from(k - 1) * step,
                    hi: f64::from(k) * step,
                }
            };
            assert!(range.contains(s), "score {s} bucket {k}");
        }
    }

    #[test]
    fn scan_counts_work_per_query() {
        let (mut exec, q) = setup();
        let mut scan = ScanEvaluator::new(&mut exec, &q, &caps()).unwrap();
        let n = scan.universe_size() as u64;
        let s0 = scan.stats();
        let _ = scan
            .cell_aggregate(&[CellRange::Zero, CellRange::Zero])
            .unwrap();
        let s1 = scan.stats();
        assert_eq!(s1.cell_queries - s0.cell_queries, 1);
        assert_eq!(s1.tuples_scanned - s0.tuples_scanned, n);
    }

    #[test]
    fn parallel_scoring_matches_serial() {
        let (mut e1, q) = setup();
        let mut serial = CachedScoreEvaluator::new(&mut e1, &q, &caps()).unwrap();
        let (mut e2, _) = setup();
        let mut parallel = CachedScoreEvaluator::with_threads(&mut e2, &q, &caps(), 4).unwrap();
        assert_eq!(serial.universe_size(), parallel.universe_size());
        for bounds in [[0.0, 0.0], [25.0, 10.0], [500.0, 500.0]] {
            assert_eq!(
                serial.full_aggregate(&bounds).unwrap().value(),
                parallel.full_aggregate(&bounds).unwrap().value(),
                "bounds {bounds:?}"
            );
        }
        let cell = vec![CellRange::Open { lo: 0.0, hi: 5.0 }, CellRange::Zero];
        assert_eq!(
            serial.cell_aggregate(&cell).unwrap().value(),
            parallel.cell_aggregate(&cell).unwrap().value()
        );
    }

    /// Shared-path contract: the same state as the serial call, no stats
    /// until the cost is committed, and a committed cost accounting exactly
    /// what the serial call accounts.
    fn check_shared_matches<E: EvaluationLayer>(eval: &mut E, cell: &[CellRange]) {
        let before = eval.stats();
        let (shared_state, cost) = eval
            .parallel_cells()
            .expect("layer supports parallel cells")
            .cell_aggregate_shared(cell)
            .unwrap();
        assert_eq!(eval.stats(), before, "shared path defers all accounting");
        let serial = eval.cell_aggregate(cell).unwrap();
        assert_eq!(shared_state.value(), serial.value(), "cell {cell:?}");
        let mid = eval.stats();
        eval.commit_cell_cost(&cost);
        let after = eval.stats();
        assert_eq!(
            after.cell_queries - mid.cell_queries,
            mid.cell_queries - before.cell_queries
        );
        assert_eq!(
            after.tuples_scanned - mid.tuples_scanned,
            mid.tuples_scanned - before.tuples_scanned
        );
        assert_eq!(
            after.index_probes - mid.index_probes,
            mid.index_probes - before.index_probes
        );
        assert_eq!(
            after.cells_skipped - mid.cells_skipped,
            mid.cells_skipped - before.cells_skipped
        );
        assert_eq!(
            after.zones_pruned - mid.zones_pruned,
            mid.zones_pruned - before.zones_pruned
        );
        assert_eq!(
            after.zones_full - mid.zones_full,
            mid.zones_full - before.zones_full
        );
        assert_eq!(
            after.zones_scanned - mid.zones_scanned,
            mid.zones_scanned - before.zones_scanned
        );
    }

    #[test]
    fn shared_cells_match_serial_cells_on_every_layer() {
        let step = 5.0;
        let cells: Vec<Vec<CellRange>> = vec![
            vec![CellRange::Zero, CellRange::Zero],
            vec![CellRange::Open { lo: 0.0, hi: step }, CellRange::Zero],
            vec![
                CellRange::Open { lo: 0.0, hi: step },
                CellRange::Open {
                    lo: step,
                    hi: 2.0 * step,
                },
            ],
            // Empty off-diagonal cell: exercises the skip path.
            vec![
                CellRange::Open { lo: 0.0, hi: step },
                CellRange::Open {
                    lo: 400.0,
                    hi: 405.0,
                },
            ],
        ];
        for cell in &cells {
            let (mut e1, q) = setup();
            let mut scan = ScanEvaluator::new(&mut e1, &q, &caps()).unwrap();
            check_shared_matches(&mut scan, cell);
            let (mut e2, _) = setup();
            let mut cached = CachedScoreEvaluator::new(&mut e2, &q, &caps()).unwrap();
            check_shared_matches(&mut cached, cell);
            let (mut e3, _) = setup();
            let mut grid = GridIndexEvaluator::new(&mut e3, &q, &caps(), step).unwrap();
            check_shared_matches(&mut grid, cell);
        }
    }

    #[test]
    fn cached_zone_pruning_is_bit_identical_and_prunes() {
        fn zsetup() -> (Executor, AcqQuery) {
            let mut b = TableBuilder::new("t", vec![Field::new("x", DataType::Float)]).unwrap();
            // Deliberately unsorted insertion order: the matrix clustering
            // sort, not the on-disk layout, has to produce the pruning.
            for i in 0..2048u32 {
                b.push_row(vec![Value::Float(f64::from((i * 1021) % 2048))]);
            }
            let mut cat = Catalog::new();
            cat.register(b.finish().unwrap()).unwrap();
            let q = AcqQuery::builder()
                .table("t")
                .predicate(
                    Predicate::select(
                        ColRef::new("t", "x"),
                        Interval::new(0.0, 100.0),
                        RefineSide::Upper,
                    )
                    .with_domain(Interval::new(0.0, 2047.0)),
                )
                .constraint(AggConstraint::new(
                    AggregateSpec::sum(ColRef::new("t", "x")),
                    CmpOp::Ge,
                    1.0,
                ))
                .build()
                .unwrap();
            (Executor::new(cat), q)
        }
        // Scores are x - 100 (clamped at 0), so with 2048 rows the sorted
        // matrix has eight 256-row blocks with disjoint score bands.
        let cells = [
            vec![CellRange::Zero],
            vec![CellRange::Open {
                lo: 500.0,
                hi: 600.0,
            }],
            // Spans block 2's whole band: exercises the full-block fold.
            vec![CellRange::Open {
                lo: 411.5,
                hi: 668.5,
            }],
            // Beyond every score: every block is pruned.
            vec![CellRange::Open {
                lo: 5000.0,
                hi: 5010.0,
            }],
        ];
        let (mut e_on, q) = zsetup();
        let mut on = CachedScoreEvaluator::new(&mut e_on, &q, &[5000.0]).unwrap();
        let (mut e_off, _) = zsetup();
        e_off.set_zone_pruning(false);
        let mut off = CachedScoreEvaluator::new(&mut e_off, &q, &[5000.0]).unwrap();
        assert_eq!(on.universe_size(), 2048);
        for cell in &cells {
            // SUM over floats: bitwise equality proves fold-order identity,
            // not just set equality of the qualifying rows.
            assert_eq!(
                on.cell_aggregate(cell).unwrap().value(),
                off.cell_aggregate(cell).unwrap().value(),
                "cell {cell:?}"
            );
        }
        let son = on.stats();
        let soff = off.stats();
        assert!(son.zones_pruned > 0, "pruning never fired: {son}");
        assert!(son.zones_full > 0, "full-block fold never fired: {son}");
        assert!(
            son.tuples_scanned < soff.tuples_scanned,
            "pruned path must scan strictly fewer tuples ({} vs {})",
            son.tuples_scanned,
            soff.tuples_scanned
        );
        assert_eq!(soff.zones_pruned, 0, "disabled path classifies nothing");
        assert_eq!(soff.zones_full, 0);
        assert_eq!(soff.zones_scanned, 0);
    }

    #[test]
    fn universe_respects_caps() {
        let (mut exec, q) = setup();
        // Cap x at 30% (interval [0,20] -> up to 26), y unbounded-ish.
        let scan = ScanEvaluator::new(&mut exec, &q, &[30.0, 1000.0]).unwrap();
        // x <= 20 + 30% of 20 = 26 -> 27 rows.
        assert_eq!(scan.universe_size(), 27);
    }
}

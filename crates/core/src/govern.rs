//! Resource governance: budgets, deadlines, cancellation, and termination
//! status for anytime execution.
//!
//! ACQUIRE is an anytime algorithm in practice: the driver tracks the
//! closest-so-far query from the very first grid point it explores, so an
//! interrupted search still returns its best answer. This module supplies
//! the machinery that decides *when* to interrupt:
//!
//! * [`ExecutionBudget`] — a wall-clock deadline, an explored-query budget,
//!   and an approximate memory budget for retained sub-aggregates, all
//!   checked cooperatively once per explored grid query.
//! * [`CancellationToken`] — a cheaply clonable handle that lets the owner
//!   of a [`crate::Session`] (or any other thread) interrupt a running
//!   search.
//! * [`Termination`] / [`InterruptReason`] — a machine-readable account of
//!   why the search stopped, carried on every [`crate::AcqOutcome`].
//! * [`Governor`] — the driver-internal combination of the above.
//!
//! Budgets are *cooperative*: they are checked between grid queries, never
//! mid-evaluation, so a search overruns its deadline by at most one
//! evaluation-layer call.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use acq_obs::Obs;

/// Resource limits for one ACQUIRE search. The default is unlimited.
///
/// Limits compose: the first one hit interrupts the search, and the
/// resulting [`crate::AcqOutcome`] carries the closest query found so far
/// plus a [`Termination::Interrupted`] status naming the limit.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct ExecutionBudget {
    /// Wall-clock deadline, measured from the start of the search.
    pub deadline: Option<Duration>,
    /// Maximum number of grid queries to explore.
    pub max_explored: Option<u64>,
    /// Approximate cap, in bytes, on retained sub-aggregate state
    /// (see [`crate::AggStore::approx_bytes`]).
    pub max_store_bytes: Option<usize>,
}

impl ExecutionBudget {
    /// No limits (the default).
    #[must_use]
    pub fn unlimited() -> Self {
        Self::default()
    }

    /// Same budget with a wall-clock deadline.
    #[must_use]
    pub fn with_deadline(mut self, deadline: Duration) -> Self {
        self.deadline = Some(deadline);
        self
    }

    /// Same budget with an explored-query cap.
    #[must_use]
    pub fn with_max_explored(mut self, max_explored: u64) -> Self {
        self.max_explored = Some(max_explored);
        self
    }

    /// Same budget with an approximate memory cap for retained
    /// sub-aggregates.
    #[must_use]
    pub fn with_max_store_bytes(mut self, max_store_bytes: usize) -> Self {
        self.max_store_bytes = Some(max_store_bytes);
        self
    }

    /// Whether no limit is set at all.
    #[must_use]
    pub fn is_unlimited(&self) -> bool {
        self.deadline.is_none() && self.max_explored.is_none() && self.max_store_bytes.is_none()
    }

    /// This budget scaled down by `factor` (clamped to `0.0..=1.0`): every
    /// limit that is set shrinks proportionally, limits that are unset stay
    /// unset. This is the degraded-admission budget for overload serving —
    /// past a load high-water mark, a server admits new searches with
    /// `budget.shrunk(f)` so they return partial anytime answers quickly
    /// instead of being shed outright.
    #[must_use]
    pub fn shrunk(&self, factor: f64) -> Self {
        let f = if factor.is_finite() {
            factor.clamp(0.0, 1.0)
        } else {
            1.0
        };
        Self {
            deadline: self.deadline.map(|d| d.mul_f64(f)),
            max_explored: self.max_explored.map(|n| (n as f64 * f) as u64),
            max_store_bytes: self.max_store_bytes.map(|b| (b as f64 * f) as usize),
        }
    }
}

/// A shareable handle for interrupting a running search.
///
/// Clones share one flag; cancelling any clone interrupts every search
/// polling the token. Cancellation is sticky and cooperative: the driver
/// notices it between grid queries and returns the closest-so-far outcome
/// with [`InterruptReason::Cancelled`].
#[derive(Debug, Clone, Default)]
pub struct CancellationToken {
    flag: Arc<AtomicBool>,
}

impl CancellationToken {
    /// A fresh, un-cancelled token.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Requests cancellation of every search holding a clone of this token.
    pub fn cancel(&self) {
        // relaxed-ok: sticky monotone flag; no payload is published through it
        self.flag.store(true, Ordering::Relaxed);
    }

    /// Whether cancellation has been requested.
    #[must_use]
    pub fn is_cancelled(&self) -> bool {
        // relaxed-ok: a late `true` only delays the stop by one poll
        self.flag.load(Ordering::Relaxed)
    }
}

/// Why a search was interrupted before running to completion.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum InterruptReason {
    /// The wall-clock deadline of [`ExecutionBudget::deadline`] passed.
    DeadlineExceeded,
    /// [`ExecutionBudget::max_explored`] (or the legacy
    /// [`crate::AcquireConfig::max_explored`] cap) was reached.
    ExploredBudget,
    /// Retained sub-aggregates exceeded
    /// [`ExecutionBudget::max_store_bytes`].
    MemoryBudget,
    /// A [`CancellationToken`] was cancelled.
    Cancelled,
    /// The evaluation layer failed or panicked and the configured
    /// [`FaultPolicy`] is [`FaultPolicy::BestEffort`]; the payload
    /// describes the fault.
    Fault(String),
}

impl InterruptReason {
    /// Stable machine-readable name used in JSON sinks (CLI `--json`, the
    /// serve registry, explain profiles).
    #[must_use]
    pub fn slug(&self) -> &'static str {
        match self {
            Self::DeadlineExceeded => "deadline",
            Self::ExploredBudget => "explored-budget",
            Self::MemoryBudget => "memory-budget",
            Self::Cancelled => "cancelled",
            Self::Fault(_) => "fault",
        }
    }
}

impl std::fmt::Display for InterruptReason {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::DeadlineExceeded => f.write_str("deadline exceeded"),
            Self::ExploredBudget => f.write_str("explored-query budget exhausted"),
            Self::MemoryBudget => f.write_str("sub-aggregate memory budget exhausted"),
            Self::Cancelled => f.write_str("cancelled"),
            Self::Fault(msg) => write!(f, "evaluation fault: {msg}"),
        }
    }
}

/// How a search ended, carried on every [`crate::AcqOutcome`].
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum Termination {
    /// The answer layer closed normally with at least one satisfying query.
    Satisfied,
    /// The refined space was exhausted (or structurally capped) without a
    /// satisfying query; the outcome's `closest` is the final answer.
    Exhausted,
    /// The search stopped early; the outcome carries the closest-so-far
    /// query and everything found up to the interrupt.
    Interrupted {
        /// What interrupted the search.
        reason: InterruptReason,
        /// Grid queries explored before the interrupt.
        explored: u64,
        /// Wall-clock time elapsed before the interrupt.
        elapsed: Duration,
    },
}

impl Termination {
    /// Whether the search ran to completion (successfully or not).
    #[must_use]
    pub fn is_complete(&self) -> bool {
        !matches!(self, Self::Interrupted { .. })
    }

    /// The interrupt reason, if the search was interrupted.
    #[must_use]
    pub fn interrupt_reason(&self) -> Option<&InterruptReason> {
        match self {
            Self::Interrupted { reason, .. } => Some(reason),
            _ => None,
        }
    }

    /// Stable machine-readable status name: `"satisfied"`, `"exhausted"`,
    /// or the interrupt's [`InterruptReason::slug`].
    #[must_use]
    pub fn slug(&self) -> &'static str {
        match self {
            Self::Satisfied => "satisfied",
            Self::Exhausted => "exhausted",
            Self::Interrupted { reason, .. } => reason.slug(),
        }
    }
}

impl std::fmt::Display for Termination {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Satisfied => f.write_str("satisfied"),
            Self::Exhausted => f.write_str("exhausted"),
            Self::Interrupted {
                reason,
                explored,
                elapsed,
            } => write!(
                f,
                "interrupted ({reason}) after {explored} queries in {elapsed:?}"
            ),
        }
    }
}

/// What the driver does when the evaluation layer returns an error or
/// panics mid-search.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum FaultPolicy {
    /// Propagate the failure as a typed [`crate::CoreError`] (the default;
    /// panics become [`crate::CoreError::EvalPanicked`]).
    #[default]
    Propagate,
    /// Treat the failure as an interrupt: return the closest-so-far outcome
    /// with [`InterruptReason::Fault`] instead of an error. Construction
    /// and validation failures still propagate — only mid-search
    /// evaluation faults are absorbed.
    BestEffort,
}

/// Driver-internal budget/cancellation checker; one per search.
#[derive(Debug)]
pub struct Governor {
    start: Instant,
    budget: ExecutionBudget,
    token: CancellationToken,
    obs: Obs,
}

impl Governor {
    /// Starts the clock on a new search.
    #[must_use]
    pub fn new(budget: ExecutionBudget, token: CancellationToken) -> Self {
        Self::with_obs(budget, token, Obs::disabled())
    }

    /// Starts the clock on a new search, recording interrupt events on
    /// `obs`.
    #[must_use]
    pub fn with_obs(budget: ExecutionBudget, token: CancellationToken, obs: Obs) -> Self {
        Self {
            start: Instant::now(),
            budget,
            token,
            obs,
        }
    }

    /// Wall-clock time since the search started.
    #[must_use]
    pub fn elapsed(&self) -> Duration {
        self.start.elapsed()
    }

    /// Checks every limit against the current progress counters; returns
    /// the first violated one. Called once per grid query, before its
    /// evaluation.
    #[must_use]
    pub fn check(&self, explored: u64, store_bytes: usize) -> Option<InterruptReason> {
        if self.token.is_cancelled() {
            return Some(InterruptReason::Cancelled);
        }
        if let Some(cap) = self.budget.max_explored {
            if explored >= cap {
                return Some(InterruptReason::ExploredBudget);
            }
        }
        if let Some(cap) = self.budget.max_store_bytes {
            if store_bytes > cap {
                return Some(InterruptReason::MemoryBudget);
            }
        }
        if let Some(deadline) = self.budget.deadline {
            if self.start.elapsed() >= deadline {
                return Some(InterruptReason::DeadlineExceeded);
            }
        }
        None
    }

    /// Whether the search should stop dead right now: sticky cancellation
    /// or a passed deadline. This is the cheap, commit-order-independent
    /// subset of [`Governor::check`] that parallel workers poll between
    /// cells so a cancelled or over-deadline search stops promptly instead
    /// of draining its speculative batch. Explored/memory budgets are
    /// excluded on purpose — they are functions of commit-order progress,
    /// which workers cannot observe; the driver's commit loop enforces them.
    /// Both conditions are monotone, so any cell a worker abandons is
    /// guaranteed to sit behind a failing [`Governor::check`] in the commit
    /// loop and is never reached.
    #[must_use]
    pub fn aborted(&self) -> bool {
        if self.token.is_cancelled() {
            return true;
        }
        matches!(self.budget.deadline, Some(d) if self.start.elapsed() >= d)
    }

    /// The termination status for an interrupt detected now; records the
    /// interrupt as an event on the governor's [`Obs`] handle.
    #[must_use]
    pub fn interrupted(&self, reason: InterruptReason, explored: u64) -> Termination {
        if let Some(m) = self.obs.metrics() {
            m.interrupts.inc();
        }
        self.obs
            .trace(1, || format!("interrupt: {reason} (explored {explored})"));
        Termination::Interrupted {
            reason,
            explored,
            elapsed: self.elapsed(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_budget_is_unlimited() {
        let b = ExecutionBudget::default();
        assert!(b.is_unlimited());
        let g = Governor::new(b, CancellationToken::new());
        assert_eq!(g.check(u64::MAX - 1, usize::MAX - 1), None);
    }

    #[test]
    fn each_limit_trips_independently() {
        let token = CancellationToken::new();
        let g = Governor::new(
            ExecutionBudget::unlimited().with_max_explored(10),
            token.clone(),
        );
        assert_eq!(g.check(9, 0), None);
        assert_eq!(g.check(10, 0), Some(InterruptReason::ExploredBudget));

        let g = Governor::new(
            ExecutionBudget::unlimited().with_max_store_bytes(1024),
            CancellationToken::new(),
        );
        assert_eq!(g.check(0, 1024), None);
        assert_eq!(g.check(0, 1025), Some(InterruptReason::MemoryBudget));

        let g = Governor::new(
            ExecutionBudget::unlimited().with_deadline(Duration::ZERO),
            CancellationToken::new(),
        );
        assert_eq!(g.check(0, 0), Some(InterruptReason::DeadlineExceeded));
    }

    #[test]
    fn shrunk_scales_every_set_limit_and_leaves_unset_ones() {
        let b = ExecutionBudget::unlimited()
            .with_deadline(Duration::from_secs(10))
            .with_max_explored(1000)
            .with_max_store_bytes(4096)
            .shrunk(0.25);
        assert_eq!(b.deadline, Some(Duration::from_millis(2500)));
        assert_eq!(b.max_explored, Some(250));
        assert_eq!(b.max_store_bytes, Some(1024));

        let unlimited = ExecutionBudget::unlimited().shrunk(0.1);
        assert!(unlimited.is_unlimited(), "no limit appears from nowhere");

        // Degenerate factors clamp instead of panicking.
        let b = ExecutionBudget::unlimited()
            .with_deadline(Duration::from_secs(1))
            .shrunk(7.0);
        assert_eq!(b.deadline, Some(Duration::from_secs(1)));
        let b = ExecutionBudget::unlimited()
            .with_max_explored(10)
            .shrunk(-3.0);
        assert_eq!(b.max_explored, Some(0));
        let b = ExecutionBudget::unlimited()
            .with_deadline(Duration::from_secs(1))
            .shrunk(f64::NAN);
        assert_eq!(b.deadline, Some(Duration::from_secs(1)));
    }

    #[test]
    fn cancellation_is_shared_and_sticky() {
        let token = CancellationToken::new();
        let clone = token.clone();
        let g = Governor::new(ExecutionBudget::unlimited(), token.clone());
        assert_eq!(g.check(0, 0), None);
        clone.cancel();
        assert!(token.is_cancelled());
        assert_eq!(g.check(0, 0), Some(InterruptReason::Cancelled));
        assert_eq!(g.check(0, 0), Some(InterruptReason::Cancelled));
    }

    #[test]
    fn cancellation_wins_over_other_limits() {
        let token = CancellationToken::new();
        token.cancel();
        let g = Governor::new(
            ExecutionBudget::unlimited()
                .with_max_explored(0)
                .with_deadline(Duration::ZERO),
            token,
        );
        assert_eq!(g.check(5, 0), Some(InterruptReason::Cancelled));
    }

    #[test]
    fn aborted_covers_exactly_cancellation_and_deadline() {
        let token = CancellationToken::new();
        let g = Governor::new(
            ExecutionBudget::unlimited()
                .with_max_explored(0)
                .with_max_store_bytes(0),
            token.clone(),
        );
        // Commit-order budgets never abort workers.
        assert!(!g.aborted());
        token.cancel();
        assert!(g.aborted(), "cancellation aborts workers");

        let g = Governor::new(
            ExecutionBudget::unlimited().with_deadline(Duration::ZERO),
            CancellationToken::new(),
        );
        assert!(g.aborted(), "a passed deadline aborts workers");
    }

    #[test]
    fn termination_accessors() {
        assert!(Termination::Satisfied.is_complete());
        assert!(Termination::Exhausted.is_complete());
        let t = Termination::Interrupted {
            reason: InterruptReason::Cancelled,
            explored: 3,
            elapsed: Duration::from_millis(1),
        };
        assert!(!t.is_complete());
        assert_eq!(t.interrupt_reason(), Some(&InterruptReason::Cancelled));
        assert!(t.to_string().contains("cancelled"), "{t}");
    }

    #[test]
    fn slugs_are_stable() {
        assert_eq!(Termination::Satisfied.slug(), "satisfied");
        assert_eq!(Termination::Exhausted.slug(), "exhausted");
        let t = Termination::Interrupted {
            reason: InterruptReason::DeadlineExceeded,
            explored: 1,
            elapsed: Duration::ZERO,
        };
        assert_eq!(t.slug(), "deadline");
        assert_eq!(InterruptReason::ExploredBudget.slug(), "explored-budget");
        assert_eq!(InterruptReason::MemoryBudget.slug(), "memory-budget");
        assert_eq!(InterruptReason::Fault("x".into()).slug(), "fault");
    }
}

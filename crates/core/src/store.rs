//! Storage of per-grid-query sub-aggregates.
//!
//! §5.1.1: *"We must store only the aggregate values for the d + 1
//! sub-queries"* of each investigated grid query. The recurrence (Eq. 17)
//! only reaches back one unit along each axis, i.e. one query-layer, so the
//! store evicts layers that can no longer be referenced, bounding memory to
//! two layers' worth of states.

use acq_engine::AggState;

use crate::fasthash::FastMap; // lint-allow(determinism): keyed access; the one fold is order-independent

use crate::space::GridPoint;

/// Sub-aggregate store keyed by grid point.
#[derive(Debug, Default)]
pub struct AggStore {
    // lint-allow(determinism): keyed lookups plus an order-independent byte fold
    map: FastMap<GridPoint, (u64, Box<[AggState]>)>,
    peak_len: usize,
    approx_bytes: usize,
}

/// Approximate heap footprint of one stored entry: the key's coordinates
/// plus the boxed state slice (UDA states may own further heap data that
/// this estimate does not see).
fn entry_bytes(dims: usize, states: usize) -> usize {
    std::mem::size_of::<GridPoint>()
        + dims * std::mem::size_of::<u32>()
        + std::mem::size_of::<(u64, Box<[AggState]>)>()
        + states * std::mem::size_of::<AggState>()
}

impl AggStore {
    /// An empty store.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Inserts the `d + 1` sub-aggregates of `point` (investigated in
    /// query-layer `layer`).
    pub fn insert(&mut self, point: GridPoint, layer: u64, states: Box<[AggState]>) {
        let dims = point.len();
        self.approx_bytes += entry_bytes(dims, states.len());
        if let Some((_, old)) = self.map.insert(point, (layer, states)) {
            // Replaced an entry: back out its full contribution (its key had
            // the same dimensionality as the new one).
            self.approx_bytes = self
                .approx_bytes
                .saturating_sub(entry_bytes(dims, old.len()));
        }
        self.peak_len = self.peak_len.max(self.map.len());
    }

    /// The stored sub-aggregates of `point`, if still retained.
    #[must_use]
    pub fn get(&self, point: &[u32]) -> Option<&[AggState]> {
        self.map.get(point).map(|(_, s)| s.as_ref())
    }

    /// Evicts every entry from layers strictly below `min_layer`; the
    /// recurrence never reaches further back than the previous layer.
    pub fn evict_below(&mut self, min_layer: u64) {
        self.map.retain(|_, (layer, _)| *layer >= min_layer);
        self.approx_bytes = self
            .map
            .iter()
            .map(|(k, (_, s))| entry_bytes(k.len(), s.len()))
            .sum();
    }

    /// Number of currently retained points.
    #[must_use]
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether the store is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Largest number of points ever retained simultaneously (a memory
    /// gauge for the experiments).
    #[must_use]
    pub fn peak_len(&self) -> usize {
        self.peak_len
    }

    /// Approximate heap bytes currently retained by the store, maintained
    /// incrementally (O(1) to read). Excludes hash-table overhead and any
    /// heap data owned by user-defined aggregate states, so treat it as a
    /// lower-bound gauge for [`crate::ExecutionBudget::max_store_bytes`].
    #[must_use]
    pub fn approx_bytes(&self) -> usize {
        self.approx_bytes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn states(n: u64) -> Box<[AggState]> {
        vec![AggState::Count(n)].into_boxed_slice()
    }

    #[test]
    fn insert_get_evict() {
        let mut s = AggStore::new();
        s.insert(vec![0, 0], 0, states(1));
        s.insert(vec![1, 0], 1, states(2));
        s.insert(vec![1, 1], 2, states(3));
        assert_eq!(s.len(), 3);
        assert!(s.get(&[1, 0]).is_some());
        s.evict_below(2);
        assert!(s.get(&[0, 0]).is_none());
        assert!(s.get(&[1, 0]).is_none());
        assert!(s.get(&[1, 1]).is_some());
        assert_eq!(s.len(), 1);
        assert_eq!(s.peak_len(), 3);
    }

    #[test]
    fn byte_accounting_tracks_insert_replace_evict() {
        let mut s = AggStore::new();
        assert_eq!(s.approx_bytes(), 0);
        s.insert(vec![0, 0], 0, states(1));
        let one = s.approx_bytes();
        assert!(one > 0);
        s.insert(vec![1, 0], 1, states(2));
        assert_eq!(s.approx_bytes(), 2 * one);
        // Replacing a point must not double-count it.
        s.insert(vec![1, 0], 1, states(9));
        assert_eq!(s.approx_bytes(), 2 * one);
        s.evict_below(1);
        assert_eq!(s.approx_bytes(), one);
        s.evict_below(u64::MAX);
        assert_eq!(s.approx_bytes(), 0);
    }
}

//! Interactive refinement sessions.
//!
//! The paper's motivating workflow is interactive: Alice states her
//! demographic criteria once, then iterates on the audience size as the
//! budget changes (§1). Re-running [`crate::run_acquire`] per target would
//! re-materialise the base relation and re-score every tuple each time;
//! a [`Session`] prepares the evaluation layer once and answers any number
//! of targets (and thresholds) against it.
//!
//! ```
//! use acq_engine::{Catalog, DataType, Executor, Field, TableBuilder, Value};
//! use acq_query::{AcqQuery, AggConstraint, AggregateSpec, CmpOp, ColRef, Interval,
//!                 Predicate, RefineSide};
//! use acquire_core::{AcquireConfig, Session};
//!
//! let mut b = TableBuilder::new("t", vec![Field::new("x", DataType::Float)])?;
//! for i in 0..1000 {
//!     b.push_row(vec![Value::Float(i as f64 * 0.1)]);
//! }
//! let mut catalog = Catalog::new();
//! catalog.register(b.finish()?)?;
//!
//! let query = AcqQuery::builder()
//!     .table("t")
//!     .predicate(Predicate::select(
//!         ColRef::new("t", "x"),
//!         Interval::new(0.0, 10.0),
//!         RefineSide::Upper,
//!     ))
//!     .constraint(AggConstraint::new(AggregateSpec::count(), CmpOp::Eq, 150.0))
//!     .build()?;
//!
//! let mut exec = Executor::new(catalog);
//! let mut session = Session::new(&mut exec, &query, &AcquireConfig::default())?;
//! let a = session.run(150.0)?; // first budget
//! let b = session.run(400.0)?; // Alice doubles the budget — no re-scan
//! assert!(a.satisfied && b.satisfied);
//! assert!(b.best().unwrap().qscore > a.best().unwrap().qscore);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

use acq_engine::Executor;
use acq_obs::Obs;
use acq_query::AcqQuery;

use crate::config::AcquireConfig;
use crate::driver::acquire_observed;
use crate::error::CoreError;
use crate::eval::GridIndexEvaluator;
use crate::govern::{CancellationToken, ExecutionBudget};
use crate::result::AcqOutcome;
use crate::space::RefinedSpace;

/// A prepared ACQ whose aggregate target can be varied interactively; the
/// evaluation layer (base relation, score matrix, cell buckets) is built
/// once at construction.
///
/// Each session owns a [`CancellationToken`]: hand a clone of
/// [`Session::cancellation_token`] to another thread (say, a UI) and it can
/// interrupt a running [`Session::run`], which then returns the
/// closest-so-far outcome. Cancellation is sticky — further runs return
/// immediately-interrupted outcomes until [`Session::reset_cancellation`]
/// issues a fresh token.
#[derive(Debug)]
pub struct Session<'e> {
    eval: GridIndexEvaluator<'e>,
    query: AcqQuery,
    cfg: AcquireConfig,
    cancel: CancellationToken,
    obs: Obs,
}

impl<'e> Session<'e> {
    /// Prepares the session: resolves the query, fills predicate domains,
    /// materialises the base relation and buckets every tuple by grid cell.
    pub fn new(
        exec: &'e mut Executor,
        query: &AcqQuery,
        cfg: &AcquireConfig,
    ) -> Result<Self, CoreError> {
        cfg.validate()?;
        let mut query = query.clone();
        exec.populate_domains(&mut query)?;
        query.validate_with_norm(&cfg.norm)?;
        let space = RefinedSpace::new(&query, cfg)?;
        let caps = space.caps();
        let eval = GridIndexEvaluator::new(exec, &query, &caps, space.step())?;
        Ok(Self {
            eval,
            query,
            cfg: cfg.clone(),
            cancel: CancellationToken::new(),
            obs: Obs::disabled(),
        })
    }

    /// The prepared query (with the most recent target).
    #[must_use]
    pub fn query(&self) -> &AcqQuery {
        &self.query
    }

    /// A clone of the session's cancellation token. Cancelling it (from any
    /// thread) interrupts the current and any future run until
    /// [`Session::reset_cancellation`].
    #[must_use]
    pub fn cancellation_token(&self) -> CancellationToken {
        self.cancel.clone()
    }

    /// Replaces the (possibly cancelled) token with a fresh one and returns
    /// it; previously handed-out clones no longer affect this session.
    pub fn reset_cancellation(&mut self) -> CancellationToken {
        self.cancel = CancellationToken::new();
        self.cancel.clone()
    }

    /// Sets the execution budget applied to subsequent runs.
    pub fn set_budget(&mut self, budget: ExecutionBudget) {
        self.cfg.budget = budget;
    }

    /// Attaches an observability handle to subsequent runs. Instruments
    /// accumulate *across* runs of this session (counters are never reset);
    /// pass a fresh handle per run for per-run snapshots, or
    /// [`Obs::disabled`] to switch observability off again.
    pub fn set_observability(&mut self, obs: Obs) {
        self.obs = obs;
    }

    /// The observability handle attached to this session.
    #[must_use]
    pub fn observability(&self) -> &Obs {
        &self.obs
    }

    /// Runs the search for a new aggregate target over the prepared layer.
    pub fn run(&mut self, target: f64) -> Result<AcqOutcome, CoreError> {
        self.query.constraint.target = target;
        acquire_observed(
            &mut self.eval,
            &self.query,
            &self.cfg,
            &self.cancel,
            &self.obs,
        )
    }

    /// Runs with a different error threshold `δ` for this run only (the
    /// other knobs — `γ`, the norm — shape the prepared grid and stay
    /// fixed; the session's configured `δ` is restored afterwards).
    pub fn run_with_delta(&mut self, target: f64, delta: f64) -> Result<AcqOutcome, CoreError> {
        let saved = self.cfg.delta;
        self.cfg.delta = delta;
        let out = self.run(target);
        self.cfg.delta = saved;
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval::EvaluationLayer;
    use acq_engine::{Catalog, DataType, Field, TableBuilder, Value};
    use acq_query::{AggConstraint, AggregateSpec, CmpOp, ColRef, Interval, Predicate, RefineSide};

    fn setup() -> (Executor, AcqQuery) {
        let mut b = TableBuilder::new(
            "t",
            vec![
                Field::new("x", DataType::Float),
                Field::new("y", DataType::Float),
            ],
        )
        .unwrap();
        for i in 0..2_000 {
            b.push_row(vec![
                Value::Float(f64::from(i % 100)),
                Value::Float(f64::from(i / 20)),
            ]);
        }
        let mut cat = Catalog::new();
        cat.register(b.finish().unwrap()).unwrap();
        let q = AcqQuery::builder()
            .table("t")
            .predicate(Predicate::select(
                ColRef::new("t", "x"),
                Interval::new(0.0, 20.0),
                RefineSide::Upper,
            ))
            .predicate(Predicate::select(
                ColRef::new("t", "y"),
                Interval::new(0.0, 20.0),
                RefineSide::Upper,
            ))
            .constraint(AggConstraint::new(AggregateSpec::count(), CmpOp::Eq, 100.0))
            .build()
            .unwrap();
        (Executor::new(cat), q)
    }

    #[test]
    fn successive_targets_reuse_the_prepared_layer() {
        let (mut exec, q) = setup();
        let mut session = Session::new(&mut exec, &q, &AcquireConfig::default()).unwrap();
        let scanned_after_build = session.eval.stats().tuples_scanned;

        let a = session.run(800.0).unwrap();
        assert!(a.satisfied);
        let b = session.run(1_500.0).unwrap();
        assert!(b.satisfied);
        // No further base-relation scans: only cell-bucket visits, which
        // touch each admissible tuple at most once per search.
        let scanned_after_runs = session.eval.stats().tuples_scanned;
        assert!(
            scanned_after_runs <= scanned_after_build + 4 * 2_000,
            "layers must be reused: {scanned_after_build} -> {scanned_after_runs}"
        );
        // Bigger target needs strictly more refinement.
        assert!(b.best().unwrap().qscore > a.best().unwrap().qscore);
    }

    #[test]
    fn session_matches_one_shot_runs() {
        let (mut exec, q) = setup();
        let cfg = AcquireConfig::default();
        let mut session = Session::new(&mut exec, &q, &cfg).unwrap();
        let via_session = session.run(800.0).unwrap();

        let (mut exec2, mut q2) = setup();
        q2.constraint.target = 800.0;
        let one_shot = crate::driver::run_acquire(
            &mut exec2,
            &q2,
            &cfg,
            crate::eval::EvalLayerKind::GridIndex,
        )
        .unwrap();
        assert_eq!(via_session.satisfied, one_shot.satisfied);
        assert_eq!(
            via_session.best().map(|r| (r.qscore, r.aggregate)),
            one_shot.best().map(|r| (r.qscore, r.aggregate))
        );
    }

    #[test]
    fn delta_can_vary_per_run() {
        let (mut exec, q) = setup();
        let mut session = Session::new(&mut exec, &q, &AcquireConfig::default()).unwrap();
        let loose = session.run_with_delta(777.0, 0.1).unwrap();
        let tight = session.run_with_delta(777.0, 0.001).unwrap();
        assert!(loose.satisfied);
        if tight.satisfied {
            assert!(tight.best().unwrap().error <= 0.001 + 1e-12);
        }
        // The per-run delta does not stick: a plain run() is back at the
        // session's configured threshold (0.05), not the 0.001 above.
        let after = session.run(777.0).unwrap();
        assert!(after.satisfied);
        assert!(after.best().unwrap().error <= 0.05 + 1e-12);
    }
}

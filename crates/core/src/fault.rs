//! Deterministic fault injection for evaluation layers.
//!
//! [`FaultInjectingLayer`] wraps any [`EvaluationLayer`] and injects
//! seeded, reproducible faults — engine errors, panics, and latency — into
//! its `cell_aggregate` / `full_aggregate` calls. It exists to *test* the
//! driver's robustness guarantees: under any fault schedule,
//! [`crate::acquire`] must return `Ok(outcome)` or a typed
//! [`crate::CoreError`], never abort the process, and never execute a cell
//! twice (§5's at-most-once property must survive faults, interrupts, and
//! worker panics).
//!
//! Faults are a pure function of `(seed, query coordinates)`: a cell query
//! faults according to the cell it targets, a full query according to its
//! bounds. Keying on coordinates rather than a call counter makes the
//! schedule independent of evaluation order, so the *same* cells fault the
//! same way whether the search runs serially or on a parallel worker pool
//! of any size — and injected latency now sleeps on whichever worker thread
//! evaluates the cell instead of always blocking the driver thread.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

use acq_engine::{AggState, CellRange, EngineError, EngineResult, ExecStats};

use crate::eval::{CellCost, EvaluationLayer, ParallelCells};

/// Which fault (if any) a schedule injects into one call.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InjectedFault {
    /// Delegate to the inner layer untouched.
    None,
    /// Return [`EngineError::Fault`] instead of delegating.
    Error,
    /// Panic instead of delegating (the driver's `catch_unwind` — or the
    /// worker pool's, under parallel execution — turns this into
    /// [`crate::CoreError::EvalPanicked`]).
    Panic,
    /// Sleep for the schedule's latency, then delegate (exercises
    /// deadlines).
    Latency,
}

/// A seeded, deterministic plan of which evaluation calls fault and how.
///
/// The plan is keyed by *query coordinates* (the cell's ranges, or a full
/// query's bounds), never by call order or thread identity, so equal seeds
/// replay identically under serial and parallel drivers alike.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultSchedule {
    /// Seed defining the whole schedule; equal seeds replay identically.
    pub seed: u64,
    /// Probability that a call returns an injected [`EngineError::Fault`].
    pub error_rate: f64,
    /// Probability that a call panics.
    pub panic_rate: f64,
    /// Probability that a call is delayed by [`FaultSchedule::latency`].
    pub latency_rate: f64,
    /// Injected delay for latency faults.
    pub latency: Duration,
    /// Cell queries in L1 grid layers strictly below this are exempt from
    /// faults (lets a search make progress before the first fault can
    /// land). Full-query calls are never exempt.
    pub skip_layers: u64,
}

impl FaultSchedule {
    /// A schedule injecting nothing (useful as a pass-through baseline).
    #[must_use]
    pub fn none(seed: u64) -> Self {
        Self {
            seed,
            error_rate: 0.0,
            panic_rate: 0.0,
            latency_rate: 0.0,
            latency: Duration::ZERO,
            skip_layers: 0,
        }
    }

    /// A schedule injecting errors with probability `rate`.
    #[must_use]
    pub fn errors(seed: u64, rate: f64) -> Self {
        Self {
            error_rate: rate,
            ..Self::none(seed)
        }
    }

    /// A schedule injecting panics with probability `rate`.
    #[must_use]
    pub fn panics(seed: u64, rate: f64) -> Self {
        Self {
            panic_rate: rate,
            ..Self::none(seed)
        }
    }

    /// A mixed schedule: `error_rate` errors plus `panic_rate` panics.
    #[must_use]
    pub fn mixed(seed: u64, error_rate: f64, panic_rate: f64) -> Self {
        Self {
            error_rate,
            panic_rate,
            ..Self::none(seed)
        }
    }

    /// The fault this schedule injects into the cell query for `cell`.
    /// Pure in the cell's coordinates: the same cell faults the same way no
    /// matter which worker thread evaluates it, how many workers exist, or
    /// in what order cells run.
    #[must_use]
    pub fn fault_for_cell(&self, cell: &[CellRange]) -> InjectedFault {
        if self.skip_layers > 0 && cell_layer(cell) < self.skip_layers {
            return InjectedFault::None;
        }
        self.decide(cell_key(cell))
    }

    /// The fault this schedule injects into a full refined-query execution
    /// with the given per-dimension bounds (repartitioning, baselines).
    #[must_use]
    pub fn fault_for_full(&self, bounds: &[f64]) -> InjectedFault {
        self.decide(full_key(bounds))
    }

    fn decide(&self, key: u64) -> InjectedFault {
        let u = unit(splitmix64(
            self.seed ^ key.wrapping_mul(0x9e37_79b9_7f4a_7c15),
        ));
        if u < self.panic_rate {
            InjectedFault::Panic
        } else if u < self.panic_rate + self.error_rate {
            InjectedFault::Error
        } else if u < self.panic_rate + self.error_rate + self.latency_rate {
            InjectedFault::Latency
        } else {
            InjectedFault::None
        }
    }
}

/// L1 grid layer of a cell, recovered from its range geometry: every `Open`
/// range spans exactly one grid step `(k-1)·step < s <= k·step`, so its
/// coordinate is `hi / (hi - lo)` and the layer is the coordinate sum.
fn cell_layer(cell: &[CellRange]) -> u64 {
    cell.iter()
        .map(|r| match r {
            CellRange::Zero => 0,
            CellRange::Open { lo, hi } => {
                let step = hi - lo;
                if step > 0.0 && step.is_finite() && hi.is_finite() {
                    (hi / step).round() as u64
                } else {
                    0
                }
            }
        })
        .sum()
}

/// Position-sensitive hash of a cell's coordinates (f64 bit patterns).
fn cell_key(cell: &[CellRange]) -> u64 {
    let mut h = 0x00ce_11ce_11ce_11ce;
    for r in cell {
        match r {
            CellRange::Zero => h = splitmix64(h ^ 0x5eed_0f0f_5eed_0f0f),
            CellRange::Open { lo, hi } => {
                h = splitmix64(h ^ lo.to_bits());
                h = splitmix64(h ^ hi.to_bits());
            }
        }
    }
    h
}

/// Position-sensitive hash of a full query's bounds, tagged so it can never
/// collide with a cell key by construction.
fn full_key(bounds: &[f64]) -> u64 {
    let mut h = 0x0f0f_f0f0_0f0f_f0f0;
    for b in bounds {
        h = splitmix64(h ^ b.to_bits());
    }
    h
}

/// SplitMix64: the standard 64-bit finalising mix (public domain,
/// Steele et al.).
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// Maps a hash to a uniform f64 in [0, 1).
fn unit(h: u64) -> f64 {
    (h >> 11) as f64 / (1u64 << 53) as f64
}

/// Wraps an [`EvaluationLayer`], injecting the faults of a
/// [`FaultSchedule`] into its aggregate calls.
///
/// Cell and full queries draw from one coordinate-keyed schedule, so it
/// covers both the grid search and repartitioning. Metadata calls
/// (`empty_state`, `stats`, `universe_size`) never fault. When the inner
/// layer supports concurrent cell evaluation the wrapper does too: faults
/// then fire on the worker thread that evaluates the cell (latency sleeps
/// *there*, not on the driver thread), while hitting exactly the same
/// cells as a serial run.
#[derive(Debug)]
pub struct FaultInjectingLayer<E> {
    inner: E,
    schedule: FaultSchedule,
    calls: AtomicU64,
    obs: acq_obs::Obs,
}

impl<E> FaultInjectingLayer<E> {
    /// Wraps `inner` under `schedule`.
    pub fn new(inner: E, schedule: FaultSchedule) -> Self {
        Self::with_observability(inner, schedule, acq_obs::Obs::disabled())
    }

    /// Wraps `inner` under `schedule`, counting every injected fault on
    /// `obs` (`faults_injected`). Under parallel execution workers may fire
    /// faults for cells the driver never commits, so the counter reflects
    /// attempted injections, not committed ones.
    pub fn with_observability(inner: E, schedule: FaultSchedule, obs: acq_obs::Obs) -> Self {
        Self {
            inner,
            schedule,
            calls: AtomicU64::new(0),
            obs,
        }
    }

    /// Number of aggregate calls attempted so far (including faulted ones).
    /// Under parallel execution this counts speculative attempts in
    /// whatever order workers made them — informational only.
    #[must_use]
    pub fn calls(&self) -> u64 {
        // relaxed-ok: informational tally with no ordering against other state
        self.calls.load(Ordering::Relaxed)
    }

    /// The wrapped layer.
    pub fn inner(&self) -> &E {
        &self.inner
    }

    /// Unwraps back into the inner layer.
    pub fn into_inner(self) -> E {
        self.inner
    }

    /// Fires `fault` for the call described by `what`/`target`; `Ok(())`
    /// means the call proceeds (possibly after injected latency, slept on
    /// the *calling* thread — the worker, under parallel execution).
    fn fire(
        &self,
        fault: InjectedFault,
        what: &str,
        target: &dyn std::fmt::Debug,
    ) -> EngineResult<()> {
        self.calls.fetch_add(1, Ordering::Relaxed); // relaxed-ok: standalone tally
        if fault != InjectedFault::None {
            if let Some(m) = self.obs.metrics() {
                // The schedule is a pure function of the cell, so this
                // count is identical for every interleaving.
                // worker-metric-ok: schedule-determined count
                m.faults_injected.inc();
            }
            self.obs
                .trace(2, || format!("fault injected: {fault:?} in {what}"));
        }
        match fault {
            InjectedFault::None => Ok(()),
            InjectedFault::Error => Err(EngineError::Fault(format!(
                "injected error in {what} (seed {}, target {target:?})",
                self.schedule.seed
            ))),
            // lint-allow(panic-hygiene): the injected panic is this layer's contract
            InjectedFault::Panic => panic!(
                "injected panic in {what} (seed {}, target {target:?})",
                self.schedule.seed
            ),
            InjectedFault::Latency => {
                std::thread::sleep(self.schedule.latency);
                Ok(())
            }
        }
    }
}

impl<E: EvaluationLayer + Sync> EvaluationLayer for FaultInjectingLayer<E> {
    fn cell_aggregate(&mut self, cell: &[CellRange]) -> EngineResult<AggState> {
        self.fire(self.schedule.fault_for_cell(cell), "cell_aggregate", &cell)?;
        self.inner.cell_aggregate(cell)
    }

    fn full_aggregate(&mut self, bounds: &[f64]) -> EngineResult<AggState> {
        self.fire(
            self.schedule.fault_for_full(bounds),
            "full_aggregate",
            &bounds,
        )?;
        self.inner.full_aggregate(bounds)
    }

    fn empty_state(&self) -> EngineResult<AggState> {
        self.inner.empty_state()
    }

    fn stats(&self) -> ExecStats {
        self.inner.stats()
    }

    fn universe_size(&self) -> usize {
        self.inner.universe_size()
    }

    fn kind_name(&self) -> &'static str {
        self.inner.kind_name()
    }

    fn parallel_cells(&self) -> Option<&dyn ParallelCells> {
        // Parallel-capable exactly when the inner layer is; fault decisions
        // are coordinate-keyed, so they land on the same cells either way.
        self.inner
            .parallel_cells()
            .map(|_| self as &dyn ParallelCells)
    }

    fn commit_cell_cost(&mut self, cost: &CellCost) {
        self.inner.commit_cell_cost(cost);
    }
}

impl<E: EvaluationLayer + Sync> ParallelCells for FaultInjectingLayer<E> {
    fn cell_aggregate_shared(&self, cell: &[CellRange]) -> EngineResult<(AggState, CellCost)> {
        self.fire(self.schedule.fault_for_cell(cell), "cell_aggregate", &cell)?;
        self.inner
            .parallel_cells()
            // lint-allow(panic-hygiene): Some by construction for Sync inner layers
            .expect("parallel_cells() returned this handle only when the inner layer has one")
            .cell_aggregate_shared(cell)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A deterministic family of distinct cells: coordinate `i` on a 2-d
    /// grid of step 5, in the layer-`i` diagonal position.
    fn cell(i: u64) -> Vec<CellRange> {
        let step = 5.0;
        let k = |c: u64| {
            if c == 0 {
                CellRange::Zero
            } else {
                CellRange::Open {
                    lo: (c - 1) as f64 * step,
                    hi: c as f64 * step,
                }
            }
        };
        vec![k(i / 2), k(i - i / 2)]
    }

    #[test]
    fn schedules_are_deterministic() {
        let s = FaultSchedule::mixed(42, 0.3, 0.2);
        let a: Vec<_> = (0..100).map(|i| s.fault_for_cell(&cell(i))).collect();
        let b: Vec<_> = (0..100).map(|i| s.fault_for_cell(&cell(i))).collect();
        assert_eq!(a, b);
        let other = FaultSchedule::mixed(43, 0.3, 0.2);
        let c: Vec<_> = (0..100).map(|i| other.fault_for_cell(&cell(i))).collect();
        assert_ne!(a, c, "different seeds give different schedules");
    }

    #[test]
    fn faults_key_on_coordinates_not_call_order() {
        let s = FaultSchedule::mixed(7, 0.3, 0.2);
        let forward: Vec<_> = (0..50).map(|i| s.fault_for_cell(&cell(i))).collect();
        let mut backward: Vec<_> = (0..50).rev().map(|i| s.fault_for_cell(&cell(i))).collect();
        backward.reverse();
        assert_eq!(forward, backward, "order of evaluation is irrelevant");
    }

    #[test]
    fn rates_are_roughly_honoured() {
        let s = FaultSchedule::mixed(7, 0.25, 0.25);
        let n = 4000u64;
        let faults = (0..n)
            .filter(|&i| s.fault_for_cell(&cell(i)) != InjectedFault::None)
            .count();
        let frac = faults as f64 / n as f64;
        assert!((0.4..0.6).contains(&frac), "fault fraction {frac}");
    }

    #[test]
    fn skip_layers_exempts_low_layers() {
        let mut s = FaultSchedule::errors(1, 1.0);
        s.skip_layers = 5;
        // cell(i) sits in L1 layer i (coordinates sum to i).
        assert!((0..5).all(|i| s.fault_for_cell(&cell(i)) == InjectedFault::None));
        assert_eq!(s.fault_for_cell(&cell(5)), InjectedFault::Error);
        // Full queries are never exempt.
        assert_eq!(s.fault_for_full(&[0.0, 0.0]), InjectedFault::Error);
    }

    #[test]
    fn cell_and_full_keys_are_distinct_spaces() {
        // A cell and a full query over numerically identical coordinates
        // draw independent decisions (different key tags).
        let s = FaultSchedule::errors(3, 0.5);
        let agree = (0..200)
            .filter(|&i| {
                let c = cell(i);
                let bounds: Vec<f64> = c
                    .iter()
                    .map(|r| match r {
                        CellRange::Zero => 0.0,
                        CellRange::Open { hi, .. } => *hi,
                    })
                    .collect();
                (s.fault_for_cell(&c) == InjectedFault::None)
                    == (s.fault_for_full(&bounds) == InjectedFault::None)
            })
            .count();
        assert!(agree < 200, "cell and full decisions must not be coupled");
    }

    #[test]
    fn none_schedule_never_faults() {
        let s = FaultSchedule::none(99);
        assert!((0..1000).all(|i| s.fault_for_cell(&cell(i)) == InjectedFault::None));
        assert_eq!(s.fault_for_full(&[1.0, 2.0]), InjectedFault::None);
    }
}

//! Deterministic fault injection for evaluation layers.
//!
//! [`FaultInjectingLayer`] wraps any [`EvaluationLayer`] and injects
//! seeded, reproducible faults — engine errors, panics, and latency — into
//! its `cell_aggregate` / `full_aggregate` calls. It exists to *test* the
//! driver's robustness guarantees: under any fault schedule,
//! [`crate::acquire`] must return `Ok(outcome)` or a typed
//! [`crate::CoreError`], never abort the process, and never execute a cell
//! twice (§5's at-most-once property must survive faults and interrupts).
//!
//! Faults are a pure function of `(seed, call index)`, so a schedule that
//! exposed a bug replays exactly from its seed.

use std::time::Duration;

use acq_engine::{AggState, CellRange, EngineError, EngineResult, ExecStats};

use crate::eval::EvaluationLayer;

/// Which fault (if any) a schedule injects into one call.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InjectedFault {
    /// Delegate to the inner layer untouched.
    None,
    /// Return [`EngineError::Fault`] instead of delegating.
    Error,
    /// Panic instead of delegating (the driver's `catch_unwind` turns this
    /// into [`crate::CoreError::EvalPanicked`]).
    Panic,
    /// Sleep for the schedule's latency, then delegate (exercises
    /// deadlines).
    Latency,
}

/// A seeded, deterministic plan of which evaluation calls fault and how.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultSchedule {
    /// Seed defining the whole schedule; equal seeds replay identically.
    pub seed: u64,
    /// Probability that a call returns an injected [`EngineError::Fault`].
    pub error_rate: f64,
    /// Probability that a call panics.
    pub panic_rate: f64,
    /// Probability that a call is delayed by [`FaultSchedule::latency`].
    pub latency_rate: f64,
    /// Injected delay for latency faults.
    pub latency: Duration,
    /// Number of initial calls exempt from faults (lets a search make
    /// progress before the first fault lands).
    pub skip_calls: u64,
}

impl FaultSchedule {
    /// A schedule injecting nothing (useful as a pass-through baseline).
    #[must_use]
    pub fn none(seed: u64) -> Self {
        Self {
            seed,
            error_rate: 0.0,
            panic_rate: 0.0,
            latency_rate: 0.0,
            latency: Duration::ZERO,
            skip_calls: 0,
        }
    }

    /// A schedule injecting errors with probability `rate`.
    #[must_use]
    pub fn errors(seed: u64, rate: f64) -> Self {
        Self {
            error_rate: rate,
            ..Self::none(seed)
        }
    }

    /// A schedule injecting panics with probability `rate`.
    #[must_use]
    pub fn panics(seed: u64, rate: f64) -> Self {
        Self {
            panic_rate: rate,
            ..Self::none(seed)
        }
    }

    /// A mixed schedule: `error_rate` errors plus `panic_rate` panics.
    #[must_use]
    pub fn mixed(seed: u64, error_rate: f64, panic_rate: f64) -> Self {
        Self {
            error_rate,
            panic_rate,
            ..Self::none(seed)
        }
    }

    /// The fault this schedule injects into call number `call` (0-based).
    /// Pure: depends only on the schedule and `call`.
    #[must_use]
    pub fn fault_at(&self, call: u64) -> InjectedFault {
        if call < self.skip_calls {
            return InjectedFault::None;
        }
        let u = unit(splitmix64(self.seed ^ call.wrapping_mul(0x9e37_79b9_7f4a_7c15)));
        if u < self.panic_rate {
            InjectedFault::Panic
        } else if u < self.panic_rate + self.error_rate {
            InjectedFault::Error
        } else if u < self.panic_rate + self.error_rate + self.latency_rate {
            InjectedFault::Latency
        } else {
            InjectedFault::None
        }
    }
}

/// SplitMix64: the standard 64-bit finalising mix (public domain,
/// Steele et al.).
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// Maps a hash to a uniform f64 in [0, 1).
fn unit(h: u64) -> f64 {
    (h >> 11) as f64 / (1u64 << 53) as f64
}

/// Wraps an [`EvaluationLayer`], injecting the faults of a
/// [`FaultSchedule`] into its aggregate calls.
///
/// `cell_aggregate` and `full_aggregate` share one call counter, so the
/// schedule covers both the grid search and repartitioning. Metadata calls
/// (`empty_state`, `stats`, `universe_size`) never fault.
#[derive(Debug)]
pub struct FaultInjectingLayer<E> {
    inner: E,
    schedule: FaultSchedule,
    calls: u64,
}

impl<E> FaultInjectingLayer<E> {
    /// Wraps `inner` under `schedule`.
    pub fn new(inner: E, schedule: FaultSchedule) -> Self {
        Self {
            inner,
            schedule,
            calls: 0,
        }
    }

    /// Number of aggregate calls attempted so far (including faulted ones).
    #[must_use]
    pub fn calls(&self) -> u64 {
        self.calls
    }

    /// The wrapped layer.
    pub fn inner(&self) -> &E {
        &self.inner
    }

    /// Unwraps back into the inner layer.
    pub fn into_inner(self) -> E {
        self.inner
    }

    /// Applies the scheduled fault for the next call; `Ok(())` means the
    /// call proceeds (possibly after injected latency).
    fn trip(&mut self, what: &str) -> EngineResult<()> {
        let call = self.calls;
        self.calls += 1;
        match self.schedule.fault_at(call) {
            InjectedFault::None => Ok(()),
            InjectedFault::Error => Err(EngineError::Fault(format!(
                "injected error in {what} (seed {}, call {call})",
                self.schedule.seed
            ))),
            InjectedFault::Panic => panic!(
                "injected panic in {what} (seed {}, call {call})",
                self.schedule.seed
            ),
            InjectedFault::Latency => {
                std::thread::sleep(self.schedule.latency);
                Ok(())
            }
        }
    }
}

impl<E: EvaluationLayer> EvaluationLayer for FaultInjectingLayer<E> {
    fn cell_aggregate(&mut self, cell: &[CellRange]) -> EngineResult<AggState> {
        self.trip("cell_aggregate")?;
        self.inner.cell_aggregate(cell)
    }

    fn full_aggregate(&mut self, bounds: &[f64]) -> EngineResult<AggState> {
        self.trip("full_aggregate")?;
        self.inner.full_aggregate(bounds)
    }

    fn empty_state(&self) -> EngineResult<AggState> {
        self.inner.empty_state()
    }

    fn stats(&self) -> ExecStats {
        self.inner.stats()
    }

    fn universe_size(&self) -> usize {
        self.inner.universe_size()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schedules_are_deterministic() {
        let s = FaultSchedule::mixed(42, 0.3, 0.2);
        let a: Vec<_> = (0..100).map(|i| s.fault_at(i)).collect();
        let b: Vec<_> = (0..100).map(|i| s.fault_at(i)).collect();
        assert_eq!(a, b);
        let other = FaultSchedule::mixed(43, 0.3, 0.2);
        let c: Vec<_> = (0..100).map(|i| other.fault_at(i)).collect();
        assert_ne!(a, c, "different seeds give different schedules");
    }

    #[test]
    fn rates_are_roughly_honoured() {
        let s = FaultSchedule::mixed(7, 0.25, 0.25);
        let n = 4000u64;
        let faults = (0..n)
            .filter(|&i| s.fault_at(i) != InjectedFault::None)
            .count();
        let frac = faults as f64 / n as f64;
        assert!((0.4..0.6).contains(&frac), "fault fraction {frac}");
    }

    #[test]
    fn skip_calls_delays_the_first_fault() {
        let mut s = FaultSchedule::errors(1, 1.0);
        s.skip_calls = 5;
        assert!((0..5).all(|i| s.fault_at(i) == InjectedFault::None));
        assert_eq!(s.fault_at(5), InjectedFault::Error);
    }

    #[test]
    fn none_schedule_never_faults() {
        let s = FaultSchedule::none(99);
        assert!((0..1000).all(|i| s.fault_at(i) == InjectedFault::None));
    }
}

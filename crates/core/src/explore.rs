//! Phase II: Explore — incremental aggregate computation (§5).
//!
//! A grid query `u = (u_1, …, u_d)` decomposes into `d + 1` sub-queries
//! `O_1 … O_{d+1}` (cell, pillar, wall, …, block; Eq. 5–8): `O_j` fixes
//! dimensions `j..d` to the bucket `u_i` and lets dimensions `1..j-1` range
//! over `0..u_i`. Only `O_1` — the **cell** — is unique to the query; every
//! other sub-query satisfies the recurrence
//!
//! ```text
//! O_i(u) = O_{i-1}(u) + O_i(u_1, …, u_{i-1} - 1, …, u_d)      (Eq. 17)
//! ```
//!
//! whose right-hand terms were stored when the *contained* queries were
//! investigated (Theorem 3 guarantees they come first). `O_{d+1}` is the
//! whole refined query. So each grid query costs exactly **one cell query**
//! against the evaluation layer plus `d` constant-time merges — ACQUIRE
//! "evaluates a large number of refined queries at a cost that is a fraction
//! of the execution time for a single query" (§3).

use acq_engine::{AggState, EngineResult};

use crate::eval::EvaluationLayer;
use crate::space::{GridPoint, RefinedSpace};
use crate::store::AggStore;

/// The Explore phase: owns the sub-aggregate store and applies Algorithm 3.
#[derive(Debug, Default)]
pub struct Explorer {
    store: AggStore,
}

impl Explorer {
    /// An explorer with an empty store.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Algorithm 3 (`ComputeAggregate`): computes the aggregate of the grid
    /// query `point`, executing only its cell sub-query and combining stored
    /// sub-aggregates of already-investigated neighbours.
    ///
    /// `layer` is the query-layer `point` is investigated in (used for store
    /// eviction). Panics if a required neighbour was never investigated —
    /// that would violate the Expand phase's containment order (Theorem 3).
    pub fn compute_aggregate<E: EvaluationLayer>(
        &mut self,
        eval: &mut E,
        space: &RefinedSpace,
        point: &GridPoint,
        layer: u64,
    ) -> EngineResult<AggState> {
        // A[0] = O_1: the only execution against the evaluation layer.
        let cell_state = eval.cell_aggregate(&space.cell(point))?;
        self.merge_cell(cell_state, space, point, layer)
    }

    /// The merge half of Algorithm 3: combines an already-executed cell
    /// sub-aggregate with the stored sub-aggregates of contained neighbours
    /// (Eq. 17) and records the new query's sub-aggregate vector.
    ///
    /// This is `compute_aggregate` minus the evaluation-layer call; the
    /// parallel driver executes cells speculatively on worker threads and
    /// applies this merge serially in emission order, which is what keeps
    /// parallel outcomes bit-identical to serial ones.
    pub fn merge_cell(
        &mut self,
        cell_state: AggState,
        space: &RefinedSpace,
        point: &GridPoint,
        layer: u64,
    ) -> EngineResult<AggState> {
        let d = space.dims();
        let mut states: Vec<AggState> = Vec::with_capacity(d + 1);
        states.push(cell_state);
        // A[j] = O_{j+1}(u) = O_j(u) + O_{j+1}(u - e_j), j = 1..d.
        // One scratch buffer serves every neighbour lookup (this loop runs
        // once per grid query — millions of times in deep searches).
        let mut prev = point.clone();
        for j in 1..=d {
            let mut s = states[j - 1].clone();
            if point[j - 1] > 0 {
                prev[j - 1] -= 1;
                let prev_states = self.store.get(&prev).unwrap_or_else(|| {
                    // A missing neighbour means Expand broke its Theorem 3
                    // containment order: an engine bug, and the parallel
                    // driver isolates worker panics into CellOutcome.
                    // lint-allow(panic-hygiene): internal invariant violation, not a user error
                    panic!(
                        "contained query {prev:?} must be investigated before {point:?} \
                         (Theorem 3)"
                    )
                });
                s.merge(&prev_states[j])?;
                prev[j - 1] += 1;
            }
            states.push(s);
        }
        let result = states[d].clone();
        self.store.insert(prev, layer, states.into_boxed_slice());
        Ok(result)
    }

    /// Evicts stored sub-aggregates from layers strictly below `min_layer`
    /// (the recurrence never reaches further back than one layer).
    pub fn evict_below(&mut self, min_layer: u64) {
        self.store.evict_below(min_layer);
    }

    /// The underlying store (memory gauges for experiments).
    #[must_use]
    pub fn store(&self) -> &AggStore {
        &self.store
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::AcquireConfig;
    use crate::eval::{CachedScoreEvaluator, EvaluationLayer, ScanEvaluator};
    use crate::expand::{BfsExpander, Expander};
    use acq_engine::{Catalog, DataType, Executor, Field, TableBuilder, Value};
    use acq_query::{
        AcqQuery, AggConstraint, AggregateSpec, CmpOp, ColRef, Interval, Predicate, RefineSide,
    };
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    /// Random 2-column data + 2-predicate COUNT query.
    fn setup(seed: u64, n: usize) -> (Executor, AcqQuery) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut b = TableBuilder::new(
            "t",
            vec![
                Field::new("x", DataType::Float),
                Field::new("y", DataType::Float),
            ],
        )
        .unwrap();
        for _ in 0..n {
            b.push_row(vec![
                Value::Float(rng.gen_range(0.0..100.0)),
                Value::Float(rng.gen_range(0.0..100.0)),
            ]);
        }
        let mut cat = Catalog::new();
        cat.register(b.finish().unwrap()).unwrap();
        let q = AcqQuery::builder()
            .table("t")
            .predicate(
                Predicate::select(
                    ColRef::new("t", "x"),
                    Interval::new(0.0, 20.0),
                    RefineSide::Upper,
                )
                .with_domain(Interval::new(0.0, 100.0)),
            )
            .predicate(
                Predicate::select(
                    ColRef::new("t", "y"),
                    Interval::new(0.0, 30.0),
                    RefineSide::Upper,
                )
                .with_domain(Interval::new(0.0, 100.0)),
            )
            .constraint(AggConstraint::new(AggregateSpec::count(), CmpOp::Eq, 100.0))
            .build()
            .unwrap();
        (Executor::new(cat), q)
    }

    /// The paper's core invariant: the incremental aggregate of every grid
    /// query equals naive full re-execution of that refined query.
    #[test]
    fn incremental_equals_naive_full_execution() {
        let (mut exec, q) = setup(42, 500);
        let cfg = AcquireConfig::default();
        let space = RefinedSpace::new(&q, &cfg).unwrap();
        let caps = space.caps();
        let mut eval = ScanEvaluator::new(&mut exec, &q, &caps).unwrap();
        let mut explorer = Explorer::new();
        let mut expander = BfsExpander::new(&space);
        let mut checked = 0;
        while let Some(point) = expander.next_query() {
            let layer = RefinedSpace::l1_layer(&point);
            if layer > 12 {
                break;
            }
            let inc = explorer
                .compute_aggregate(&mut eval, &space, &point, layer)
                .unwrap()
                .value();
            let naive = eval.full_aggregate(&space.bounds(&point)).unwrap().value();
            assert_eq!(inc, naive, "point {point:?}");
            checked += 1;
        }
        assert!(checked > 50, "checked {checked} points");
    }

    #[test]
    fn incremental_matches_for_sum_min_max_avg() {
        for spec in [
            AggregateSpec::sum(ColRef::new("t", "y")),
            AggregateSpec::min(ColRef::new("t", "y")),
            AggregateSpec::max(ColRef::new("t", "y")),
            AggregateSpec::avg(ColRef::new("t", "y")),
        ] {
            let (mut exec, mut q) = setup(7, 400);
            q.constraint = AggConstraint::new(spec.clone(), CmpOp::Ge, 100.0);
            let cfg = AcquireConfig::default();
            let space = RefinedSpace::new(&q, &cfg).unwrap();
            let caps = space.caps();
            let mut eval = CachedScoreEvaluator::new(&mut exec, &q, &caps).unwrap();
            let mut explorer = Explorer::new();
            let mut expander = BfsExpander::new(&space);
            while let Some(point) = expander.next_query() {
                let layer = RefinedSpace::l1_layer(&point);
                if layer > 10 {
                    break;
                }
                let inc = explorer
                    .compute_aggregate(&mut eval, &space, &point, layer)
                    .unwrap()
                    .value();
                let naive = eval.full_aggregate(&space.bounds(&point)).unwrap().value();
                match (inc, naive) {
                    (Some(a), Some(b)) => {
                        assert!((a - b).abs() < 1e-9, "{spec:?} at {point:?}: {a} vs {b}")
                    }
                    (a, b) => assert_eq!(a, b, "{spec:?} at {point:?}"),
                }
            }
        }
    }

    /// §5.1: once a query region has been executed it is never re-executed;
    /// each grid point costs exactly one cell query.
    #[test]
    fn one_cell_query_per_grid_point() {
        let (mut exec, q) = setup(3, 300);
        let cfg = AcquireConfig::default();
        let space = RefinedSpace::new(&q, &cfg).unwrap();
        let caps = space.caps();
        let mut eval = ScanEvaluator::new(&mut exec, &q, &caps).unwrap();
        let mut explorer = Explorer::new();
        let mut expander = BfsExpander::new(&space);
        let mut points = 0u64;
        while let Some(point) = expander.next_query() {
            let layer = RefinedSpace::l1_layer(&point);
            if layer > 8 {
                break;
            }
            let _ = explorer
                .compute_aggregate(&mut eval, &space, &point, layer)
                .unwrap();
            points += 1;
        }
        assert_eq!(eval.stats().cell_queries, points);
        assert_eq!(eval.stats().full_queries, 0);
    }

    #[test]
    fn eviction_keeps_recent_layers_usable() {
        let (mut exec, q) = setup(11, 200);
        let cfg = AcquireConfig::default();
        let space = RefinedSpace::new(&q, &cfg).unwrap();
        let caps = space.caps();
        let mut eval = CachedScoreEvaluator::new(&mut exec, &q, &caps).unwrap();
        let mut explorer = Explorer::new();
        let mut expander = BfsExpander::new(&space);
        let mut last_layer = 0u64;
        while let Some(point) = expander.next_query() {
            let layer = RefinedSpace::l1_layer(&point);
            if layer > 6 {
                break;
            }
            if layer > last_layer {
                explorer.evict_below(layer.saturating_sub(1));
                last_layer = layer;
            }
            // Must not panic: previous layer still present.
            let _ = explorer
                .compute_aggregate(&mut eval, &space, &point, layer)
                .unwrap();
        }
        assert!(explorer.store().peak_len() < explorer.store().len() + 10_000);
    }
}

//! Driver outputs.

use acq_engine::ExecStats;
use acq_query::{AcqQuery, PredFunction};

use crate::govern::Termination;
use crate::space::GridPoint;

/// One refined query recommended by ACQUIRE.
#[derive(Debug, Clone, PartialEq)]
pub struct RefinedQueryResult {
    /// Grid coordinates. Empty for results that do not sit on the grid:
    /// repartitioned (fractional) answers and the [`AcqOutcome::closest`]
    /// fallback.
    pub point: GridPoint,
    /// Predicate refinement vector `PScore(Q, Q')`, percent per flexible
    /// predicate (Eq. 2).
    pub pscores: Vec<f64>,
    /// Query refinement score `QScore(Q, Q')` under the configured norm
    /// (Eq. 3).
    pub qscore: f64,
    /// The refined query's actual aggregate value `A_actual`.
    pub aggregate: f64,
    /// Aggregate error `Err_A` against the constraint target (§2.5).
    pub error: f64,
    /// The refined query rendered in the paper's extended SQL.
    pub sql: String,
}

impl RefinedQueryResult {
    /// Human-readable per-predicate change description relative to the
    /// original query: one line per flexible predicate that actually moved
    /// ("part.p_retailprice: upper bound 1000 -> 1104.99 (+10%)").
    #[must_use]
    pub fn explain(&self, original: &AcqQuery) -> Vec<String> {
        let flex = original.flexible();
        let mut out = Vec::new();
        for (k, &i) in flex.iter().enumerate() {
            let Some(&score) = self.pscores.get(k) else {
                continue;
            };
            if score <= 0.0 {
                continue;
            }
            let p = &original.predicates[i];
            let refined = p.refined_interval(score);
            let line = match &p.func {
                PredFunction::Attr(c) => match p.refine {
                    acq_query::RefineSide::Upper => format!(
                        "{c}: upper bound {} -> {} (+{:.1}%)",
                        p.interval.hi(),
                        refined.hi(),
                        score
                    ),
                    acq_query::RefineSide::Lower => format!(
                        "{c}: lower bound {} -> {} (+{:.1}%)",
                        p.interval.lo(),
                        refined.lo(),
                        score
                    ),
                },
                PredFunction::JoinDelta { left, right } => format!(
                    "{left} = {right}: relaxed to a band of width {}",
                    refined.hi()
                ),
                PredFunction::Categorical { col, ontology, .. } => {
                    let height = ontology.height().max(1) as f64;
                    let levels = (score / (100.0 / height)).round() as u32;
                    format!("{col}: accepted categories rolled up {levels} level(s)")
                }
            };
            out.push(line);
        }
        out
    }

    pub(crate) fn new(
        query: &AcqQuery,
        point: GridPoint,
        pscores: Vec<f64>,
        qscore: f64,
        aggregate: f64,
        error: f64,
    ) -> Self {
        let sql = query.refined_sql(&pscores);
        Self {
            point,
            pscores,
            qscore,
            aggregate,
            error,
            sql,
        }
    }
}

/// The outcome of an ACQUIRE search.
#[derive(Debug, Clone)]
pub struct AcqOutcome {
    /// The answer set `A`: every query in the minimal-refinement layer whose
    /// aggregate error is within `δ`, sorted by ascending QScore.
    pub queries: Vec<RefinedQueryResult>,
    /// Whether any query met the constraint within `δ`. When `false`,
    /// [`AcqOutcome::closest`] carries the query attaining the closest
    /// aggregate value (Algorithm 4's fallback).
    pub satisfied: bool,
    /// The query with the smallest aggregate error seen during the search.
    pub closest: Option<RefinedQueryResult>,
    /// The original (unrefined) query's aggregate value `A_actual`.
    pub original_aggregate: f64,
    /// Grid queries investigated.
    pub explored: u64,
    /// Query-layers completed.
    pub layers: u64,
    /// Peak number of grid points whose `d + 1` sub-aggregates were
    /// retained simultaneously (§5.1.1's memory footprint; layered
    /// expanders evict all but the last two layers).
    pub peak_store: usize,
    /// Evaluation-layer work counters for the whole search.
    pub stats: ExecStats,
    /// How the search ended: ran to completion (satisfied or exhausted) or
    /// was interrupted by a budget, a cancellation, or an absorbed fault —
    /// in which case the outcome is the anytime answer accumulated up to
    /// the interrupt.
    pub termination: Termination,
}

impl AcqOutcome {
    /// The best (minimal-QScore) recommended query, if any.
    #[must_use]
    pub fn best(&self) -> Option<&RefinedQueryResult> {
        self.queries.first()
    }

    /// Minimum refinement score among the answers (`QScore_opt` up to the
    /// γ-proximity guarantee of Theorem 1).
    #[must_use]
    pub fn min_qscore(&self) -> Option<f64> {
        self.best().map(|r| r.qscore)
    }

    /// Whether the search was interrupted before running to completion
    /// (deadline, budget, cancellation, or absorbed fault). An interrupted
    /// outcome still carries everything found so far — answers, `closest`,
    /// and counters.
    #[must_use]
    pub fn is_interrupted(&self) -> bool {
        !self.termination.is_complete()
    }

    /// The best answer if any, otherwise the closest-so-far query: the
    /// anytime answer, well-defined whenever at least one grid query
    /// produced a defined aggregate.
    #[must_use]
    pub fn best_or_closest(&self) -> Option<&RefinedQueryResult> {
        self.best().or(self.closest.as_ref())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use acq_query::{AggConstraint, AggregateSpec, CmpOp, ColRef, Interval, Predicate, RefineSide};

    #[test]
    fn explain_names_only_moved_predicates() {
        let q = AcqQuery::builder()
            .table("t")
            .predicate(Predicate::select(
                ColRef::new("t", "x"),
                Interval::new(0.0, 50.0),
                RefineSide::Upper,
            ))
            .predicate(Predicate::select(
                ColRef::new("t", "y"),
                Interval::new(10.0, 90.0),
                RefineSide::Lower,
            ))
            .predicate(Predicate::equi_join(
                ColRef::new("t", "x"),
                ColRef::new("t", "y"),
            ))
            .constraint(AggConstraint::new(AggregateSpec::count(), CmpOp::Eq, 5.0))
            .build()
            .unwrap();
        let r = RefinedQueryResult::new(&q, vec![0, 1, 2], vec![0.0, 25.0, 3.0], 28.0, 5.0, 0.0);
        let lines = r.explain(&q);
        assert_eq!(lines.len(), 2, "{lines:?}");
        assert!(
            lines[0].contains("t.y: lower bound 10 -> -10 (+25.0%)"),
            "{lines:?}"
        );
        assert!(lines[1].contains("band of width 3"), "{lines:?}");
    }
}

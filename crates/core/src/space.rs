//! The Refined Space abstraction (§4).
//!
//! Given an original query `Q` with `d` flexible predicates, `RS(Q)` is a
//! d-dimensional space whose origin is `Q` and whose axes measure individual
//! predicate refinement (PScore percent). ACQUIRE divides it into a grid of
//! step `γ/d`; Theorem 1 shows that some grid query then satisfies the
//! proximity threshold `γ` with respect to the optimal refinement. Every
//! grid point *is* a refined query, and every unit hyper-cube is a *cell*
//! sub-query (§5.1.1).

use acq_engine::CellRange;
use acq_query::{AcqQuery, Norm};

use crate::config::AcquireConfig;
use crate::error::CoreError;

/// A grid query: per-dimension refinement in units of the grid step.
pub type GridPoint = Vec<u32>;

/// The refined space `RS(Q)` of a query: grid step, per-dimension limits,
/// and the norm scoring its points.
#[derive(Debug, Clone)]
pub struct RefinedSpace {
    step: f64,
    limits: Vec<u32>,
    norm: Norm,
}

impl RefinedSpace {
    /// Builds the refined space for `query` under `cfg`.
    ///
    /// Per-dimension limits come from each predicate's
    /// [`acq_query::Predicate::max_useful_score`] (expansion past the
    /// attribute domain admits nothing new), clamped by
    /// `cfg.max_units_per_dim` when the domain is unknown.
    pub fn new(query: &AcqQuery, cfg: &AcquireConfig) -> Result<Self, CoreError> {
        cfg.validate()?;
        query.validate_with_norm(&cfg.norm)?;
        let d = query.dims();
        let step = cfg.gamma / d as f64;
        let limits = query
            .flexible()
            .iter()
            .map(|&i| {
                let p = &query.predicates[i];
                match p.max_useful_score() {
                    Some(m) if m.is_finite() => {
                        ((m / step).ceil() as u64).min(u64::from(cfg.max_units_per_dim)) as u32
                    }
                    _ => cfg.max_units_per_dim,
                }
            })
            .collect();
        Ok(Self {
            step,
            limits,
            norm: cfg.norm.clone(),
        })
    }

    /// Number of dimensions `d`.
    #[must_use]
    pub fn dims(&self) -> usize {
        self.limits.len()
    }

    /// The grid step `γ/d`, in PScore percent.
    #[must_use]
    pub fn step(&self) -> f64 {
        self.step
    }

    /// Per-dimension upper limits (inclusive), in grid units.
    #[must_use]
    pub fn limits(&self) -> &[u32] {
        &self.limits
    }

    /// The origin (the original query).
    #[must_use]
    pub fn origin(&self) -> GridPoint {
        vec![0; self.dims()]
    }

    /// The norm used to score points.
    #[must_use]
    pub fn norm(&self) -> &Norm {
        &self.norm
    }

    /// The PScore vector of a grid point (units × step).
    #[must_use]
    pub fn pscores(&self, p: &[u32]) -> Vec<f64> {
        debug_assert_eq!(p.len(), self.dims());
        p.iter().map(|&u| f64::from(u) * self.step).collect()
    }

    /// The QScore of a grid point under the space's norm.
    #[must_use]
    pub fn qscore(&self, p: &[u32]) -> f64 {
        self.norm.qscore(&self.pscores(p))
    }

    /// The refinement bounds of the grid point, identical to its PScores —
    /// what [`crate::EvaluationLayer::full_aggregate`] consumes.
    #[must_use]
    pub fn bounds(&self, p: &[u32]) -> Vec<f64> {
        self.pscores(p)
    }

    /// The cell sub-query of a grid point (§5.1.1): coordinate `0` selects
    /// tuples already satisfying the predicate; coordinate `k >= 1` selects
    /// the half-open score bucket `((k-1)·step, k·step]`.
    #[must_use]
    pub fn cell(&self, p: &[u32]) -> Vec<CellRange> {
        p.iter()
            .map(|&u| {
                if u == 0 {
                    CellRange::Zero
                } else {
                    CellRange::Open {
                        lo: f64::from(u - 1) * self.step,
                        hi: f64::from(u) * self.step,
                    }
                }
            })
            .collect()
    }

    /// Per-dimension PScore caps for evaluation-layer construction: the
    /// largest score any grid query in this space can request.
    #[must_use]
    pub fn caps(&self) -> Vec<f64> {
        self.limits
            .iter()
            .map(|&u| f64::from(u) * self.step)
            .collect()
    }

    /// Whether `p` lies within the per-dimension limits.
    #[must_use]
    pub fn in_limits(&self, p: &[u32]) -> bool {
        p.iter().zip(&self.limits).all(|(u, l)| u <= l)
    }

    /// The L1 layer of a point (sum of units): the BFS query-layer for `Lp`
    /// norms (Theorem 2).
    #[must_use]
    pub fn l1_layer(p: &[u32]) -> u64 {
        p.iter().map(|&u| u64::from(u)).sum()
    }

    /// The L∞ layer of a point (max unit): the query-layer for Algorithm 2.
    #[must_use]
    pub fn linf_layer(p: &[u32]) -> u64 {
        p.iter().map(|&u| u64::from(u)).max().unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use acq_query::{AggConstraint, AggregateSpec, CmpOp, ColRef, Interval, Predicate, RefineSide};

    fn query(d: usize) -> AcqQuery {
        let mut b = AcqQuery::builder().table("t");
        for i in 0..d {
            b = b.predicate(
                Predicate::select(
                    ColRef::new("t", format!("x{i}")),
                    Interval::new(0.0, 100.0),
                    RefineSide::Upper,
                )
                .with_domain(Interval::new(0.0, 1000.0)),
            );
        }
        b.constraint(AggConstraint::new(AggregateSpec::count(), CmpOp::Eq, 10.0))
            .build()
            .unwrap()
    }

    #[test]
    fn step_is_gamma_over_d() {
        let cfg = AcquireConfig::default(); // gamma = 10
        let s2 = RefinedSpace::new(&query(2), &cfg).unwrap();
        assert!((s2.step() - 5.0).abs() < 1e-12);
        let s4 = RefinedSpace::new(&query(4), &cfg).unwrap();
        assert!((s4.step() - 2.5).abs() < 1e-12);
    }

    #[test]
    fn limits_follow_domains() {
        // Domain [0,1000], interval [0,100]: max useful score = 900%.
        let cfg = AcquireConfig::default();
        let s = RefinedSpace::new(&query(2), &cfg).unwrap();
        // step = 5 -> limit = ceil(900/5) = 180.
        assert_eq!(s.limits(), &[180, 180]);
    }

    #[test]
    fn pscores_qscore_and_example3() {
        let cfg = AcquireConfig::default();
        let s = RefinedSpace::new(&query(2), &cfg).unwrap();
        // The paper's Fig. 3: Q3' with PScore (0, 20) is the grid point
        // (0, 4) under step 5 and has QScore 20 under L1.
        let p = vec![0u32, 4];
        assert_eq!(s.pscores(&p), vec![0.0, 20.0]);
        assert!((s.qscore(&p) - 20.0).abs() < 1e-12);
    }

    #[test]
    fn cell_ranges() {
        let cfg = AcquireConfig::default();
        let s = RefinedSpace::new(&query(2), &cfg).unwrap();
        let cell = s.cell(&[0, 3]);
        assert_eq!(cell[0], CellRange::Zero);
        assert_eq!(cell[1], CellRange::Open { lo: 10.0, hi: 15.0 });
    }

    #[test]
    fn caps_and_limits() {
        let cfg = AcquireConfig::default();
        let s = RefinedSpace::new(&query(2), &cfg).unwrap();
        assert_eq!(s.caps(), vec![900.0, 900.0]);
        assert!(s.in_limits(&[180, 0]));
        assert!(!s.in_limits(&[181, 0]));
    }

    #[test]
    fn unknown_domain_falls_back_to_config_cap() {
        let mut q = query(1);
        q.predicates[0].domain = None;
        let cfg = AcquireConfig {
            max_units_per_dim: 42,
            ..Default::default()
        };
        let s = RefinedSpace::new(&q, &cfg).unwrap();
        assert_eq!(s.limits(), &[42]);
    }

    #[test]
    fn layers() {
        assert_eq!(RefinedSpace::l1_layer(&[2, 3, 0]), 5);
        assert_eq!(RefinedSpace::linf_layer(&[2, 3, 0]), 3);
        assert_eq!(RefinedSpace::linf_layer(&[]), 0);
    }
}

//! Driver configuration.

use acq_query::Norm;

use crate::error::CoreError;
use crate::govern::{ExecutionBudget, FaultPolicy};

/// How the driver schedules the cell sub-queries of one Expand layer.
///
/// All cells of a layer are mutually independent (they partition score
/// space; Theorem 2 orders layers, not cells), so they may execute
/// concurrently. Outcomes are **bit-identical** across every variant and
/// worker count: workers only *execute* cells, while the Eq. 17 merges,
/// answer collection, budget checks and work accounting all happen in the
/// serial emission order (see DESIGN.md).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Parallelism {
    /// Evaluate cells one at a time on the calling thread (the default).
    #[default]
    Serial,
    /// Use exactly this many worker threads (`Fixed(1)` behaves like
    /// `Serial`; `Fixed(0)` is rejected by validation).
    Fixed(usize),
    /// One worker per available CPU
    /// ([`std::thread::available_parallelism`]).
    Auto,
}

impl Parallelism {
    /// The worker count this setting resolves to (at least 1).
    #[must_use]
    pub fn workers(&self) -> usize {
        match self {
            Self::Serial => 1,
            Self::Fixed(n) => (*n).max(1),
            Self::Auto => std::thread::available_parallelism().map_or(1, std::num::NonZero::get),
        }
    }
}

/// Tunable parameters of the ACQUIRE driver (Definition 1 and Algorithm 4).
#[derive(Debug, Clone, PartialEq)]
pub struct AcquireConfig {
    /// The refinement (proximity) threshold `γ`: the grid step is `γ/d`, so
    /// Theorem 1 guarantees some grid query lies within `γ` of the optimal
    /// refinement. Fig. 10(b) varies it over 2–12; the default is 10.
    pub gamma: f64,
    /// The aggregate error threshold `δ` (relative, see
    /// [`acq_query::AggErrorFn`]); the paper's experiments use 0.05, and
    /// Fig. 10(c) varies it over 1e-4–1e-1.
    pub delta: f64,
    /// The norm folding per-predicate refinements into a QScore (default
    /// `L1`, Eq. 3; `L∞` switches the Expand phase to Algorithm 2; weighted
    /// norms express §7.1 preferences).
    pub norm: Norm,
    /// Number of repartitioning iterations `b` applied to a cell whose query
    /// overshoots the constraint by more than `δ` (Algorithm 4 line 14).
    pub repartition_depth: u32,
    /// Safety cap on the number of query-layers explored; the search
    /// returns the closest query found if it is reached.
    pub max_layers: u64,
    /// Safety cap on grid units per dimension for predicates whose attribute
    /// domain is unknown (bounds memory on open-ended searches).
    pub max_units_per_dim: u32,
    /// Safety cap on the number of grid queries investigated (bounds the
    /// combinatorial frontier growth that `max_layers` alone does not, e.g.
    /// unsatisfiable constraints over predicates with unknown domains). The
    /// search returns the closest query found when it is reached.
    pub max_explored: u64,
    /// Worker threads used by the cached/indexed evaluation layers when
    /// scoring the base relation (1 = serial; results are identical either
    /// way).
    pub threads: usize,
    /// Worker threads used by the Explore phase to evaluate the cell
    /// sub-queries of one Expand layer concurrently. Outcomes are
    /// bit-identical for every setting; see [`Parallelism`].
    pub parallelism: Parallelism,
    /// Use best-first expansion keyed by the actual QScore instead of
    /// Algorithm 1's L1-layered BFS. Exact ordering for any `Lp`/weighted
    /// norm (an extension beyond the paper) at the cost of unbounded
    /// sub-aggregate retention; irrelevant under `L1`, ignored under `L∞`.
    pub exact_lp_order: bool,
    /// Resource limits (wall-clock deadline, explored-query budget,
    /// sub-aggregate memory budget) checked cooperatively once per grid
    /// query. Hitting one interrupts the search, which still returns the
    /// closest-so-far outcome with a machine-readable
    /// [`crate::Termination::Interrupted`] status. Unlimited by default.
    pub budget: ExecutionBudget,
    /// What to do when the evaluation layer fails or panics mid-search:
    /// propagate a typed error (default) or absorb the fault into an
    /// interrupted, closest-so-far outcome.
    pub fault_policy: FaultPolicy,
    /// Classify zone-map blocks against each cell to skip or bulk-fold them
    /// instead of filtering every tuple (default on). Outcomes are
    /// bit-identical either way; turning it off is an ablation/debugging
    /// knob, not a correctness one.
    pub zone_pruning: bool,
}

impl Default for AcquireConfig {
    fn default() -> Self {
        Self {
            gamma: 10.0,
            delta: 0.05,
            norm: Norm::L1,
            repartition_depth: 3,
            max_layers: 100_000,
            max_units_per_dim: 100_000,
            max_explored: 50_000_000,
            threads: 1,
            parallelism: Parallelism::Serial,
            exact_lp_order: false,
            budget: ExecutionBudget::default(),
            fault_policy: FaultPolicy::default(),
            zone_pruning: true,
        }
    }
}

impl AcquireConfig {
    /// Validates the configuration.
    pub fn validate(&self) -> Result<(), CoreError> {
        if self.gamma <= 0.0 || !self.gamma.is_finite() {
            return Err(CoreError::Config(format!(
                "gamma must be a positive finite number, got {}",
                self.gamma
            )));
        }
        if self.delta < 0.0 || !self.delta.is_finite() {
            return Err(CoreError::Config(format!(
                "delta must be a non-negative finite number, got {}",
                self.delta
            )));
        }
        if self.max_units_per_dim == 0 {
            return Err(CoreError::Config(
                "max_units_per_dim must be positive".into(),
            ));
        }
        if self.threads == 0 {
            return Err(CoreError::Config("threads must be at least 1".into()));
        }
        if self.parallelism == Parallelism::Fixed(0) {
            return Err(CoreError::Config(
                "parallelism must name at least 1 worker (use Serial or Fixed(n >= 1))".into(),
            ));
        }
        Ok(())
    }

    /// Convenience: same config with a different `γ`.
    #[must_use]
    pub fn with_gamma(mut self, gamma: f64) -> Self {
        self.gamma = gamma;
        self
    }

    /// Convenience: same config with a different `δ`.
    #[must_use]
    pub fn with_delta(mut self, delta: f64) -> Self {
        self.delta = delta;
        self
    }

    /// Convenience: same config with a different norm.
    #[must_use]
    pub fn with_norm(mut self, norm: Norm) -> Self {
        self.norm = norm;
        self
    }

    /// Convenience: same config with a different execution budget.
    #[must_use]
    pub fn with_budget(mut self, budget: ExecutionBudget) -> Self {
        self.budget = budget;
        self
    }

    /// Convenience: same config with a different fault policy.
    #[must_use]
    pub fn with_fault_policy(mut self, fault_policy: FaultPolicy) -> Self {
        self.fault_policy = fault_policy;
        self
    }

    /// Convenience: same config with a different Explore parallelism.
    #[must_use]
    pub fn with_parallelism(mut self, parallelism: Parallelism) -> Self {
        self.parallelism = parallelism;
        self
    }

    /// Convenience: same config with zone-map pruning toggled (ablation
    /// knob; outcomes are bit-identical either way).
    #[must_use]
    pub fn with_zone_pruning(mut self, zone_pruning: bool) -> Self {
        self.zone_pruning = zone_pruning;
        self
    }

    /// Convenience: same config with `threads` worker threads for both
    /// evaluation-layer construction (scoring) and the parallel Explore
    /// phase. This is what the CLI's `--threads` maps to.
    #[must_use]
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads.max(1);
        self.parallelism = if threads <= 1 {
            Parallelism::Serial
        } else {
            Parallelism::Fixed(threads)
        };
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_valid_and_matches_paper() {
        let c = AcquireConfig::default();
        c.validate().unwrap();
        assert_eq!(c.gamma, 10.0);
        assert_eq!(c.delta, 0.05);
        assert_eq!(c.norm, Norm::L1);
        assert_eq!(c.repartition_depth, 3);
        assert!(c.zone_pruning, "zone pruning defaults on");
    }

    #[test]
    fn invalid_configs_rejected() {
        assert!(AcquireConfig::default().with_gamma(0.0).validate().is_err());
        assert!(AcquireConfig::default()
            .with_gamma(f64::NAN)
            .validate()
            .is_err());
        assert!(AcquireConfig::default()
            .with_delta(-0.1)
            .validate()
            .is_err());
        let c = AcquireConfig {
            max_units_per_dim: 0,
            ..Default::default()
        };
        assert!(c.validate().is_err());
        assert!(AcquireConfig::default()
            .with_parallelism(Parallelism::Fixed(0))
            .validate()
            .is_err());
    }

    #[test]
    fn parallelism_resolves_to_at_least_one_worker() {
        assert_eq!(Parallelism::Serial.workers(), 1);
        assert_eq!(Parallelism::Fixed(1).workers(), 1);
        assert_eq!(Parallelism::Fixed(6).workers(), 6);
        assert!(Parallelism::Auto.workers() >= 1);
        assert_eq!(Parallelism::default(), Parallelism::Serial);
    }

    #[test]
    fn with_threads_sets_both_knobs() {
        let c = AcquireConfig::default().with_threads(4);
        assert_eq!(c.threads, 4);
        assert_eq!(c.parallelism, Parallelism::Fixed(4));
        c.validate().unwrap();
        let c = AcquireConfig::default().with_threads(1);
        assert_eq!(c.parallelism, Parallelism::Serial);
        let c = AcquireConfig::default().with_threads(0);
        assert_eq!(c.threads, 1);
        assert_eq!(c.parallelism, Parallelism::Serial);
    }
}

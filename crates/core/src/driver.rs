//! The ACQUIRE driver — Algorithm 4.
//!
//! Iteratively **Expand**s the refined space (grid queries in non-decreasing
//! refinement order) and **Explore**s each query's aggregate via incremental
//! aggregate computation. A query whose aggregate error is within `δ` joins
//! the answer set and pins the minimal refinement layer; the search finishes
//! that layer (collecting every alternative with the same refinement score)
//! and stops. Queries that *overshoot* the target by more than `δ` have
//! their cell repartitioned for `b` iterations (§6). If nothing satisfies
//! the constraint, the query attaining the closest aggregate value is
//! returned.
//!
//! # Parallel Explore
//!
//! The driver drains grid queries in **same-layer batches**. With
//! [`crate::Parallelism`] above one worker and an evaluation layer exposing
//! [`crate::ParallelCells`], each batch's cell sub-queries are executed
//! speculatively on a work-stealing pool (the `pool` module); the merges of
//! Eq. 17, answer collection, budget checks and work accounting then run in
//! the serial emission order over the prefetched results. Because cells
//! within a layer are mutually independent and the per-point control flow
//! cannot break out of a layer mid-way (`min_ref_layer` only takes effect
//! at the *next* layer boundary, and `max_layers` is constant within a
//! batch), this is observably identical — bit for bit, including stats and
//! termination — to the serial loop for any thread count.

use std::time::Instant;

use acq_engine::{EngineResult, Executor};
use acq_obs::Obs;
use acq_query::AcqQuery;

use crate::config::AcquireConfig;
use crate::error::CoreError;
use crate::eval::{
    CachedScoreEvaluator, EvalLayerKind, EvaluationLayer, GridIndexEvaluator, ScanEvaluator,
};
use crate::expand::{BestFirstExpander, BfsExpander, Expander, LinfExpander};
use crate::explore::Explorer;
use crate::govern::{CancellationToken, FaultPolicy, Governor, InterruptReason, Termination};
use crate::pool::{self, CellOutcome};
use crate::progress::{ProgressEvent, ProgressSink};
use crate::repartition::repartition;
use crate::result::{AcqOutcome, RefinedQueryResult};
use crate::space::{GridPoint, RefinedSpace};

/// Renders a `catch_unwind` payload as text (panics carry `&str` or
/// `String` in practice).
pub(crate) fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Runs an evaluation-layer call with panic isolation: a panicking
/// evaluator (or a violated driver invariant inside the call) becomes a
/// typed [`CoreError::EvalPanicked`] instead of unwinding through — or
/// aborting — the caller.
pub(crate) fn isolated<T>(f: impl FnOnce() -> EngineResult<T>) -> Result<T, CoreError> {
    match std::panic::catch_unwind(std::panic::AssertUnwindSafe(f)) {
        Ok(result) => result.map_err(CoreError::from),
        Err(payload) => Err(CoreError::EvalPanicked(panic_message(payload))),
    }
}

/// Runs ACQUIRE against a caller-constructed evaluation layer.
///
/// The evaluation layer must have been built with per-dimension caps at
/// least [`RefinedSpace::caps`] for this query and configuration (which
/// [`run_acquire`] guarantees).
///
/// Equivalent to [`acquire_with`] with a token nobody can cancel; the
/// configured [`AcquireConfig::budget`] still applies.
pub fn acquire<E: EvaluationLayer>(
    eval: &mut E,
    query: &AcqQuery,
    cfg: &AcquireConfig,
) -> Result<AcqOutcome, CoreError> {
    acquire_with(eval, query, cfg, &CancellationToken::new())
}

/// Runs ACQUIRE with an externally owned [`CancellationToken`].
///
/// The search checks the token (and the configured budget) cooperatively
/// once per grid query; on interrupt it returns `Ok` with everything found
/// so far — the answer set, the closest-so-far query, and a
/// [`Termination::Interrupted`] status naming the reason — making the
/// driver an anytime algorithm.
pub fn acquire_with<E: EvaluationLayer>(
    eval: &mut E,
    query: &AcqQuery,
    cfg: &AcquireConfig,
    cancel: &CancellationToken,
) -> Result<AcqOutcome, CoreError> {
    acquire_observed(eval, query, cfg, cancel, &Obs::disabled())
}

/// Runs ACQUIRE with an externally owned [`CancellationToken`] and an
/// [`Obs`] observability handle.
///
/// With a disabled handle (the default everywhere) this *is*
/// [`acquire_with`]: every instrument call short-circuits on a null check.
/// With an enabled handle the driver records phase spans (expand layer N,
/// speculative pool, repartition), per-layer gauges (frontier batch size,
/// store occupancy, budget headroom), per-cell execution latency, and the
/// event counters of [`acq_obs::Metrics`]. All deterministic instruments
/// are committed from this serial loop — in emission order, exactly where
/// `explored` advances — so snapshot counters are reproducible for any
/// thread count (see DESIGN.md). The outcome itself is bit-identical with
/// observability on or off.
pub fn acquire_observed<E: EvaluationLayer>(
    eval: &mut E,
    query: &AcqQuery,
    cfg: &AcquireConfig,
    cancel: &CancellationToken,
    obs: &Obs,
) -> Result<AcqOutcome, CoreError> {
    acquire_progress(eval, query, cfg, cancel, obs, None)
}

/// The serial progress commit: the single place the driver pushes into a
/// [`ProgressSink`]. Stamping the elapsed time and pushing live in one
/// named function so `[commit-reachability]` can root its closure exactly
/// here — everything this (and [`ProgressSink::try_push`]) touches must
/// stay wait-free.
fn emit_progress(sink: &ProgressSink, start: Instant, mut event: ProgressEvent) {
    event.elapsed_ms = start.elapsed().as_millis().min(u128::from(u64::MAX)) as u64;
    sink.try_push(event);
}

/// [`acquire_observed`] with an optional live [`ProgressSink`].
///
/// With a sink attached the driver emits a [`ProgressEvent`] at every
/// serial layer-boundary commit and one terminal event when the search
/// ends. Emission is **observational only**: the sink is wait-free
/// (try-push, drop-counted — a slow or absent reader costs the commit path
/// nothing), no event ever feeds back into the search, and the outcome is
/// bit-identical to a run without the sink for every thread count. With
/// `None` this *is* [`acquire_observed`].
pub fn acquire_progress<E: EvaluationLayer>(
    eval: &mut E,
    query: &AcqQuery,
    cfg: &AcquireConfig,
    cancel: &CancellationToken,
    obs: &Obs,
    progress: Option<&ProgressSink>,
) -> Result<AcqOutcome, CoreError> {
    cfg.validate()?;
    query.validate_with_norm(&cfg.norm)?;
    let space = RefinedSpace::new(query, cfg)?;
    let mut expander: Box<dyn Expander> = if cfg.norm.is_linf() {
        Box::new(LinfExpander::new(&space))
    } else if cfg.exact_lp_order {
        Box::new(BestFirstExpander::new(&space))
    } else {
        Box::new(BfsExpander::new(&space))
    };
    let mut explorer = Explorer::new();
    let governor = Governor::with_obs(cfg.budget.clone(), cancel.clone(), obs.clone());

    let target = query.constraint.target;
    let err_fn = query.error_fn;
    let expanding = query.constraint.op.is_expanding();

    let mut answers: Vec<RefinedQueryResult> = Vec::new();
    // The closest-aggregate fallback is tracked as raw numbers and only
    // materialised (SQL rendered) once, when the outcome is assembled —
    // it improves on a large fraction of explored points.
    let mut closest: Option<(Vec<f64>, f64, f64)> = None; // (pscores, aggregate, error)
    let mut min_ref_layer = u64::MAX;
    let mut current_layer = 0u64;
    let mut explored = 0u64;
    let mut original_aggregate = f64::NAN;
    let mut interrupt: Option<InterruptReason> = None;

    // Absorbs a mid-search evaluation failure under `FaultPolicy::BestEffort`
    // (recording it as an interrupt) or propagates it (the default).
    let on_fault =
        |e: CoreError, interrupt: &mut Option<InterruptReason>| -> Result<(), CoreError> {
            match cfg.fault_policy {
                FaultPolicy::Propagate => Err(e),
                FaultPolicy::BestEffort => {
                    *interrupt = Some(InterruptReason::Fault(e.to_string()));
                    Ok(())
                }
            }
        };

    // Cap on one layer-batch: bounds the speculative work wasted if an
    // interrupt lands mid-layer, and the transient memory of prefetched
    // cell states.
    const MAX_BATCH: usize = 4096;
    // Below this batch size, spawning workers costs more than it saves
    // (the first L1 layers hold only 1..d cells).
    const MIN_PARALLEL_BATCH: usize = 4;
    let workers = cfg.parallelism.workers();
    // The first grid query of the next layer, popped while draining the
    // current one.
    let mut pending: Option<GridPoint> = None;

    // Observability plumbing: bind the registry once so the hot loop pays a
    // single null check per instrument, and precompute the effective
    // explored cap feeding the budget-headroom gauge.
    let metrics = obs.metrics();
    let explored_limit = cfg
        .max_explored
        .min(cfg.budget.max_explored.unwrap_or(u64::MAX));
    // Progress plumbing: the run clock exists only when a sink is attached
    // and feeds `elapsed_ms` alone — events never branch the search.
    // lint-allow(determinism): progress timestamps only; never branches the search
    let progress_start = progress.map(|_| Instant::now());
    let progress_query_id = obs.query_id().unwrap_or(0);
    // Last layer traced as an expand event: serial mode produces one
    // single-query batch per grid point, which would flood the trace with
    // identical lines; multi-cell batches always trace.
    let mut traced_layer = u64::MAX;
    if obs.is_enabled() {
        obs.set_meta("evaluator", eval.kind_name());
        obs.set_meta("workers", &workers.to_string());
        obs.set_meta("dims", &space.dims().to_string());
        // Serve mode attaches a registry request ID before the run; tagging
        // the root span keeps traces attributable once more than one query
        // has flowed through a handle's lifetime.
        let query_id = obs.query_id();
        obs.trace(0, || {
            let qid = query_id.map(|id| format!("[q{id}] ")).unwrap_or_default();
            format!(
                "{qid}acquire: target {} ({} workers, {} dims)",
                query.constraint.target,
                workers,
                space.dims()
            )
        });
    }

    // -- assemble one same-layer batch per iteration (size 1 when serial) --
    'search: while let Some(first) = pending.take().or_else(|| expander.next_query()) {
        let layer = expander.layer_of(&first);
        if layer > min_ref_layer || layer > cfg.max_layers {
            break;
        }
        let mut batch: Vec<GridPoint> = vec![first];
        if workers > 1 {
            // Never drain past the explored budgets: cells beyond them
            // could only be wasted speculative work.
            let remaining = cfg
                .max_explored
                .min(cfg.budget.max_explored.unwrap_or(u64::MAX))
                .saturating_sub(explored);
            let cap = usize::try_from(remaining.clamp(1, MAX_BATCH as u64)).unwrap_or(MAX_BATCH);
            while batch.len() < cap {
                match expander.next_query() {
                    Some(p) if expander.layer_of(&p) == layer => batch.push(p),
                    next => {
                        pending = next;
                        break;
                    }
                }
            }
        }

        if let Some(m) = metrics {
            m.current_layer.set(layer);
            m.frontier_batch.set(batch.len() as u64);
            m.batch_cells.observe(batch.len() as u64);
        }
        if layer != traced_layer || batch.len() > 1 {
            traced_layer = layer;
            obs.trace(0, || {
                format!(
                    "expand layer {layer}: batch of {} grid queries",
                    batch.len()
                )
            });
        }

        // -- speculative phase: execute the batch's cells on the pool -----
        let mut prefetched: Option<Vec<Option<CellOutcome>>> =
            if workers > 1 && batch.len() >= MIN_PARALLEL_BATCH {
                eval.parallel_cells().map(|par| {
                    let cells: Vec<_> = batch.iter().map(|p| space.cell(p)).collect();
                    // lint-allow(determinism): trace timing only; never branches the search
                    let t0 = obs.is_tracing().then(Instant::now);
                    let out = pool::execute_batch(par, &cells, workers, &governor, obs);
                    if let Some(t0) = t0 {
                        obs.trace_span(1, t0.elapsed(), || {
                            format!(
                                "explore: speculative pool ({workers} workers, {}/{} cells)",
                                out.iter().filter(|s| s.is_some()).count(),
                                out.len()
                            )
                        });
                    }
                    out
                })
            } else {
                None
            };

        // -- commit phase: exactly the serial per-point loop --------------
        for (i, point) in batch.iter().enumerate() {
            if explored >= cfg.max_explored {
                // The legacy safety cap behaves like an explored-query
                // budget.
                interrupt = Some(InterruptReason::ExploredBudget);
                break 'search;
            }
            if let Some(reason) = governor.check(explored, explorer.store().approx_bytes()) {
                interrupt = Some(reason);
                break 'search;
            }
            if layer > current_layer {
                // The recurrence only reaches back one layer (layered
                // expanders; best-first forbids eviction).
                if let Some(min) = expander.evictable_below(layer) {
                    explorer.evict_below(min);
                }
                current_layer = layer;
                // The serial layer-boundary commit: the one place mid-run
                // progress is emitted. `explored` is strictly monotone
                // across these events — at least one cell commits between
                // consecutive boundaries.
                if let (Some(sink), Some(start)) = (progress, progress_start) {
                    emit_progress(
                        sink,
                        start,
                        ProgressEvent {
                            query_id: progress_query_id,
                            layer,
                            explored,
                            frontier: batch.len() as u64,
                            store_bytes: explorer.store().approx_bytes() as u64,
                            zones_pruned: eval.stats().zones_pruned,
                            elapsed_ms: 0,
                            terminal: false,
                        },
                    );
                }
            }
            let (computed, cell_ns) = match prefetched.as_mut().and_then(|slots| slots[i].take()) {
                Some(CellOutcome::Done(cell_state, cost, nanos)) => {
                    // Deferred accounting, applied in commit order so stats
                    // are bit-identical to a serial run.
                    eval.commit_cell_cost(&cost);
                    (
                        isolated(|| explorer.merge_cell(cell_state, &space, point, layer)),
                        nanos,
                    )
                }
                Some(CellOutcome::Failed(e)) => (Err(CoreError::from(e)), 0),
                Some(CellOutcome::Panicked(msg)) => (Err(CoreError::EvalPanicked(msg)), 0),
                // Serial mode, or a slot the pool abandoned on abort — the
                // governor check above fires first in that case, so this
                // arm then only documents safety: the cell was never
                // executed, and executing it here keeps at-most-once
                // intact.
                None => {
                    // lint-allow(determinism): latency metric only; never branches the search
                    let t0 = metrics.map(|_| Instant::now());
                    let r = isolated(|| explorer.compute_aggregate(eval, &space, point, layer));
                    let nanos = t0
                        .map(|t| t.elapsed().as_nanos().min(u128::from(u64::MAX)) as u64)
                        .unwrap_or(0);
                    (r, nanos)
                }
            };
            let state = match computed {
                Ok(state) => state,
                Err(e) => {
                    on_fault(e, &mut interrupt)?;
                    break 'search;
                }
            };
            explored += 1;
            if let Some(m) = metrics {
                // Deterministic instruments commit here, in emission order,
                // right where `explored` advances: the cell-execution count
                // and latency-histogram total track `explored` exactly.
                m.cells_executed.inc();
                m.cell_latency_ns.observe(cell_ns);
                let store = explorer.store();
                m.store_len.set(store.len() as u64);
                m.store_peak.set(store.peak_len() as u64);
                m.store_bytes.set(store.approx_bytes() as u64);
                if explored_limit != u64::MAX {
                    m.budget_headroom
                        .set(explored_limit.saturating_sub(explored));
                }
            }

            let value = state.value();
            if point.iter().all(|&u| u == 0) {
                original_aggregate = value.unwrap_or(f64::NAN);
            }
            // MIN/MAX/AVG of an empty result set are undefined: not a
            // candidate.
            let Some(actual) = value else { continue };
            let error = err_fn.error(target, actual);

            let make = |point: Vec<u32>, actual: f64, error: f64| {
                RefinedQueryResult::new(
                    query,
                    point.clone(),
                    space.pscores(&point),
                    space.qscore(&point),
                    actual,
                    error,
                )
            };

            if error <= cfg.delta {
                answers.push(make(point.clone(), actual, error));
                min_ref_layer = min_ref_layer.min(layer);
                if let Some(m) = metrics {
                    m.answers_found.inc();
                }
                obs.trace(1, || {
                    format!("answer: aggregate {actual} (error {error:.4}, layer {layer})")
                });
            } else if expanding && actual > target && answers.is_empty() {
                // The constraint's crossing point lies inside this cell:
                // repartition (Algorithm 4 / §6). Once a grid answer
                // exists, finer fractional answers cannot improve the
                // answer layer, so repartitioning stops (it would
                // re-execute full queries for every overshooting point of
                // the closing layer).
                if let Some(m) = metrics {
                    m.repartitions.inc();
                }
                obs.trace(1, || {
                    format!(
                        "repartition: layer-{layer} cell overshoots target ({actual} > {target})"
                    )
                });
                let hit = match isolated(|| {
                    repartition(eval, &space, point, target, err_fn, cfg.repartition_depth)
                }) {
                    Ok(hit) => hit,
                    Err(e) => {
                        on_fault(e, &mut interrupt)?;
                        break 'search;
                    }
                };
                if let Some(hit) = hit {
                    let qscore = space.norm().qscore(&hit.bounds);
                    let r = RefinedQueryResult::new(
                        query,
                        Vec::new(),
                        hit.bounds,
                        qscore,
                        hit.aggregate,
                        hit.error,
                    );
                    if hit.error <= cfg.delta {
                        let (aggregate, err) = (r.aggregate, r.error);
                        answers.push(r);
                        min_ref_layer = min_ref_layer.min(layer);
                        if let Some(m) = metrics {
                            m.answers_found.inc();
                        }
                        obs.trace(2, || {
                            format!("answer: repartitioned aggregate {aggregate} (error {err:.4})")
                        });
                    } else if closest.as_ref().is_none_or(|c| r.error < c.2) {
                        closest = Some((r.pscores, r.aggregate, r.error));
                    }
                }
            }
            if closest.as_ref().is_none_or(|c| error < c.2) {
                closest = Some((space.pscores(point), actual, error));
            }
        }
    }

    answers.sort_by(|a, b| a.qscore.total_cmp(&b.qscore));
    let satisfied = !answers.is_empty();
    let closest = closest.map(|(pscores, aggregate, error)| {
        let qscore = cfg.norm.qscore(&pscores);
        RefinedQueryResult::new(query, Vec::new(), pscores, qscore, aggregate, error)
    });
    let termination = match interrupt {
        Some(reason) => governor.interrupted(reason, explored),
        None if satisfied => Termination::Satisfied,
        None => Termination::Exhausted,
    };
    let stats = eval.stats();
    if let (Some(sink), Some(start)) = (progress, progress_start) {
        emit_progress(
            sink,
            start,
            ProgressEvent {
                query_id: progress_query_id,
                layer: current_layer,
                explored,
                frontier: 0,
                store_bytes: explorer.store().approx_bytes() as u64,
                zones_pruned: stats.zones_pruned,
                elapsed_ms: 0,
                terminal: true,
            },
        );
    }
    if obs.is_enabled() {
        obs.record_exec_stats(&stats.fields());
        let (termination, n_answers) = (&termination, answers.len());
        let query_id = obs.query_id();
        obs.trace(0, || {
            let qid = query_id.map(|id| format!("[q{id}] ")).unwrap_or_default();
            format!("{qid}done: {termination} — explored {explored}, {n_answers} answer(s)")
        });
    }
    Ok(AcqOutcome {
        satisfied,
        closest,
        original_aggregate,
        explored,
        layers: current_layer,
        peak_store: explorer.store().peak_len(),
        stats,
        termination,
        queries: answers,
    })
}

/// Convenience entry point: fills predicate domains from catalog statistics,
/// builds the requested evaluation layer with the right caps, and runs
/// [`acquire`].
///
/// ```
/// use acq_engine::{Catalog, DataType, Executor, Field, TableBuilder, Value};
/// use acq_query::{AcqQuery, AggConstraint, AggregateSpec, CmpOp, ColRef, Interval,
///                 Predicate, RefineSide};
/// use acquire_core::{run_acquire, AcquireConfig, EvalLayerKind};
///
/// // 100 products priced 1..=100.
/// let mut b = TableBuilder::new("products", vec![Field::new("price", DataType::Float)])?;
/// for i in 1..=100 {
///     b.push_row(vec![Value::Float(i as f64)]);
/// }
/// let mut catalog = Catalog::new();
/// catalog.register(b.finish()?)?;
///
/// // "price <= 20" admits 20 products; the campaign needs 50.
/// let query = AcqQuery::builder()
///     .table("products")
///     .predicate(Predicate::select(
///         ColRef::new("products", "price"),
///         Interval::new(1.0, 20.0),
///         RefineSide::Upper,
///     ))
///     .constraint(AggConstraint::new(AggregateSpec::count(), CmpOp::Eq, 50.0))
///     .build()?;
///
/// let mut exec = Executor::new(catalog);
/// let outcome = run_acquire(&mut exec, &query, &AcquireConfig::default(),
///                           EvalLayerKind::GridIndex)?;
/// assert!(outcome.satisfied);
/// let best = outcome.best().unwrap();
/// assert!((best.aggregate - 50.0).abs() <= 50.0 * 0.05); // within delta
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn run_acquire(
    exec: &mut Executor,
    query: &AcqQuery,
    cfg: &AcquireConfig,
    kind: EvalLayerKind,
) -> Result<AcqOutcome, CoreError> {
    run_acquire_observed(exec, query, cfg, kind, &Obs::disabled())
}

/// [`run_acquire`] with an [`Obs`] observability handle: builds the
/// requested evaluation layer and runs [`acquire_observed`] with a token
/// nobody can cancel.
pub fn run_acquire_observed(
    exec: &mut Executor,
    query: &AcqQuery,
    cfg: &AcquireConfig,
    kind: EvalLayerKind,
    obs: &Obs,
) -> Result<AcqOutcome, CoreError> {
    run_acquire_cancellable(exec, query, cfg, kind, &CancellationToken::new(), obs)
}

/// [`run_acquire_observed`] with an externally owned [`CancellationToken`]:
/// the entry point for long-running hosts (the serve binary) whose graceful
/// shutdown must interrupt in-flight searches cooperatively.
pub fn run_acquire_cancellable(
    exec: &mut Executor,
    query: &AcqQuery,
    cfg: &AcquireConfig,
    kind: EvalLayerKind,
    cancel: &CancellationToken,
    obs: &Obs,
) -> Result<AcqOutcome, CoreError> {
    run_acquire_progress(exec, query, cfg, kind, cancel, obs, None)
}

/// [`run_acquire_cancellable`] with an optional live [`ProgressSink`]: the
/// entry point for hosts (the serve binary, the CLI's `--progress`) that
/// stream the refinement trajectory while the search runs. With `None`
/// this *is* [`run_acquire_cancellable`]; see [`acquire_progress`] for the
/// emission contract.
pub fn run_acquire_progress(
    exec: &mut Executor,
    query: &AcqQuery,
    cfg: &AcquireConfig,
    kind: EvalLayerKind,
    cancel: &CancellationToken,
    obs: &Obs,
    progress: Option<&ProgressSink>,
) -> Result<AcqOutcome, CoreError> {
    let mut query = query.clone();
    exec.populate_domains(&mut query)?;
    let space = RefinedSpace::new(&query, cfg)?;
    let caps = space.caps();
    let cancel = cancel.clone();
    exec.set_zone_pruning(cfg.zone_pruning);
    match kind {
        EvalLayerKind::Scan => {
            let mut eval = ScanEvaluator::new(exec, &query, &caps)?;
            acquire_progress(&mut eval, &query, cfg, &cancel, obs, progress)
        }
        EvalLayerKind::CachedScore => {
            let mut eval = CachedScoreEvaluator::with_threads(exec, &query, &caps, cfg.threads)?;
            acquire_progress(&mut eval, &query, cfg, &cancel, obs, progress)
        }
        EvalLayerKind::GridIndex => {
            let mut eval =
                GridIndexEvaluator::with_threads(exec, &query, &caps, space.step(), cfg.threads)?;
            acquire_progress(&mut eval, &query, cfg, &cancel, obs, progress)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use acq_engine::{Catalog, DataType, Field, TableBuilder, Value};
    use acq_query::{
        AggConstraint, AggErrorFn, AggregateSpec, CmpOp, ColRef, Interval, Norm, Predicate,
        RefineSide,
    };

    /// 1000 rows, x = 0.0, 0.1, ..., 99.9 and y = i mod 100.
    fn catalog() -> Catalog {
        let mut b = TableBuilder::new(
            "t",
            vec![
                Field::new("x", DataType::Float),
                Field::new("y", DataType::Float),
            ],
        )
        .unwrap();
        for i in 0..1000 {
            b.push_row(vec![
                Value::Float(f64::from(i) * 0.1),
                Value::Float(f64::from(i % 100)),
            ]);
        }
        let mut cat = Catalog::new();
        cat.register(b.finish().unwrap()).unwrap();
        cat
    }

    fn count_query(target: f64) -> AcqQuery {
        AcqQuery::builder()
            .table("t")
            .predicate(Predicate::select(
                ColRef::new("t", "x"),
                Interval::new(0.0, 10.0),
                RefineSide::Upper,
            ))
            .constraint(AggConstraint::new(
                AggregateSpec::count(),
                CmpOp::Eq,
                target,
            ))
            .build()
            .unwrap()
    }

    #[test]
    fn satisfied_at_origin_when_constraint_already_met() {
        let mut exec = Executor::new(catalog());
        // x <= 10 admits 101 tuples; target 101 is met with zero refinement.
        let out = run_acquire(
            &mut exec,
            &count_query(101.0),
            &AcquireConfig::default(),
            EvalLayerKind::Scan,
        )
        .unwrap();
        assert!(out.satisfied);
        let best = out.best().unwrap();
        assert_eq!(best.qscore, 0.0);
        assert_eq!(best.aggregate, 101.0);
        assert_eq!(out.original_aggregate, 101.0);
    }

    #[test]
    fn expands_to_meet_count_target() {
        for kind in [
            EvalLayerKind::Scan,
            EvalLayerKind::CachedScore,
            EvalLayerKind::GridIndex,
        ] {
            let mut exec = Executor::new(catalog());
            // Need 200 tuples: x <= ~19.9, i.e. ~100% refinement of [0,10].
            let out = run_acquire(
                &mut exec,
                &count_query(200.0),
                &AcquireConfig::default(),
                kind,
            )
            .unwrap();
            assert!(out.satisfied, "{kind:?}");
            let best = out.best().unwrap();
            let err = (best.aggregate - 200.0).abs() / 200.0;
            assert!(err <= 0.05, "{kind:?}: aggregate {}", best.aggregate);
            // ~100% refinement expected (within one grid layer + delta slack).
            assert!(
                best.qscore >= 80.0 && best.qscore <= 120.0,
                "{kind:?}: {}",
                best.qscore
            );
        }
    }

    #[test]
    fn all_evaluators_agree_on_the_outcome() {
        let mut results = Vec::new();
        for kind in [
            EvalLayerKind::Scan,
            EvalLayerKind::CachedScore,
            EvalLayerKind::GridIndex,
        ] {
            let mut exec = Executor::new(catalog());
            let out = run_acquire(
                &mut exec,
                &count_query(300.0),
                &AcquireConfig::default(),
                kind,
            )
            .unwrap();
            let best = out.best().unwrap().clone();
            results.push((best.qscore, best.aggregate));
        }
        assert_eq!(results[0], results[1]);
        assert_eq!(results[0], results[2]);
    }

    #[test]
    fn answer_layer_collects_alternatives() {
        // Two symmetric dimensions: multiple grid queries in the answer
        // layer satisfy the constraint.
        let mut exec = Executor::new(catalog());
        let q = AcqQuery::builder()
            .table("t")
            .predicate(Predicate::select(
                ColRef::new("t", "x"),
                Interval::new(0.0, 50.0),
                RefineSide::Upper,
            ))
            .predicate(Predicate::select(
                ColRef::new("t", "y"),
                Interval::new(0.0, 99.0),
                RefineSide::Upper,
            ))
            .constraint(AggConstraint::new(AggregateSpec::count(), CmpOp::Ge, 550.0))
            .error_fn(AggErrorFn::HingeRelative)
            .build()
            .unwrap();
        let out = run_acquire(
            &mut exec,
            &q,
            &AcquireConfig::default(),
            EvalLayerKind::CachedScore,
        )
        .unwrap();
        assert!(out.satisfied);
        // Every answer shares the minimal refinement layer; qscores are
        // sorted ascending.
        let qs: Vec<f64> = out.queries.iter().map(|r| r.qscore).collect();
        assert!(qs.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn unsatisfiable_returns_closest() {
        let mut exec = Executor::new(catalog());
        // Only 1000 tuples exist; a COUNT of 5000 is unreachable.
        let out = run_acquire(
            &mut exec,
            &count_query(5000.0),
            &AcquireConfig::default(),
            EvalLayerKind::CachedScore,
        )
        .unwrap();
        assert!(!out.satisfied);
        assert!(out.queries.is_empty());
        let closest = out.closest.unwrap();
        assert_eq!(closest.aggregate, 1000.0, "closest admits everything");
    }

    #[test]
    fn repartition_hits_fine_targets() {
        let mut exec = Executor::new(catalog());
        // delta tight enough that no coarse grid query matches 157 exactly,
        // but the crossing cell can be repartitioned into it.
        let cfg = AcquireConfig {
            delta: 0.005,
            repartition_depth: 12,
            ..Default::default()
        };
        let out = run_acquire(
            &mut exec,
            &count_query(157.0),
            &cfg,
            EvalLayerKind::CachedScore,
        )
        .unwrap();
        assert!(out.satisfied);
        let best = out.best().unwrap();
        assert!(
            (best.aggregate - 157.0).abs() / 157.0 <= 0.005,
            "aggregate {}",
            best.aggregate
        );
    }

    #[test]
    fn sum_constraint_with_hinge() {
        let mut exec = Executor::new(catalog());
        let q = AcqQuery::builder()
            .table("t")
            .predicate(Predicate::select(
                ColRef::new("t", "x"),
                Interval::new(0.0, 10.0),
                RefineSide::Upper,
            ))
            .constraint(AggConstraint::new(
                AggregateSpec::sum(ColRef::new("t", "y")),
                CmpOp::Ge,
                20_000.0,
            ))
            .build()
            .unwrap();
        let out = run_acquire(
            &mut exec,
            &q,
            &AcquireConfig::default(),
            EvalLayerKind::GridIndex,
        )
        .unwrap();
        assert!(out.satisfied);
        assert!(out.best().unwrap().aggregate >= 20_000.0 * 0.95);
    }

    #[test]
    fn max_constraint() {
        let mut exec = Executor::new(catalog());
        let q = AcqQuery::builder()
            .table("t")
            .predicate(Predicate::select(
                ColRef::new("t", "x"),
                Interval::new(0.0, 5.0),
                RefineSide::Upper,
            ))
            .constraint(AggConstraint::new(
                AggregateSpec::max(ColRef::new("t", "y")),
                CmpOp::Ge,
                80.0,
            ))
            .build()
            .unwrap();
        let out = run_acquire(
            &mut exec,
            &q,
            &AcquireConfig::default(),
            EvalLayerKind::CachedScore,
        )
        .unwrap();
        assert!(out.satisfied);
        assert!(out.best().unwrap().aggregate >= 80.0);
    }

    #[test]
    fn linf_norm_uses_algorithm_two() {
        let mut exec = Executor::new(catalog());
        let cfg = AcquireConfig::default().with_norm(Norm::LInf);
        let out = run_acquire(
            &mut exec,
            &count_query(200.0),
            &cfg,
            EvalLayerKind::CachedScore,
        )
        .unwrap();
        assert!(out.satisfied);
        let best = out.best().unwrap();
        assert!((best.aggregate - 200.0).abs() / 200.0 <= 0.05);
    }

    #[test]
    fn results_render_refined_sql() {
        let mut exec = Executor::new(catalog());
        let out = run_acquire(
            &mut exec,
            &count_query(200.0),
            &AcquireConfig::default(),
            EvalLayerKind::CachedScore,
        )
        .unwrap();
        let best = out.best().unwrap();
        assert!(best.sql.contains("SELECT * FROM t"), "{}", best.sql);
        assert!(
            best.sql.contains("CONSTRAINT COUNT(*) = 200"),
            "{}",
            best.sql
        );
    }

    #[test]
    fn invalid_config_is_rejected() {
        let mut exec = Executor::new(catalog());
        let cfg = AcquireConfig::default().with_gamma(-1.0);
        let err = run_acquire(&mut exec, &count_query(10.0), &cfg, EvalLayerKind::Scan);
        assert!(matches!(err.unwrap_err(), CoreError::Config(_)));
    }
}

//! Histogram-based estimation: the "estimation" evaluation-layer strategy
//! of §3.
//!
//! [`HistogramEstimator`] answers COUNT cell queries without touching any
//! tuple after construction: one scoring pass builds a per-dimension
//! histogram of refinement scores aligned with the search grid, and every
//! cell/full query is answered from the histograms under the attribute
//! -value-independence (AVI) assumption standard in selectivity estimation.
//! Construction costs one pass; every query afterwards costs `O(d)`.
//!
//! The estimate is exact when the scored dimensions are independent (e.g.
//! independently generated columns) and biased when they are correlated —
//! the classic AVI trade-off, demonstrated in this module's tests. Searches
//! that must *guarantee* the δ threshold should re-verify their answer with
//! an exact layer (see `verify_with`-style use in the integration tests).

use acq_engine::{AggState, CellRange, EngineError, EngineResult, ExecStats, Executor};
use acq_query::{AcqQuery, AggFunc};

use crate::eval::EvaluationLayer;

/// A COUNT-only evaluation layer answering queries from per-dimension score
/// histograms under the independence assumption.
#[derive(Debug)]
pub struct HistogramEstimator {
    /// Per-dimension bucket counts; bucket `k` of dimension `i` counts the
    /// tuples whose score falls in the grid cell `k` (0 = satisfying).
    hists: Vec<Vec<u64>>,
    /// Tuples that survive every NOREFINE predicate.
    universe: u64,
    step: f64,
    stats: ExecStats,
}

impl HistogramEstimator {
    /// Builds the estimator with one scoring pass over the base relation.
    /// `step` must equal the refined space's grid step; `caps` are the
    /// per-dimension PScore caps.
    pub fn new(
        exec: &mut Executor,
        query: &AcqQuery,
        caps: &[f64],
        step: f64,
    ) -> EngineResult<Self> {
        if query.constraint.spec.func != AggFunc::Count {
            return Err(EngineError::Unsupported(format!(
                "HistogramEstimator only supports COUNT constraints, not {}",
                query.constraint.spec
            )));
        }
        assert!(step > 0.0 && step.is_finite());
        if caps.iter().any(|c| !c.is_finite() || *c < 0.0) {
            return Err(EngineError::Unsupported(
                "HistogramEstimator requires finite, non-negative per-dimension caps \
                 (use RefinedSpace::caps)"
                    .to_string(),
            ));
        }
        let rq = exec.resolve(query)?;
        let rel = exec.base_relation(&rq, caps)?;
        let d = rq.dims();
        let buckets_per_dim: Vec<usize> = caps
            .iter()
            .map(|c| (c / step).ceil() as usize + 2)
            .collect();
        let mut hists: Vec<Vec<u64>> = buckets_per_dim.iter().map(|&b| vec![0u64; b]).collect();

        let bound = rq.bind(&rel)?;
        let mut scores = vec![0.0; d];
        let mut universe = 0u64;
        for row in 0..rel.len() {
            if !bound.score_into(&rel, row, &mut scores) {
                continue;
            }
            universe += 1;
            for (k, &s) in scores.iter().enumerate() {
                let b = Self::bucket_of(s, step).min(hists[k].len() as u32 - 1) as usize;
                hists[k][b] += 1;
            }
        }
        let mut stats = ExecStats::default();
        stats.tuples_scanned += rel.len() as u64;
        Ok(Self {
            hists,
            universe,
            step,
            stats,
        })
    }

    #[inline]
    fn bucket_of(s: f64, step: f64) -> u32 {
        if s <= 0.0 {
            return 0;
        }
        let mut k = (s / step).ceil().max(1.0) as u32;
        while k > 1 && s <= f64::from(k - 1) * step {
            k -= 1;
        }
        while s > f64::from(k) * step {
            k += 1;
        }
        k
    }

    /// Marginal probability of dimension `k` falling in buckets `lo..=hi`.
    fn marginal(&self, k: usize, lo: u32, hi: u32) -> f64 {
        if self.universe == 0 {
            return 0.0;
        }
        let h = &self.hists[k];
        let lo = lo as usize;
        let hi = (hi as usize).min(h.len() - 1);
        let sum: u64 = h[lo..=hi].iter().sum();
        sum as f64 / self.universe as f64
    }

    /// The number of admissible tuples the estimator was built over.
    #[must_use]
    pub fn universe(&self) -> u64 {
        self.universe
    }
}

impl EvaluationLayer for HistogramEstimator {
    fn cell_aggregate(&mut self, cell: &[CellRange]) -> EngineResult<AggState> {
        self.stats.cell_queries += 1;
        // AVI: product of per-dimension marginals times the universe size.
        let mut p = 1.0f64;
        for (k, r) in cell.iter().enumerate() {
            let b = match r {
                CellRange::Zero => 0,
                CellRange::Open { hi, .. } => (hi / self.step).round() as u32,
            };
            p *= self.marginal(k, b, b);
        }
        Ok(AggState::Sum(p * self.universe as f64))
    }

    fn full_aggregate(&mut self, bounds: &[f64]) -> EngineResult<AggState> {
        self.stats.full_queries += 1;
        let mut p = 1.0f64;
        for (k, &b) in bounds.iter().enumerate() {
            let hi = Self::bucket_of(b, self.step);
            p *= self.marginal(k, 0, hi);
        }
        Ok(AggState::Sum(p * self.universe as f64))
    }

    fn empty_state(&self) -> EngineResult<AggState> {
        Ok(AggState::Sum(0.0))
    }

    fn stats(&self) -> ExecStats {
        self.stats
    }

    fn universe_size(&self) -> usize {
        self.universe as usize
    }

    fn kind_name(&self) -> &'static str {
        "histogram-estimate"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::AcquireConfig;
    use crate::driver::acquire;
    use crate::eval::CachedScoreEvaluator;
    use crate::space::RefinedSpace;
    use acq_engine::{Catalog, DataType, Field, TableBuilder, Value};
    use acq_query::{AggConstraint, AggregateSpec, CmpOp, ColRef, Interval, Predicate, RefineSide};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    /// Independent columns: the AVI assumption holds exactly in
    /// expectation.
    fn independent_catalog(n: usize) -> Catalog {
        let mut rng = StdRng::seed_from_u64(99);
        let mut b = TableBuilder::new(
            "t",
            vec![
                Field::new("x", DataType::Float),
                Field::new("y", DataType::Float),
            ],
        )
        .unwrap();
        for _ in 0..n {
            b.push_row(vec![
                Value::Float(rng.gen_range(0.0..100.0)),
                Value::Float(rng.gen_range(0.0..100.0)),
            ]);
        }
        let mut cat = Catalog::new();
        cat.register(b.finish().unwrap()).unwrap();
        cat
    }

    fn query(target: f64) -> AcqQuery {
        AcqQuery::builder()
            .table("t")
            .predicate(
                Predicate::select(
                    ColRef::new("t", "x"),
                    Interval::new(0.0, 30.0),
                    RefineSide::Upper,
                )
                .with_domain(Interval::new(0.0, 100.0)),
            )
            .predicate(
                Predicate::select(
                    ColRef::new("t", "y"),
                    Interval::new(0.0, 30.0),
                    RefineSide::Upper,
                )
                .with_domain(Interval::new(0.0, 100.0)),
            )
            .constraint(AggConstraint::new(
                AggregateSpec::count(),
                CmpOp::Eq,
                target,
            ))
            .build()
            .unwrap()
    }

    #[test]
    fn estimates_track_exact_counts_on_independent_data() {
        let cat = independent_catalog(20_000);
        let q = query(5_000.0);
        let cfg = AcquireConfig::default();
        let space = RefinedSpace::new(&q, &cfg).unwrap();
        let caps = space.caps();

        let mut e1 = Executor::new(cat.clone());
        let mut est = HistogramEstimator::new(&mut e1, &q, &caps, space.step()).unwrap();
        let mut e2 = Executor::new(cat);
        let mut exact = CachedScoreEvaluator::new(&mut e2, &q, &caps).unwrap();

        for bounds in [[0.0, 0.0], [50.0, 0.0], [100.0, 100.0], [30.0, 70.0]] {
            let approx = est.full_aggregate(&bounds).unwrap().value().unwrap();
            let truth = exact.full_aggregate(&bounds).unwrap().value().unwrap();
            let rel = (approx - truth).abs() / truth.max(1.0);
            assert!(rel < 0.05, "bounds {bounds:?}: {approx} vs {truth}");
        }
    }

    #[test]
    fn acquire_over_the_estimator_finds_a_near_valid_refinement() {
        let cat = independent_catalog(20_000);
        let q = query(6_000.0);
        let cfg = AcquireConfig::default();
        let space = RefinedSpace::new(&q, &cfg).unwrap();
        let caps = space.caps();

        let mut e1 = Executor::new(cat.clone());
        let mut est = HistogramEstimator::new(&mut e1, &q, &caps, space.step()).unwrap();
        let out = acquire(&mut est, &q, &cfg).unwrap();
        assert!(out.satisfied, "estimator-driven search should succeed");
        let best = out.best().unwrap();

        // Verify against the exact layer: the estimation error compounds
        // with the AVI assumption, so allow 3x delta.
        let mut e2 = Executor::new(cat);
        let mut exact = CachedScoreEvaluator::new(&mut e2, &q, &caps).unwrap();
        let truth = exact
            .full_aggregate(&best.pscores)
            .unwrap()
            .value()
            .unwrap();
        let rel = (truth - 6_000.0).abs() / 6_000.0;
        assert!(rel < 3.0 * cfg.delta, "true count {truth} vs target 6000");
    }

    #[test]
    fn correlated_data_shows_avi_bias() {
        // y == x: perfectly correlated. AVI underestimates the joint count
        // of aligned boxes.
        let mut b = TableBuilder::new(
            "t",
            vec![
                Field::new("x", DataType::Float),
                Field::new("y", DataType::Float),
            ],
        )
        .unwrap();
        for i in 0..1000 {
            let v = f64::from(i) * 0.1;
            b.push_row(vec![Value::Float(v), Value::Float(v)]);
        }
        let mut cat = Catalog::new();
        cat.register(b.finish().unwrap()).unwrap();
        let q = query(500.0);
        let cfg = AcquireConfig::default();
        let space = RefinedSpace::new(&q, &cfg).unwrap();
        let caps = space.caps();
        let mut e = Executor::new(cat.clone());
        let mut est = HistogramEstimator::new(&mut e, &q, &caps, space.step()).unwrap();
        let approx = est.full_aggregate(&[100.0, 0.0]).unwrap().value().unwrap();
        // Truth: x <= 60 AND y <= 30 == y <= 30 -> 301 tuples; AVI predicts
        // ~ (0.6)(0.3) * 1000 = 181.
        let mut e2 = Executor::new(cat);
        let mut exact = CachedScoreEvaluator::new(&mut e2, &q, &caps).unwrap();
        let truth = exact
            .full_aggregate(&[100.0, 0.0])
            .unwrap()
            .value()
            .unwrap();
        assert!(
            approx < truth * 0.8,
            "expected an AVI underestimate: {approx} vs {truth}"
        );
    }

    #[test]
    fn rejects_non_count() {
        let cat = independent_catalog(100);
        let mut q = query(10.0);
        q.constraint =
            AggConstraint::new(AggregateSpec::sum(ColRef::new("t", "y")), CmpOp::Ge, 1.0);
        let mut e = Executor::new(cat);
        assert!(HistogramEstimator::new(&mut e, &q, &[100.0, 100.0], 5.0).is_err());
    }

    #[test]
    fn rejects_non_finite_caps() {
        let cat = independent_catalog(100);
        let q = query(10.0);
        let mut e = Executor::new(cat);
        assert!(
            HistogramEstimator::new(&mut e, &q, &[f64::INFINITY, 100.0], 5.0).is_err(),
            "infinite caps must not abort on allocation"
        );
    }
}

//! EXPLAIN-style per-query profiles.
//!
//! An [`ExplainProfile`] is the operator-facing account of *where an ACQ
//! search spent its work*: the refined-space geometry (dims, γ/d step), how
//! far Expand got, and — the paper's central economy — how many aggregate
//! regions Eq. 17 reused instead of recomputing. The serve crate returns it
//! on `POST /query?explain=1`; the CLI prints it under `--explain`.
//!
//! The accounting mirrors §5.1: each explored grid query decomposes into
//! `d + 1` region sub-queries, of which only one (the *cell*) is executed —
//! the other `d` are reassembled from neighbours already in the store. So
//! for `explored` grid queries, `cells_executed == explored` and
//! `regions_reused == explored · d`.

use std::time::Duration;

use acq_obs::snapshot::json_escape;
use acq_obs::MetricsSnapshot;
use acq_query::AcqQuery;

use crate::config::AcquireConfig;
use crate::result::AcqOutcome;

/// An EXPLAIN-style profile of one completed ACQ search.
#[derive(Debug, Clone)]
pub struct ExplainProfile {
    /// Flexible predicates = grid dimensions `d`.
    pub dims: usize,
    /// Refinement granularity γ (percent).
    pub gamma: f64,
    /// Grid step γ/d along each axis (Theorem 1's proximity bound).
    pub step: f64,
    /// Aggregate tolerance δ.
    pub delta: f64,
    /// QScore norm name.
    pub norm: String,
    /// Worker threads the search ran with.
    pub workers: usize,
    /// Expand layers completed.
    pub layers_expanded: u64,
    /// Grid queries explored (== cells executed, see module docs).
    pub explored: u64,
    /// Cell sub-queries actually executed. Always equals `explored`; both
    /// are carried so the profile *shows* the invariant instead of assuming
    /// it.
    pub cells_executed: u64,
    /// Region sub-queries answered by Eq. 17 reuse instead of execution
    /// (`explored · d`).
    pub regions_reused: u64,
    /// Total region sub-queries implied by the explored grid queries
    /// (`explored · (d + 1)`).
    pub subqueries_total: u64,
    /// Answers in the minimal-refinement layer.
    pub answers: u64,
    /// Repartition rounds performed (Algorithm 4).
    pub repartitions: u64,
    /// Whether the constraint was satisfied within δ.
    pub satisfied: bool,
    /// Termination status slug.
    pub termination: String,
    /// Peak simultaneously-retained grid points in the aggregate store.
    pub peak_store: usize,
    /// §5 at-most-once violations observed (must be 0).
    pub at_most_once_violations: u64,
    /// Wall-clock duration of the whole search.
    pub total: Duration,
    /// Summed per-cell execution latency (the Explore phase's evaluation
    /// work). `None` when the search ran without instrumentation.
    pub explore_exec: Option<Duration>,
    /// Everything outside cell execution: expansion, Eq. 17 merges, answer
    /// bookkeeping. `None` without instrumentation. With parallel workers
    /// `explore_exec` sums *per-worker* time and can legitimately exceed
    /// `total`, in which case this reads zero.
    pub overhead: Option<Duration>,
}

impl ExplainProfile {
    /// Builds the profile from a finished search.
    ///
    /// `snapshot` is the run's own [`MetricsSnapshot`] (from the per-query
    /// [`acq_obs::Obs`] handle); without one the latency split and the
    /// at-most-once audit fall back to outcome-only data.
    #[must_use]
    pub fn new(
        query: &AcqQuery,
        cfg: &AcquireConfig,
        outcome: &AcqOutcome,
        snapshot: Option<&MetricsSnapshot>,
        total: Duration,
    ) -> Self {
        let dims = query.flexible().len();
        let explored = outcome.explored;
        let cells_executed = snapshot
            .and_then(|s| s.counter("cells_executed"))
            .unwrap_or(explored);
        let explore_exec = snapshot
            .and_then(|s| s.histogram("cell_latency_ns"))
            .map(|h| Duration::from_nanos(h.sum));
        let overhead = explore_exec.map(|e| total.saturating_sub(e));
        Self {
            dims,
            gamma: cfg.gamma,
            step: cfg.gamma / dims.max(1) as f64,
            delta: cfg.delta,
            norm: cfg.norm.to_string(),
            workers: cfg.parallelism.workers(),
            layers_expanded: outcome.layers,
            explored,
            cells_executed,
            regions_reused: explored * dims as u64,
            subqueries_total: explored * (dims as u64 + 1),
            answers: outcome.queries.len() as u64,
            repartitions: snapshot
                .and_then(|s| s.counter("repartitions"))
                .unwrap_or(0),
            satisfied: outcome.satisfied,
            termination: outcome.termination.slug().to_string(),
            peak_store: outcome.peak_store,
            at_most_once_violations: snapshot
                .and_then(|s| s.counter("at_most_once_violations"))
                .unwrap_or(0),
            total,
            explore_exec,
            overhead,
        }
    }

    /// Renders the profile as a compact JSON object (the `profile` value in
    /// serve responses and CLI `--json --explain` output).
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut s = String::with_capacity(512);
        s.push_str(&format!(
            "{{\"dims\":{},\"gamma\":{},\"step\":{},\"delta\":{},\"norm\":\"{}\",\
             \"workers\":{},\"layers_expanded\":{},\"explored\":{},\"cells_executed\":{},\
             \"regions_reused\":{},\"subqueries_total\":{},\"answers\":{},\
             \"repartitions\":{},\"satisfied\":{},\"termination\":\"{}\",\
             \"peak_store\":{},\"at_most_once_violations\":{},\"total_ms\":{}",
            self.dims,
            fmt_f64(self.gamma),
            fmt_f64(self.step),
            fmt_f64(self.delta),
            json_escape(&self.norm),
            self.workers,
            self.layers_expanded,
            self.explored,
            self.cells_executed,
            self.regions_reused,
            self.subqueries_total,
            self.answers,
            self.repartitions,
            self.satisfied,
            json_escape(&self.termination),
            self.peak_store,
            self.at_most_once_violations,
            self.total.as_millis(),
        ));
        match self.explore_exec {
            Some(d) => s.push_str(&format!(",\"explore_exec_ms\":{}", d.as_millis())),
            None => s.push_str(",\"explore_exec_ms\":null"),
        }
        match self.overhead {
            Some(d) => s.push_str(&format!(",\"overhead_ms\":{}", d.as_millis())),
            None => s.push_str(",\"overhead_ms\":null"),
        }
        s.push('}');
        s
    }

    /// Renders the profile as indented human-readable text for the CLI.
    #[must_use]
    pub fn render_text(&self) -> String {
        let mut out = String::with_capacity(512);
        out.push_str("profile:\n");
        out.push_str(&format!(
            "  space      : {} dims, step γ/d = {:.4} (γ = {}, δ = {}, norm {})\n",
            self.dims, self.step, self.gamma, self.delta, self.norm
        ));
        out.push_str(&format!(
            "  expand     : {} layer(s), {} grid queries ({} workers)\n",
            self.layers_expanded, self.explored, self.workers
        ));
        out.push_str(&format!(
            "  eq. 17     : {} cells executed, {} regions reused of {} sub-queries\n",
            self.cells_executed, self.regions_reused, self.subqueries_total
        ));
        out.push_str(&format!(
            "  outcome    : {} — {} answer(s), {} repartition(s)\n",
            self.termination, self.answers, self.repartitions
        ));
        out.push_str(&format!(
            "  memory     : peak {} grid point(s) retained\n",
            self.peak_store
        ));
        out.push_str(&format!(
            "  invariants : at-most-once violations {}\n",
            self.at_most_once_violations
        ));
        match (self.explore_exec, self.overhead) {
            (Some(exec), Some(ovh)) => out.push_str(&format!(
                "  latency    : total {:?} = cell execution {:?} + expand/merge overhead {:?}\n",
                self.total, exec, ovh
            )),
            _ => out.push_str(&format!(
                "  latency    : total {:?} (no instrumentation: phase split unavailable)\n",
                self.total
            )),
        }
        out
    }
}

/// Minimal-digit float formatting matching the obs crate's JSON style.
fn fmt_f64(v: f64) -> String {
    if v == v.trunc() && v.abs() < 1e15 {
        format!("{}", v as i64)
    } else {
        format!("{v}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::govern::Termination;
    use acq_obs::Obs;
    use acq_query::{AggConstraint, AggregateSpec, CmpOp, ColRef, Interval, Predicate, RefineSide};

    fn sample_query() -> AcqQuery {
        AcqQuery::builder()
            .table("t")
            .predicate(Predicate::select(
                ColRef::new("t", "x"),
                Interval::new(0.0, 50.0),
                RefineSide::Upper,
            ))
            .predicate(Predicate::select(
                ColRef::new("t", "y"),
                Interval::new(0.0, 50.0),
                RefineSide::Upper,
            ))
            .constraint(AggConstraint::new(AggregateSpec::count(), CmpOp::Eq, 5.0))
            .build()
            .unwrap()
    }

    fn sample_outcome() -> AcqOutcome {
        AcqOutcome {
            queries: vec![],
            satisfied: false,
            closest: None,
            original_aggregate: 1.0,
            explored: 12,
            layers: 3,
            peak_store: 7,
            stats: Default::default(),
            termination: Termination::Exhausted,
        }
    }

    #[test]
    fn eq17_accounting_follows_the_paper() {
        let q = sample_query();
        let cfg = AcquireConfig::default();
        let p = ExplainProfile::new(&q, &cfg, &sample_outcome(), None, Duration::from_millis(5));
        assert_eq!(p.dims, 2);
        assert!((p.step - cfg.gamma / 2.0).abs() < 1e-12);
        // 12 grid queries × d=2: 24 reused regions of 36 sub-queries.
        assert_eq!(p.cells_executed, 12);
        assert_eq!(p.regions_reused, 24);
        assert_eq!(p.subqueries_total, 36);
        assert_eq!(p.termination, "exhausted");
    }

    #[test]
    fn snapshot_supplies_the_instrumented_fields() {
        let obs = Obs::enabled();
        let m = obs.metrics().unwrap();
        m.cells_executed.add(12);
        m.repartitions.add(2);
        for _ in 0..12 {
            m.cell_latency_ns.observe(1_000_000); // 1ms each
        }
        let snap = obs.snapshot().unwrap();
        let p = ExplainProfile::new(
            &sample_query(),
            &AcquireConfig::default(),
            &sample_outcome(),
            Some(&snap),
            Duration::from_millis(20),
        );
        assert_eq!(p.cells_executed, 12);
        assert_eq!(p.repartitions, 2);
        assert_eq!(p.explore_exec, Some(Duration::from_millis(12)));
        assert_eq!(p.overhead, Some(Duration::from_millis(8)));
        assert_eq!(p.at_most_once_violations, 0);
    }

    #[test]
    fn json_parses_and_text_renders() {
        let p = ExplainProfile::new(
            &sample_query(),
            &AcquireConfig::default(),
            &sample_outcome(),
            None,
            Duration::from_millis(5),
        );
        let v = acq_obs::json::parse(&p.to_json()).expect("profile JSON parses");
        assert_eq!(v.pointer("/dims").and_then(|v| v.as_u64()), Some(2));
        assert_eq!(
            v.pointer("/regions_reused").and_then(|v| v.as_u64()),
            Some(24)
        );
        assert_eq!(
            v.pointer("/termination").and_then(|v| v.as_str()),
            Some("exhausted")
        );
        assert!(matches!(
            v.pointer("/explore_exec_ms"),
            Some(acq_obs::json::JsonValue::Null)
        ));
        let text = p.render_text();
        assert!(
            text.contains("24 regions reused of 36 sub-queries"),
            "{text}"
        );
        assert!(text.contains("step γ/d"), "{text}");
    }
}

//! # acquire-core — the ACQUIRE refinement framework
//!
//! Implements the paper's contribution end to end:
//!
//! * [`RefinedSpace`] — the d-dimensional grid abstraction over predicate
//!   refinement scores, with step size `γ/d` (§4, Theorem 1);
//! * **Expand** — [`expand::BfsExpander`] (Algorithm 1, breadth-first over
//!   the grid for `Lp` norms) and [`expand::LinfExpander`] (Algorithm 2,
//!   per-layer enumeration for `L∞`), both emitting grid queries in
//!   non-decreasing refinement order (Theorem 2);
//! * **Explore** — [`explore::Explorer`], the incremental aggregate
//!   computation of §5: each grid query decomposes into `d + 1` sub-queries
//!   (cell/pillar/wall/block, Eq. 5–8) of which only the *cell* is executed;
//!   the rest come from the recurrence `O_i(u) = O_{i-1}(u) + O_i(u -
//!   e_{i-1})` (Eq. 17, Algorithm 3), so no region of data is ever executed
//!   twice;
//! * **evaluation layers** — the modular execution backends of Fig. 2:
//!   [`ScanEvaluator`] re-executes every cell query against the engine
//!   (what the paper's Postgres deployment does), [`CachedScoreEvaluator`]
//!   caches per-tuple scores, and [`GridIndexEvaluator`] pre-buckets tuples
//!   by grid cell so empty cells are skipped without execution (§7.4);
//! * the **driver** — [`acquire`] / [`run_acquire`], Algorithm 4 with the
//!   aggregate-error threshold `δ`, proximity threshold `γ`, answer-layer
//!   collection, and cell repartitioning for overshooting queries;
//! * **contraction** (§7.2) — [`contract`] / [`run_contraction`] handles
//!   queries that return too much by searching the space between `Q'_min`
//!   (every predicate at its minimum) and `Q`, minimising refinement with
//!   respect to `Q`;
//! * **anytime execution** — [`govern`]: wall-clock deadlines,
//!   explored-query and memory budgets ([`ExecutionBudget`]), cooperative
//!   [`CancellationToken`]s, panic isolation around the evaluation layer,
//!   and a machine-readable [`Termination`] status on every outcome; plus
//!   [`fault`], a deterministic fault-injection harness
//!   ([`FaultInjectingLayer`]) used to prove the driver never aborts and
//!   never double-executes a region under faults or interrupts;
//! * **parallel Explore** — [`Parallelism`]: a per-layer work-stealing
//!   worker pool evaluates all cell sub-queries of the current Expand layer
//!   concurrently ([`ParallelCells`]), while the Eq. 17 merges, answer
//!   collection and accounting stay in serial emission order, so outcomes
//!   are bit-identical to a serial run for every thread count;
//! * **observability** — [`acquire_observed`] / [`run_acquire_observed`]
//!   thread an [`Obs`] handle (re-exported from `acq-obs`) through the
//!   pipeline: phase spans, per-layer gauges, cell-latency histograms,
//!   worker utilisation, and an at-most-once violation counter, with JSON
//!   and Prometheus snapshot sinks. Deterministic instruments commit in
//!   serial emission order, so snapshots are reproducible for any thread
//!   count, and a disabled handle (the default) costs one null check per
//!   instrument.

#![forbid(unsafe_code)]
#![deny(missing_docs)]
#![deny(rustdoc::broken_intra_doc_links)]

mod bitmap_eval;
mod config;
mod contraction;
mod driver;
mod error;
mod estimate;
mod eval;
pub mod expand;
pub mod explore;
pub mod fasthash;
pub mod fault;
pub mod govern;
mod pool;
pub mod profile;
pub mod progress;
mod repartition;
mod result;
mod session;
mod space;
mod store;

pub use acq_obs::{MetricsSnapshot, Obs};
pub use bitmap_eval::BitmapIndexEvaluator;
pub use config::{AcquireConfig, Parallelism};
pub use contraction::{
    contract, contract_with, contraction_query, run_contraction, run_contraction_with,
};
pub use driver::{
    acquire, acquire_observed, acquire_progress, acquire_with, run_acquire,
    run_acquire_cancellable, run_acquire_observed, run_acquire_progress,
};
pub use error::CoreError;
pub use estimate::HistogramEstimator;
pub use eval::{
    CachedScoreEvaluator, CellCost, EvalLayerKind, EvaluationLayer, GridIndexEvaluator,
    ParallelCells, ScanEvaluator,
};
pub use fault::{FaultInjectingLayer, FaultSchedule};
pub use govern::{CancellationToken, ExecutionBudget, FaultPolicy, InterruptReason, Termination};
pub use profile::ExplainProfile;
pub use progress::{ProgressEvent, ProgressSink, DEFAULT_PROGRESS_CAPACITY};
pub use repartition::repartition;
pub use result::{AcqOutcome, RefinedQueryResult};
pub use session::Session;
pub use space::{GridPoint, RefinedSpace};
pub use store::AggStore;

//! A per-batch work-stealing worker pool for the parallel Explore phase.
//!
//! All cell sub-queries of one Expand layer are mutually independent
//! (Theorem 2 orders layers; within a layer cells partition score space),
//! so [`execute_batch`] evaluates them concurrently against a shared
//! [`ParallelCells`] backend. Determinism is preserved by construction:
//! workers only *execute* cells and deposit the results into per-cell
//! slots; the driver then merges (Eq. 17), accounts, and collects answers
//! strictly in emission order. The thread schedule can therefore change
//! which worker computes a value, but never the value — outcomes are
//! bit-identical to a serial run for any worker count.
//!
//! Scheduling is work-stealing over index ranges: each worker owns a
//! contiguous chunk of the batch behind an atomic cursor and, once its own
//! chunk is drained, claims cells from other workers' chunks via the same
//! `fetch_add` protocol. A claim is unique, so no cell is ever executed
//! twice — the §5 at-most-once invariant holds across threads, interrupts,
//! and mid-cell panics (a panicking cell still counts as its one
//! execution; the panic is caught per cell and surfaces as a
//! [`CellOutcome::Panicked`] slot, never as a crashed worker).

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::OnceLock;
use std::time::Instant;

use acq_engine::{AggState, CellRange, EngineError};
use acq_obs::Obs;

use crate::driver::panic_message;
use crate::eval::{CellCost, ParallelCells};
use crate::govern::Governor;

/// What one speculative cell execution produced.
#[derive(Debug)]
pub(crate) enum CellOutcome {
    /// The cell executed: its aggregate state plus deferred accounting and
    /// its execution latency in nanoseconds (0 when observability is off).
    Done(AggState, CellCost, u64),
    /// The backend returned an error for this cell.
    Failed(EngineError),
    /// The backend panicked evaluating this cell (payload text).
    Panicked(String),
}

/// Evaluates every cell of `cells` on `workers` threads, returning one slot
/// per cell in input order.
///
/// A slot is `None` only if every worker observed [`Governor::aborted`]
/// before claiming it. Both abort conditions (sticky cancellation, passed
/// deadline) are monotone, so the commit loop's own [`Governor::check`]
/// necessarily fires before it reaches an abandoned slot; callers may still
/// fall back to serial evaluation for a `None` slot — the cell was provably
/// never executed, so re-executing it cannot violate at-most-once.
pub(crate) fn execute_batch(
    par: &dyn ParallelCells,
    cells: &[Vec<CellRange>],
    workers: usize,
    governor: &Governor,
    obs: &Obs,
) -> Vec<Option<CellOutcome>> {
    let n = cells.len();
    let workers = workers.clamp(1, n.max(1));
    let chunk = n.div_ceil(workers);
    // Worker `w` owns indices [w·chunk, min((w+1)·chunk, n)); the cursor is
    // the next unclaimed index of that chunk. `fetch_add` makes each claim
    // unique even when several thieves race on one cursor.
    let cursors: Vec<AtomicUsize> = (0..workers).map(|w| AtomicUsize::new(w * chunk)).collect();
    let ends: Vec<usize> = (0..workers).map(|w| ((w + 1) * chunk).min(n)).collect();
    let slots: Vec<OnceLock<CellOutcome>> = (0..n).map(|_| OnceLock::new()).collect();

    let metrics = obs.metrics();
    std::thread::scope(|scope| {
        for w in 0..workers {
            let (cursors, ends, slots) = (&cursors, &ends, &slots);
            scope.spawn(move || {
                // Own chunk first, then steal from the others in ring order.
                'victims: for v in 0..workers {
                    let victim = (w + v) % workers;
                    loop {
                        if governor.aborted() {
                            break 'victims;
                        }
                        // Claim uniqueness needs only the RMW total order
                        // on this single atomic: `fetch_add` hands each index
                        // to exactly one worker, and results publish through
                        // `OnceLock::set`'s release/acquire edge (DESIGN.md,
                        // "Memory ordering in the worker pool").
                        // relaxed-ok: per-atomic RMW order suffices for unique claims
                        let i = cursors[victim].fetch_add(1, Ordering::Relaxed);
                        if i >= ends[victim] {
                            break;
                        }
                        // lint-allow(determinism): latency metric only; never branches the search
                        let t0 = metrics.map(|_| Instant::now());
                        let outcome = match catch_unwind(AssertUnwindSafe(|| {
                            par.cell_aggregate_shared(&cells[i])
                        })) {
                            Ok(Ok((state, cost))) => {
                                let nanos =
                                    t0.map(|t| t.elapsed().as_nanos().min(u128::from(u64::MAX)))
                                        .unwrap_or(0) as u64;
                                CellOutcome::Done(state, cost, nanos)
                            }
                            Ok(Err(e)) => CellOutcome::Failed(e),
                            Err(payload) => CellOutcome::Panicked(panic_message(payload)),
                        };
                        if let Some(m) = metrics {
                            m.record_worker_cell(w, v != 0);
                        }
                        if slots[i].set(outcome).is_err() {
                            // Two claims of one index would be a broken §5
                            // at-most-once invariant; the counter makes it
                            // observable instead of silent.
                            if let Some(m) = metrics {
                                // worker-metric-ok: alarm counter; any nonzero value is the signal
                                m.at_most_once_violations.inc();
                            }
                        }
                    }
                }
            });
        }
    });

    slots.into_iter().map(OnceLock::into_inner).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::govern::{CancellationToken, ExecutionBudget};
    use acq_engine::EngineResult;
    use std::sync::atomic::AtomicU64;

    /// A backend whose cell value encodes the cell's first coordinate, with
    /// optional per-cell error/panic behaviour and an execution counter.
    struct Probe {
        executions: Vec<AtomicU64>,
        fail_at: Option<usize>,
        panic_at: Option<usize>,
    }

    impl Probe {
        fn new(n: usize) -> Self {
            Self {
                executions: (0..n).map(|_| AtomicU64::new(0)).collect(),
                fail_at: None,
                panic_at: None,
            }
        }

        fn index_of(cell: &[CellRange]) -> usize {
            match cell[0] {
                CellRange::Zero => 0,
                CellRange::Open { hi, .. } => hi as usize,
            }
        }
    }

    impl ParallelCells for Probe {
        fn cell_aggregate_shared(&self, cell: &[CellRange]) -> EngineResult<(AggState, CellCost)> {
            let i = Self::index_of(cell);
            self.executions[i].fetch_add(1, Ordering::Relaxed);
            if self.fail_at == Some(i) {
                return Err(EngineError::Fault(format!("cell {i} failed")));
            }
            assert!(self.panic_at != Some(i), "cell {i} panicked");
            let mut state = AggState::empty(
                &acq_query::AggregateSpec::count(),
                &acq_engine::UdaRegistry::new(),
            )?;
            for _ in 0..i {
                state.update(1.0);
            }
            Ok((
                state,
                CellCost {
                    tuples_scanned: i as u64,
                    ..CellCost::default()
                },
            ))
        }
    }

    fn cells(n: usize) -> Vec<Vec<CellRange>> {
        (0..n)
            .map(|i| {
                vec![if i == 0 {
                    CellRange::Zero
                } else {
                    CellRange::Open {
                        lo: 0.0,
                        hi: i as f64,
                    }
                }]
            })
            .collect()
    }

    fn governor() -> Governor {
        Governor::new(ExecutionBudget::unlimited(), CancellationToken::new())
    }

    #[test]
    fn every_cell_executes_exactly_once_for_any_worker_count() {
        for workers in [1, 2, 3, 4, 8, 17] {
            let probe = Probe::new(100);
            let out = execute_batch(&probe, &cells(100), workers, &governor(), &Obs::disabled());
            assert_eq!(out.len(), 100);
            for (i, slot) in out.iter().enumerate() {
                match slot {
                    Some(CellOutcome::Done(state, cost, _)) => {
                        assert_eq!(state.value(), Some(i as f64), "slot {i}");
                        assert_eq!(cost.tuples_scanned, i as u64);
                    }
                    other => panic!("slot {i}: unexpected {other:?}"),
                }
                assert_eq!(
                    probe.executions[i].load(Ordering::Relaxed),
                    1,
                    "cell {i} executed once ({workers} workers)"
                );
            }
        }
    }

    #[test]
    fn errors_and_panics_stay_in_their_slot() {
        let mut probe = Probe::new(20);
        probe.fail_at = Some(7);
        probe.panic_at = Some(13);
        let out = execute_batch(&probe, &cells(20), 4, &governor(), &Obs::disabled());
        for (i, slot) in out.iter().enumerate() {
            match (i, slot) {
                (7, Some(CellOutcome::Failed(e))) => {
                    assert!(e.to_string().contains("cell 7 failed"));
                }
                (13, Some(CellOutcome::Panicked(msg))) => {
                    assert!(msg.contains("cell 13 panicked"), "{msg}");
                }
                (7 | 13, other) => panic!("slot {i}: unexpected {other:?}"),
                (_, Some(CellOutcome::Done(..))) => {}
                (_, other) => panic!("slot {i}: unexpected {other:?}"),
            }
            // A panicking cell still counts as its one execution.
            assert_eq!(probe.executions[i].load(Ordering::Relaxed), 1);
        }
    }

    #[test]
    fn aborted_governor_abandons_without_executing() {
        let token = CancellationToken::new();
        token.cancel();
        let governor = Governor::new(ExecutionBudget::unlimited(), token);
        let probe = Probe::new(50);
        let out = execute_batch(&probe, &cells(50), 4, &governor, &Obs::disabled());
        assert!(out.iter().all(Option::is_none), "no slot filled");
        let total: u64 = probe
            .executions
            .iter()
            .map(|c| c.load(Ordering::Relaxed))
            .sum();
        assert_eq!(total, 0, "abandoned cells were never executed");
    }

    #[test]
    fn observability_accounts_every_speculative_execution() {
        let obs = Obs::enabled();
        let probe = Probe::new(60);
        let out = execute_batch(&probe, &cells(60), 4, &governor(), &obs);
        assert_eq!(out.iter().filter(|s| s.is_some()).count(), 60);
        let snap = obs.snapshot().unwrap();
        assert_eq!(snap.counter("cells_speculative"), Some(60));
        assert_eq!(snap.counter("at_most_once_violations"), Some(0));
        let per_worker: u64 = snap.workers.iter().map(|&(_, c, _)| c).sum();
        assert_eq!(per_worker, 60, "worker tallies cover the batch");
    }
}

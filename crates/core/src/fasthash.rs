//! A fast, non-cryptographic hasher for the search's hot maps.
//!
//! The Expand/Explore phases hash millions of small `[u32]` grid points;
//! the standard library's SipHash dominates the profile there. This is an
//! FxHash-style multiply-xor hasher (no DoS resistance — keys are
//! internally generated grid coordinates, never attacker-controlled).

use std::hash::{BuildHasherDefault, Hasher};

/// Multiply-xor hasher over word-sized chunks.
#[derive(Debug, Default, Clone)]
pub struct FastHasher {
    state: u64,
}

const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

impl FastHasher {
    #[inline]
    fn mix(&mut self, word: u64) {
        self.state = (self.state.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FastHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.state
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for c in chunks.by_ref() {
            let mut word = [0u8; 8];
            word.copy_from_slice(c);
            self.mix(u64::from_le_bytes(word));
        }
        let rem = chunks.remainder();
        if !rem.is_empty() {
            let mut buf = [0u8; 8];
            buf[..rem.len()].copy_from_slice(rem);
            self.mix(u64::from_le_bytes(buf));
        }
    }

    #[inline]
    fn write_u32(&mut self, v: u32) {
        self.mix(u64::from(v));
    }

    #[inline]
    fn write_u64(&mut self, v: u64) {
        self.mix(v);
    }

    #[inline]
    fn write_usize(&mut self, v: usize) {
        self.mix(v as u64);
    }
}

/// `BuildHasher` for [`FastHasher`].
pub type FastBuild = BuildHasherDefault<FastHasher>;

/// A `HashMap` using [`FastHasher`].
pub type FastMap<K, V> = std::collections::HashMap<K, V, FastBuild>;

/// A `HashSet` using [`FastHasher`].
pub type FastSet<K> = std::collections::HashSet<K, FastBuild>;

#[cfg(test)]
mod tests {
    use super::*;
    use std::hash::{BuildHasher, Hash};

    fn hash_of<T: Hash>(v: &T) -> u64 {
        FastBuild::default().hash_one(v)
    }

    #[test]
    fn deterministic_and_discriminating() {
        let a = vec![1u32, 2, 3];
        let b = vec![1u32, 2, 4];
        assert_eq!(hash_of(&a), hash_of(&a));
        assert_ne!(hash_of(&a), hash_of(&b));
        assert_ne!(hash_of(&vec![0u32, 1]), hash_of(&vec![1u32, 0]));
    }

    #[test]
    fn maps_and_sets_work() {
        let mut m: FastMap<Vec<u32>, u32> = FastMap::default();
        m.insert(vec![1, 2], 3);
        assert_eq!(m.get([1u32, 2].as_slice()), Some(&3));
        let mut s: FastSet<Vec<u32>> = FastSet::default();
        assert!(s.insert(vec![5]));
        assert!(!s.insert(vec![5]));
    }

    #[test]
    fn low_collision_rate_on_grid_points() {
        // All points of a 20^3 grid must hash with few collisions.
        let mut seen = std::collections::HashSet::new();
        let mut collisions = 0;
        for a in 0u32..20 {
            for b in 0u32..20 {
                for c in 0u32..20 {
                    if !seen.insert(hash_of(&vec![a, b, c])) {
                        collisions += 1;
                    }
                }
            }
        }
        assert!(collisions < 4, "{collisions} collisions in 8000 points");
    }
}

//! Contracting queries with too many results (§7.2).
//!
//! *"This is achieved by constructing a query `Q'_min` with each predicate
//! of the original query `Q` set to its minimum value. Since `Q'_min` will
//! produce too few results, we can now construct a refined space bounded by
//! `Q` and `Q'_min`. ACQUIRE now traverses the refined space to find queries
//! that meet the cardinality constraint, this time minimizing refinement
//! with respect to `Q` instead of `Q'_min`."*
//!
//! Implementation: [`contraction_query`] rewrites every flexible predicate
//! to its `Q'_min` form — a zero-width interval anchored at the original
//! lower (resp. upper) bound, with the original Eq. (1) denominator kept via
//! `basis_override` and the expansion capped at the original width. The
//! standard Expand/Explore machinery then searches *outward from `Q'_min`*;
//! a point's refinement **with respect to `Q`** is the remaining gap
//! `span_i − s_i` per dimension. Because more expansion from `Q'_min` means
//! *less* change to `Q`, the driver keeps collecting satisfying queries and
//! stops only once a whole layer provably overshoots (COUNT constraints,
//! whose aggregates grow monotonically with expansion) or the grid is
//! exhausted.

use acq_engine::Executor;
use acq_query::{AcqQuery, AggErrorFn, AggFunc, CmpOp, Interval, RefineSide};

use crate::config::AcquireConfig;
use crate::driver::isolated;
use crate::error::CoreError;
use crate::eval::{
    CachedScoreEvaluator, EvalLayerKind, EvaluationLayer, GridIndexEvaluator, ScanEvaluator,
};
use crate::expand::{BfsExpander, Expander, LinfExpander};
use crate::explore::Explorer;
use crate::govern::{CancellationToken, FaultPolicy, Governor, InterruptReason, Termination};
use crate::result::{AcqOutcome, RefinedQueryResult};
use crate::space::RefinedSpace;

/// Builds `Q'_min`: every flexible predicate anchored at its minimum with
/// the original refinement scale; expansion by `span_i` percent restores the
/// original predicate exactly. Flexible predicates that cannot contract
/// (zero-width intervals such as equi-joins) are frozen.
pub fn contraction_query(query: &AcqQuery) -> Result<AcqQuery, CoreError> {
    let mut q = query.clone();
    for i in q.flexible() {
        let p = &mut q.predicates[i];
        let basis = p.width_basis();
        let span = p.interval.width() / basis * 100.0;
        if span <= 0.0 {
            // Nothing to contract (e.g. an equi-join): freeze it.
            p.refinable = false;
            continue;
        }
        p.interval = match p.refine {
            RefineSide::Upper => Interval::point(p.interval.lo()),
            RefineSide::Lower => Interval::point(p.interval.hi()),
        };
        p.basis_override = Some(basis);
        p.max_refinement = Some(match p.max_refinement {
            Some(cap) => cap.min(span),
            None => span,
        });
    }
    if q.dims() == 0 {
        return Err(CoreError::Config(
            "no predicate of the query can be contracted".to_string(),
        ));
    }
    // Contraction means the original overshoots; the sensible default error
    // only penalises remaining overshoot for <=/< constraints and stays
    // symmetric for =.
    q.error_fn = match q.constraint.op {
        CmpOp::Le | CmpOp::Lt => AggErrorFn::HingeRelativeAbove,
        _ => AggErrorFn::Relative,
    };
    Ok(q)
}

/// The per-dimension expansion spans of a contraction query (`span_i`,
/// percent): expanding dimension `i` by `span_i` restores the original
/// predicate.
fn spans(original: &AcqQuery, contraction: &AcqQuery) -> Vec<f64> {
    contraction
        .flexible()
        .iter()
        .map(|&i| {
            let p = &original.predicates[i];
            p.interval.width() / p.width_basis() * 100.0
        })
        .collect()
}

/// Runs the §7.2 contraction search against a caller-built evaluation layer
/// (which must have been constructed for [`contraction_query`]'s output).
///
/// Returns an [`AcqOutcome`] whose `pscores`/`qscore` measure refinement
/// **with respect to the original query** (the contraction amounts) and
/// whose SQL renders the contracted queries.
pub fn contract<E: EvaluationLayer>(
    eval: &mut E,
    original: &AcqQuery,
    cfg: &AcquireConfig,
) -> Result<AcqOutcome, CoreError> {
    contract_with(eval, original, cfg, &CancellationToken::new())
}

/// [`contract`] with an externally owned [`CancellationToken`]; budgets,
/// cancellation, and fault handling behave exactly as in
/// [`crate::acquire_with`].
pub fn contract_with<E: EvaluationLayer>(
    eval: &mut E,
    original: &AcqQuery,
    cfg: &AcquireConfig,
    cancel: &CancellationToken,
) -> Result<AcqOutcome, CoreError> {
    cfg.validate()?;
    let cq = contraction_query(original)?;
    cq.validate_with_norm(&cfg.norm)?;
    let space = RefinedSpace::new(&cq, cfg)?;
    let span = spans(original, &cq);
    let mut expander: Box<dyn Expander> = if cfg.norm.is_linf() {
        Box::new(LinfExpander::new(&space))
    } else {
        Box::new(BfsExpander::new(&space))
    };
    let mut explorer = Explorer::new();
    let governor = Governor::new(cfg.budget.clone(), cancel.clone());

    let target = cq.constraint.target;
    let err_fn = cq.error_fn;
    // Early stop is sound only for aggregates that grow monotonically as the
    // query expands from Q'_min.
    let monotone = matches!(cq.constraint.spec.func, AggFunc::Count);
    let overshoot_cap = target * (1.0 + cfg.delta);

    let mut answers: Vec<RefinedQueryResult> = Vec::new();
    let mut closest: Option<RefinedQueryResult> = None;
    let mut explored = 0u64;
    let mut current_layer = 0u64;
    let mut layer_min_actual = f64::INFINITY;
    let mut interrupt: Option<InterruptReason> = None;

    let on_fault =
        |e: CoreError, interrupt: &mut Option<InterruptReason>| -> Result<(), CoreError> {
            match cfg.fault_policy {
                FaultPolicy::Propagate => Err(e),
                FaultPolicy::BestEffort => {
                    *interrupt = Some(InterruptReason::Fault(e.to_string()));
                    Ok(())
                }
            }
        };

    while let Some(point) = expander.next_query() {
        let layer = expander.layer_of(&point);
        if layer > cfg.max_layers {
            break;
        }
        if explored >= cfg.max_explored {
            interrupt = Some(InterruptReason::ExploredBudget);
            break;
        }
        if let Some(reason) = governor.check(explored, explorer.store().approx_bytes()) {
            interrupt = Some(reason);
            break;
        }
        if layer > current_layer {
            if monotone && layer_min_actual.is_finite() && layer_min_actual > overshoot_cap {
                // Every query from here on contains one that already
                // overshoots beyond delta: stop.
                break;
            }
            if let Some(min) = expander.evictable_below(layer) {
                explorer.evict_below(min);
            }
            current_layer = layer;
            layer_min_actual = f64::INFINITY;
        }
        let state = match isolated(|| explorer.compute_aggregate(eval, &space, &point, layer)) {
            Ok(state) => state,
            Err(e) => {
                on_fault(e, &mut interrupt)?;
                break;
            }
        };
        explored += 1;
        let Some(actual) = state.value() else {
            continue;
        };
        layer_min_actual = layer_min_actual.min(actual);
        let error = err_fn.error(target, actual);

        // Refinement with respect to Q: the *remaining* contraction.
        let s = space.pscores(&point);
        let contraction: Vec<f64> = s
            .iter()
            .zip(&span)
            .map(|(si, sp)| (sp - si).max(0.0))
            .collect();
        let qscore = cfg.norm.qscore(&contraction);
        let make = || RefinedQueryResult {
            point: point.clone(),
            pscores: contraction.clone(),
            qscore,
            aggregate: actual,
            error,
            sql: cq.refined_sql(&s),
        };
        if error <= cfg.delta {
            answers.push(make());
        } else {
            if closest.as_ref().is_none_or(|c| error < c.error) {
                closest = Some(make());
            }
            if actual > target {
                // The crossing lies inside this cell: repartition it, just
                // as the expansion driver does (§6).
                let hit = match isolated(|| {
                    crate::repartition::repartition(
                        eval,
                        &space,
                        &point,
                        target,
                        err_fn,
                        cfg.repartition_depth,
                    )
                }) {
                    Ok(hit) => hit,
                    Err(e) => {
                        on_fault(e, &mut interrupt)?;
                        break;
                    }
                };
                if let Some(hit) = hit {
                    let c: Vec<f64> = hit
                        .bounds
                        .iter()
                        .zip(&span)
                        .map(|(si, sp)| (sp - si).max(0.0))
                        .collect();
                    let r = RefinedQueryResult {
                        point: Vec::new(),
                        pscores: c.clone(),
                        qscore: cfg.norm.qscore(&c),
                        aggregate: hit.aggregate,
                        error: hit.error,
                        sql: cq.refined_sql(&hit.bounds),
                    };
                    if hit.error <= cfg.delta {
                        answers.push(r);
                    } else if closest.as_ref().is_none_or(|cl| r.error < cl.error) {
                        closest = Some(r);
                    }
                }
            }
        }
    }

    // Minimal change to Q first.
    answers.sort_by(|a, b| a.qscore.total_cmp(&b.qscore));
    let satisfied = !answers.is_empty();
    let termination = match interrupt {
        Some(reason) => governor.interrupted(reason, explored),
        None if satisfied => Termination::Satisfied,
        None => Termination::Exhausted,
    };
    Ok(AcqOutcome {
        satisfied,
        closest,
        original_aggregate: f64::NAN,
        explored,
        layers: current_layer,
        peak_store: explorer.store().peak_len(),
        stats: eval.stats(),
        termination,
        queries: answers,
    })
}

/// Convenience entry point mirroring [`crate::run_acquire`] for contraction.
pub fn run_contraction(
    exec: &mut Executor,
    query: &AcqQuery,
    cfg: &AcquireConfig,
    kind: EvalLayerKind,
) -> Result<AcqOutcome, CoreError> {
    run_contraction_with(exec, query, cfg, kind, &CancellationToken::new())
}

/// [`run_contraction`] with an externally owned [`CancellationToken`], so a
/// long-running host's shutdown interrupts contraction searches too.
pub fn run_contraction_with(
    exec: &mut Executor,
    query: &AcqQuery,
    cfg: &AcquireConfig,
    kind: EvalLayerKind,
    cancel: &CancellationToken,
) -> Result<AcqOutcome, CoreError> {
    let mut query = query.clone();
    exec.populate_domains(&mut query)?;
    let cq = contraction_query(&query)?;
    let space = RefinedSpace::new(&cq, cfg)?;
    let caps = space.caps();
    match kind {
        EvalLayerKind::Scan => {
            let mut eval = ScanEvaluator::new(exec, &cq, &caps)?;
            contract_with(&mut eval, &query, cfg, cancel)
        }
        EvalLayerKind::CachedScore => {
            let mut eval = CachedScoreEvaluator::with_threads(exec, &cq, &caps, cfg.threads)?;
            contract_with(&mut eval, &query, cfg, cancel)
        }
        EvalLayerKind::GridIndex => {
            let mut eval =
                GridIndexEvaluator::with_threads(exec, &cq, &caps, space.step(), cfg.threads)?;
            contract_with(&mut eval, &query, cfg, cancel)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use acq_engine::{Catalog, DataType, Field, TableBuilder, Value};
    use acq_query::{AggConstraint, AggregateSpec, ColRef, Predicate};

    fn catalog() -> Catalog {
        let mut b = TableBuilder::new("t", vec![Field::new("x", DataType::Float)]).unwrap();
        for i in 0..1000 {
            b.push_row(vec![Value::Float(f64::from(i) * 0.1)]); // x in [0, 99.9]
        }
        let mut cat = Catalog::new();
        cat.register(b.finish().unwrap()).unwrap();
        cat
    }

    fn overshooting_query(op: CmpOp, target: f64) -> AcqQuery {
        // x <= 80 admits 801 tuples; targets below that overshoot.
        AcqQuery::builder()
            .table("t")
            .predicate(Predicate::select(
                ColRef::new("t", "x"),
                Interval::new(0.0, 80.0),
                RefineSide::Upper,
            ))
            .constraint(AggConstraint::new(AggregateSpec::count(), op, target))
            .build()
            .unwrap()
    }

    #[test]
    fn contraction_query_anchors_at_minimum() {
        let q = overshooting_query(CmpOp::Le, 400.0);
        let cq = contraction_query(&q).unwrap();
        let p = &cq.predicates[0];
        assert_eq!(p.interval, Interval::point(0.0));
        assert_eq!(p.basis_override, Some(80.0));
        assert_eq!(p.max_refinement, Some(100.0));
        // Expanding by the full span restores the original interval.
        assert_eq!(p.refined_interval(100.0), Interval::new(0.0, 80.0));
    }

    #[test]
    fn contraction_freezes_pointlike_predicates() {
        let mut q = overshooting_query(CmpOp::Le, 400.0);
        q.predicates.push(Predicate::equi_join(
            ColRef::new("t", "x"),
            ColRef::new("t", "x"),
        ));
        let cq = contraction_query(&q).unwrap();
        assert_eq!(cq.dims(), 1, "equi-join cannot contract");
    }

    #[test]
    fn contracts_to_le_target() {
        let mut exec = Executor::new(catalog());
        let q = overshooting_query(CmpOp::Le, 400.0);
        let out = run_contraction(
            &mut exec,
            &q,
            &AcquireConfig::default(),
            EvalLayerKind::CachedScore,
        )
        .unwrap();
        assert!(out.satisfied);
        let best = out.best().unwrap();
        assert!(
            best.aggregate <= 400.0 * 1.05,
            "aggregate {}",
            best.aggregate
        );
        // Minimal change to Q: the best answer admits close to 400 tuples,
        // not close to zero.
        assert!(best.aggregate >= 300.0, "aggregate {}", best.aggregate);
        // Contraction of [0,80] to [0,~40] is a ~50% refinement wrt Q.
        assert!(
            best.qscore >= 40.0 && best.qscore <= 60.0,
            "qscore {}",
            best.qscore
        );
    }

    #[test]
    fn contracts_to_eq_target_within_delta() {
        let mut exec = Executor::new(catalog());
        let q = overshooting_query(CmpOp::Eq, 300.0);
        let out = run_contraction(
            &mut exec,
            &q,
            &AcquireConfig::default(),
            EvalLayerKind::GridIndex,
        )
        .unwrap();
        assert!(out.satisfied);
        let best = out.best().unwrap();
        assert!(
            (best.aggregate - 300.0).abs() / 300.0 <= 0.05,
            "aggregate {}",
            best.aggregate
        );
    }

    #[test]
    fn contraction_sql_shows_contracted_interval() {
        let mut exec = Executor::new(catalog());
        let q = overshooting_query(CmpOp::Le, 400.0);
        let out = run_contraction(
            &mut exec,
            &q,
            &AcquireConfig::default(),
            EvalLayerKind::CachedScore,
        )
        .unwrap();
        let best = out.best().unwrap();
        assert!(best.sql.contains("t.x"), "{}", best.sql);
        // The contracted bound is below the original 80.
        assert!(!best.sql.contains("<= 80)"), "{}", best.sql);
    }

    #[test]
    fn nothing_to_contract_errors() {
        let mut q = overshooting_query(CmpOp::Le, 400.0);
        q.predicates[0].interval = Interval::point(80.0);
        assert!(matches!(contraction_query(&q), Err(CoreError::Config(_))));
    }
}

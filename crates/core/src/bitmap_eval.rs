//! The literal §7.4 evaluation layer: a bitmap grid index over *attribute*
//! space.
//!
//! *"We divide each attribute dimension into equi-width parts and create a
//! multi-dimensional grid on the table … this simple index structure can be
//! used in the Explore phase to determine if a given cell query is empty
//! without actually executing the query."*
//!
//! [`BitmapIndexEvaluator`] builds an [`acq_engine::index::BitmapGridIndex`]
//! over the flexible predicates' columns of a **single-table** query with
//! numeric selection predicates (the §7.4 setting). Each refined-space cell
//! query maps to an axis-aligned box in attribute space:
//!
//! * a probe against the bitmap proves empty cells empty — they are skipped
//!   without touching a tuple;
//! * non-empty cells scan only the rows of the overlapping grid cells (the
//!   CSR row lists), re-checking scores exactly.
//!
//! Unlike [`crate::GridIndexEvaluator`] (which buckets tuples by *score*
//! for one specific search), the attribute-space index is search-agnostic:
//! the same index serves any query over the indexed columns, which is how a
//! DBMS would deploy it.

use acq_engine::{
    index::BitmapGridIndex, AggState, CellRange, EngineError, EngineResult, ExecStats, Executor,
    Relation, ResolvedQuery,
};
use acq_query::{AcqQuery, Interval, PredFunction, RefineSide};

use crate::eval::EvaluationLayer;

/// §7.4 bitmap-grid-index evaluation layer for single-table numeric queries.
#[derive(Debug)]
pub struct BitmapIndexEvaluator<'a> {
    exec: &'a mut Executor,
    rq: ResolvedQuery,
    rel: Relation,
    index: BitmapGridIndex,
    /// Per flexible dimension: (original interval, refine side, width basis).
    dims: Vec<(Interval, RefineSide, f64)>,
    probes: u64,
    local: ExecStats,
}

impl<'a> BitmapIndexEvaluator<'a> {
    /// Builds the index (`bins` equi-width bins per flexible dimension) over
    /// the query's table. Errors when the query joins tables or refines
    /// non-`Attr` predicates — the §7.4 construction is per-table.
    pub fn new(
        exec: &'a mut Executor,
        query: &AcqQuery,
        caps: &[f64],
        bins: usize,
    ) -> EngineResult<Self> {
        if query.tables.len() != 1 {
            return Err(EngineError::Unsupported(
                "BitmapIndexEvaluator indexes a single table (\u{a7}7.4)".to_string(),
            ));
        }
        let mut dims = Vec::new();
        let mut cols = Vec::new();
        let table = exec.catalog().table(&query.tables[0])?;
        for &i in &query.flexible() {
            let p = &query.predicates[i];
            let PredFunction::Attr(col) = &p.func else {
                return Err(EngineError::UnknownColumn(acq_query::ColRef::bare(
                    format!("predicate {} is not a plain attribute predicate", p.label),
                )));
            };
            let idx = table
                .schema()
                .index_of(&col.column)
                .ok_or_else(|| EngineError::UnknownColumn(col.clone()))?;
            cols.push(idx);
            dims.push((p.interval, p.refine, p.width_basis()));
        }
        let index = BitmapGridIndex::build(&table, &cols, bins);
        let rq = exec.resolve(query)?;
        let rel = exec.base_relation(&rq, caps)?;
        Ok(Self {
            exec,
            rq,
            rel,
            index,
            dims,
            probes: 0,
            local: ExecStats::default(),
        })
    }

    /// Maps one refined-space cell to the attribute box it selects: the
    /// score range `(lo, hi]` of an Upper-refinable predicate `[a, b]`
    /// corresponds to attribute values in `(b + lo·w/100, b + hi·w/100]`
    /// (mirrored for Lower); score exactly 0 is the original interval.
    fn attribute_box(&self, cell: &[CellRange]) -> Vec<(f64, f64)> {
        cell.iter()
            .zip(&self.dims)
            .map(|(r, (iv, side, basis))| match (r, side) {
                (CellRange::Zero, _) => (iv.lo(), iv.hi()),
                (CellRange::Open { lo, hi }, RefineSide::Upper) => {
                    (iv.hi() + lo / 100.0 * basis, iv.hi() + hi / 100.0 * basis)
                }
                (CellRange::Open { lo, hi }, RefineSide::Lower) => {
                    (iv.lo() - hi / 100.0 * basis, iv.lo() - lo / 100.0 * basis)
                }
            })
            .collect()
    }

    /// Index probes issued so far.
    #[must_use]
    pub fn probes(&self) -> u64 {
        self.probes
    }
}

impl EvaluationLayer for BitmapIndexEvaluator<'_> {
    fn cell_aggregate(&mut self, cell: &[CellRange]) -> EngineResult<AggState> {
        let boxq = self.attribute_box(cell);
        self.local.cell_queries += 1;
        // §7.4: ask the index whether the cell query is provably empty.
        if !self.index.box_maybe_occupied(&boxq, &mut self.probes) {
            self.local.index_probes += 1;
            self.local.cells_skipped += 1;
            return AggState::empty(&self.rq.query.constraint.spec, self.exec.uda_registry());
        }
        self.local.index_probes += 1;
        // Scan only the candidate rows of the overlapping grid cells.
        let mut candidates = Vec::new();
        self.index
            .visit_box_candidates(&boxq, |r| candidates.push(r as usize));
        self.local.tuples_scanned += candidates.len() as u64;
        self.exec
            .cell_aggregate_rows(&self.rq, &self.rel, cell, candidates.into_iter())
    }

    fn full_aggregate(&mut self, bounds: &[f64]) -> EngineResult<AggState> {
        self.exec.full_aggregate(&self.rq, &self.rel, bounds)
    }

    fn empty_state(&self) -> EngineResult<AggState> {
        AggState::empty(&self.rq.query.constraint.spec, self.exec.uda_registry())
    }

    fn stats(&self) -> ExecStats {
        let mut s = self.exec.stats();
        s += self.local;
        s
    }

    fn kind_name(&self) -> &'static str {
        "bitmap-index"
    }

    fn universe_size(&self) -> usize {
        self.rel.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::AcquireConfig;
    use crate::driver::acquire;
    use crate::eval::ScanEvaluator;
    use crate::space::RefinedSpace;
    use acq_engine::{Catalog, DataType, Field, TableBuilder, Value};
    use acq_query::{AggConstraint, AggregateSpec, CmpOp, ColRef, Predicate};

    fn catalog() -> Catalog {
        let mut b = TableBuilder::new(
            "t",
            vec![
                Field::new("x", DataType::Float),
                Field::new("y", DataType::Float),
            ],
        )
        .unwrap();
        // Correlated diagonal: most off-diagonal cells are empty, which is
        // exactly where the §7.4 index pays off.
        for i in 0..2_000 {
            let v = f64::from(i) * 0.05;
            b.push_row(vec![Value::Float(v), Value::Float(v + f64::from(i % 7))]);
        }
        let mut cat = Catalog::new();
        cat.register(b.finish().unwrap()).unwrap();
        cat
    }

    fn query(target: f64) -> AcqQuery {
        AcqQuery::builder()
            .table("t")
            .predicate(
                Predicate::select(
                    ColRef::new("t", "x"),
                    Interval::new(0.0, 20.0),
                    RefineSide::Upper,
                )
                .with_domain(Interval::new(0.0, 100.0)),
            )
            .predicate(
                Predicate::select(
                    ColRef::new("t", "y"),
                    Interval::new(0.0, 20.0),
                    RefineSide::Upper,
                )
                .with_domain(Interval::new(0.0, 107.0)),
            )
            .constraint(AggConstraint::new(
                AggregateSpec::count(),
                CmpOp::Eq,
                target,
            ))
            .build()
            .unwrap()
    }

    #[test]
    fn agrees_with_the_scan_layer() {
        let q = query(1_200.0);
        let cfg = AcquireConfig::default();
        let space = RefinedSpace::new(&q, &cfg).unwrap();
        let caps = space.caps();

        let mut e1 = Executor::new(catalog());
        let mut scan = ScanEvaluator::new(&mut e1, &q, &caps).unwrap();
        let scan_out = acquire(&mut scan, &q, &cfg).unwrap();

        let mut e2 = Executor::new(catalog());
        let mut idx = BitmapIndexEvaluator::new(&mut e2, &q, &caps, 32).unwrap();
        let idx_out = acquire(&mut idx, &q, &cfg).unwrap();

        assert_eq!(scan_out.satisfied, idx_out.satisfied);
        assert_eq!(
            scan_out.best().map(|r| (r.qscore, r.aggregate)),
            idx_out.best().map(|r| (r.qscore, r.aggregate))
        );
    }

    #[test]
    fn skips_empty_cells_and_scans_less() {
        let q = query(1_200.0);
        let cfg = AcquireConfig::default();
        let space = RefinedSpace::new(&q, &cfg).unwrap();
        let caps = space.caps();
        let mut exec = Executor::new(catalog());
        let mut idx = BitmapIndexEvaluator::new(&mut exec, &q, &caps, 32).unwrap();
        let out = acquire(&mut idx, &q, &cfg).unwrap();
        assert!(out.satisfied);
        assert!(
            out.stats.cells_skipped > 0,
            "diagonal data must yield empty cells"
        );
        // Far less than one full scan per cell query.
        assert!(
            out.stats.tuples_scanned < out.stats.cell_queries * 2_000 / 4,
            "scanned {} over {} cells",
            out.stats.tuples_scanned,
            out.stats.cell_queries
        );
    }

    #[test]
    fn rejects_joins_and_non_attr_predicates() {
        let mut exec = Executor::new(catalog());
        let mut q = query(10.0);
        q.predicates.push(Predicate::equi_join(
            ColRef::new("t", "x"),
            ColRef::new("t", "y"),
        ));
        assert!(BitmapIndexEvaluator::new(&mut exec, &q, &[10.0, 10.0, 10.0], 16).is_err());

        let two_tables = AcqQuery::builder()
            .table("t")
            .table("u")
            .predicate(Predicate::select(
                ColRef::new("t", "x"),
                Interval::new(0.0, 1.0),
                RefineSide::Upper,
            ))
            .constraint(AggConstraint::new(AggregateSpec::count(), CmpOp::Eq, 1.0))
            .build()
            .unwrap();
        let mut exec = Executor::new(catalog());
        assert!(BitmapIndexEvaluator::new(&mut exec, &two_tables, &[10.0], 16).is_err());
    }

    #[test]
    fn lower_side_boxes_are_oriented_correctly() {
        // A Lower-refinable predicate: the cell box must extend downward.
        let mut b = TableBuilder::new("t", vec![Field::new("x", DataType::Float)]).unwrap();
        for i in 0..100 {
            b.push_row(vec![Value::Float(f64::from(i))]);
        }
        let mut cat = Catalog::new();
        cat.register(b.finish().unwrap()).unwrap();
        let q = AcqQuery::builder()
            .table("t")
            .predicate(
                Predicate::select(
                    ColRef::new("t", "x"),
                    Interval::new(80.0, 99.0),
                    RefineSide::Lower,
                )
                .with_domain(Interval::new(0.0, 99.0)),
            )
            .constraint(AggConstraint::new(AggregateSpec::count(), CmpOp::Eq, 60.0))
            .build()
            .unwrap();
        let cfg = AcquireConfig::default();
        let space = RefinedSpace::new(&q, &cfg).unwrap();
        let caps = space.caps();
        let mut exec = Executor::new(cat);
        let mut idx = BitmapIndexEvaluator::new(&mut exec, &q, &caps, 16).unwrap();
        let out = acquire(&mut idx, &q, &cfg).unwrap();
        assert!(out.satisfied);
        let best = out.best().unwrap();
        assert!((best.aggregate - 60.0).abs() / 60.0 <= 0.05 + 1e-9);
    }
}

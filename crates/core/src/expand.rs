//! Phase I: Expand — generating refined queries in refinement order (§4).
//!
//! The Expand phase must (1) stay within the proximity threshold and (2)
//! emit queries whose QScores never decrease, so that the search can stop as
//! soon as a query-layer containing an answer completes. For `Lp` norms this
//! is Algorithm 1: a breadth-first search over the grid where each point's
//! `d` neighbours increment one dimension by the unit step. For `L∞` it is
//! Algorithm 2: explicit enumeration of the L-shaped layers `max_i u_i = k`.
//!
//! Both expanders additionally guarantee the *containment order* of Theorem
//! 3: any grid query contained in `u` (component-wise `<= u`) is emitted
//! before `u`, which is what lets the Explore phase reuse sub-aggregates.

use std::collections::VecDeque;

use crate::fasthash::FastSet; // lint-allow(determinism): membership tests only; never iterated

use crate::space::{GridPoint, RefinedSpace};

/// A generator of grid queries in non-decreasing refinement order.
pub trait Expander {
    /// The next grid query, or `None` when the (limited) grid is exhausted.
    fn next_query(&mut self) -> Option<GridPoint>;
    /// The query-layer of a point under this expander's norm.
    fn layer_of(&self, p: &[u32]) -> u64;
    /// When `Some(k)`, the explorer may evict sub-aggregates of layers
    /// strictly below `k` once `current_layer` is being investigated — the
    /// layered expanders only ever reach one layer back. Best-first
    /// expansion visits layers in an irregular order and returns `None`
    /// (no eviction).
    fn evictable_below(&self, current_layer: u64) -> Option<u64> {
        Some(current_layer.saturating_sub(1))
    }
}

/// Algorithm 1: breadth-first search over the refined-space grid, used for
/// all `Lp` norms. Layers are L1 shells (`Σ u_i = k`).
#[derive(Debug)]
pub struct BfsExpander {
    limits: Vec<u32>,
    queue: VecDeque<GridPoint>,
    /// Dedup set for the layer currently being *pushed*. A point in L1
    /// layer `k + 1` is only ever generated while layer `k` is being
    /// popped, so one layer's worth of entries suffices; the set is cleared
    /// whenever the popped layer advances, bounding memory to a single
    /// layer instead of the whole visited grid.
    // lint-allow(determinism): membership only; emission order comes from the frontier
    seen: FastSet<GridPoint>,
    popped_layer: u64,
}

impl BfsExpander {
    /// Starts the search at the origin of `space`.
    #[must_use]
    pub fn new(space: &RefinedSpace) -> Self {
        Self {
            limits: space.limits().to_vec(),
            queue: VecDeque::from([space.origin()]),
            seen: FastSet::default(), // lint-allow(determinism): membership only
            popped_layer: 0,
        }
    }
}

impl Expander for BfsExpander {
    fn next_query(&mut self) -> Option<GridPoint> {
        let current = self.queue.pop_front()?;
        let layer = RefinedSpace::l1_layer(&current);
        if layer > self.popped_layer {
            // All pushes now target layer + 1; the previous layer's dedup
            // entries can never collide again.
            self.seen.clear();
            self.popped_layer = layer;
        }
        // GetNextNeighbor: increment each dimension by the unit step-size.
        for i in 0..current.len() {
            if current[i] < self.limits[i] {
                let mut next = current.clone();
                next[i] += 1;
                if self.seen.insert(next.clone()) {
                    self.queue.push_back(next);
                }
            }
        }
        Some(current)
    }

    fn layer_of(&self, p: &[u32]) -> u64 {
        RefinedSpace::l1_layer(p)
    }
}

/// Algorithm 2: sequential enumeration of the L-shaped `L∞` layers
/// (`max_i u_i = k`), in lexicographic order within a layer so that
/// contained queries still precede containing ones.
#[derive(Debug)]
pub struct LinfExpander {
    limits: Vec<u32>,
    layer: u64,
    buffer: VecDeque<GridPoint>,
    exhausted: bool,
}

impl LinfExpander {
    /// Starts the enumeration at the origin of `space`.
    #[must_use]
    pub fn new(space: &RefinedSpace) -> Self {
        let mut s = Self {
            limits: space.limits().to_vec(),
            layer: 0,
            buffer: VecDeque::new(),
            exhausted: false,
        };
        s.buffer.push_back(vec![0; space.dims()]);
        s
    }

    /// Fills `buffer` with the shell `max_i u_i == layer` (respecting
    /// per-dimension limits), in lexicographic order.
    fn fill_layer(&mut self) {
        let d = self.limits.len();
        let k = self.layer;
        if self.limits.iter().all(|&l| u64::from(l) < k) {
            self.exhausted = true;
            return;
        }
        let mut point = vec![0u32; d];
        // Lexicographic odometer over the box [0, min(k, limit_i)] keeping
        // only points whose maximum equals k.
        let cap: Vec<u32> = self
            .limits
            .iter()
            .map(|&l| l.min(k.min(u64::from(u32::MAX)) as u32))
            .collect();
        loop {
            if point.iter().map(|&u| u64::from(u)).max().unwrap_or(0) == k {
                self.buffer.push_back(point.clone());
            }
            // Increment odometer (last dimension fastest).
            let mut i = d;
            loop {
                if i == 0 {
                    return;
                }
                i -= 1;
                if point[i] < cap[i] {
                    point[i] += 1;
                    for p in point.iter_mut().skip(i + 1) {
                        *p = 0;
                    }
                    break;
                }
            }
        }
    }
}

impl Expander for LinfExpander {
    fn next_query(&mut self) -> Option<GridPoint> {
        while self.buffer.is_empty() && !self.exhausted {
            self.layer += 1;
            self.fill_layer();
        }
        self.buffer.pop_front()
    }

    fn layer_of(&self, p: &[u32]) -> u64 {
        RefinedSpace::linf_layer(p)
    }
}

/// Exact-order expansion for general `Lp` norms (an extension beyond the
/// paper): Algorithm 1's breadth-first search emits queries in L1 layers,
/// which coincide with QScore order only under the `L1` norm. This expander
/// pops grid queries from a priority queue keyed by the *actual* QScore, so
/// the driver's "stop when the answer layer closes" logic is exact for any
/// `Lp` / weighted norm.
///
/// Containment order still holds: removing one unit from any coordinate
/// strictly decreases every monotone norm, so a point's recurrence
/// neighbours always pop first. The price is that no sub-aggregate layer
/// can be evicted (visits interleave layers), so memory grows with the
/// visited set.
#[derive(Debug)]
pub struct BestFirstExpander {
    limits: Vec<u32>,
    norm: acq_query::Norm,
    step: f64,
    heap: std::collections::BinaryHeap<HeapEntry>,
    // lint-allow(determinism): membership only; emission order comes from the frontier
    seen: FastSet<GridPoint>,
    /// Quantisation of qscore into pseudo-layers for the driver (ties map
    /// to the same layer).
    layer_scale: f64,
}

#[derive(Debug)]
struct HeapEntry {
    qscore: f64,
    point: GridPoint,
}

impl PartialEq for HeapEntry {
    fn eq(&self, other: &Self) -> bool {
        self.qscore == other.qscore && self.point == other.point
    }
}
impl Eq for HeapEntry {}
impl PartialOrd for HeapEntry {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for HeapEntry {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Min-heap on qscore (BinaryHeap is a max-heap), lexicographic
        // point order as a deterministic tie-break.
        other
            .qscore
            .total_cmp(&self.qscore)
            .then_with(|| other.point.cmp(&self.point))
    }
}

impl BestFirstExpander {
    /// Starts the search at the origin of `space`.
    #[must_use]
    pub fn new(space: &RefinedSpace) -> Self {
        let mut s = Self {
            limits: space.limits().to_vec(),
            norm: space.norm().clone(),
            step: space.step(),
            heap: std::collections::BinaryHeap::new(),
            seen: FastSet::default(), // lint-allow(determinism): membership only
            layer_scale: 1024.0 / space.step().max(f64::MIN_POSITIVE),
        };
        let origin = space.origin();
        s.seen.insert(origin.clone());
        s.heap.push(HeapEntry {
            qscore: 0.0,
            point: origin,
        });
        s
    }

    fn qscore_of(&self, p: &[u32]) -> f64 {
        let pscores: Vec<f64> = p.iter().map(|&u| f64::from(u) * self.step).collect();
        self.norm.qscore(&pscores)
    }
}

impl Expander for BestFirstExpander {
    fn next_query(&mut self) -> Option<GridPoint> {
        let HeapEntry { point, .. } = self.heap.pop()?;
        for i in 0..point.len() {
            if point[i] < self.limits[i] {
                let mut next = point.clone();
                next[i] += 1;
                if self.seen.insert(next.clone()) {
                    let qscore = self.qscore_of(&next);
                    self.heap.push(HeapEntry {
                        qscore,
                        point: next,
                    });
                }
            }
        }
        Some(point)
    }

    fn layer_of(&self, p: &[u32]) -> u64 {
        // Quantised qscore: equal qscores share a layer, so the driver's
        // answer-layer collection keeps exact ties together.
        (self.qscore_of(p) * self.layer_scale).round() as u64
    }

    fn evictable_below(&self, _current_layer: u64) -> Option<u64> {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::AcquireConfig;
    use acq_query::{
        AcqQuery, AggConstraint, AggregateSpec, CmpOp, ColRef, Interval, Norm, Predicate,
        RefineSide,
    };

    fn space(d: usize, norm: Norm, limit_score: f64) -> RefinedSpace {
        let mut b = AcqQuery::builder().table("t");
        for i in 0..d {
            b = b.predicate(
                Predicate::select(
                    ColRef::new("t", format!("x{i}")),
                    Interval::new(0.0, 100.0),
                    RefineSide::Upper,
                )
                .with_domain(Interval::new(0.0, 100.0 + limit_score)),
            );
        }
        let q = b
            .constraint(AggConstraint::new(AggregateSpec::count(), CmpOp::Eq, 10.0))
            .build()
            .unwrap();
        RefinedSpace::new(&q, &AcquireConfig::default().with_norm(norm)).unwrap()
    }

    fn drain(mut e: impl Expander, max: usize) -> Vec<GridPoint> {
        let mut out = Vec::new();
        while let Some(p) = e.next_query() {
            out.push(p);
            if out.len() >= max {
                break;
            }
        }
        out
    }

    #[test]
    fn bfs_layers_nondecreasing_theorem2() {
        // 2 dims, step 5, limits from domain: (limit_score=50)/5 = 10 units.
        let s = space(2, Norm::L1, 50.0);
        let e = BfsExpander::new(&s);
        let pts = drain(e, 10_000);
        // Exhaustive: (10+1)^2 points.
        assert_eq!(pts.len(), 121);
        let layers: Vec<u64> = pts.iter().map(|p| RefinedSpace::l1_layer(p)).collect();
        assert!(layers.windows(2).all(|w| w[0] <= w[1]), "{layers:?}");
        assert_eq!(pts[0], vec![0, 0]);
    }

    #[test]
    fn bfs_emits_each_point_once() {
        let s = space(3, Norm::L1, 20.0);
        let pts = drain(BfsExpander::new(&s), 100_000);
        let mut set = std::collections::HashSet::new();
        for p in &pts {
            assert!(set.insert(p.clone()), "duplicate {p:?}");
        }
        // limits: ceil(20 / (10/3)) = 6 -> 7^3 points.
        assert_eq!(pts.len(), 343);
    }

    #[test]
    fn bfs_containment_order_theorem3() {
        let s = space(2, Norm::L1, 50.0);
        let pts = drain(BfsExpander::new(&s), 10_000);
        let pos = |p: &[u32]| pts.iter().position(|q| q == p).unwrap();
        // Every point strictly contained in (3, 2) must come first.
        for a in 0..=3u32 {
            for b in 0..=2u32 {
                if (a, b) != (3, 2) {
                    assert!(pos(&[a, b]) < pos(&[3, 2]));
                }
            }
        }
    }

    #[test]
    fn linf_layers_nondecreasing_and_lexicographic() {
        let s = space(2, Norm::LInf, 25.0); // limits = ceil(25/5) = 5 units
        let pts = drain(LinfExpander::new(&s), 10_000);
        assert_eq!(pts.len(), 36); // full 6x6 grid
        let layers: Vec<u64> = pts.iter().map(|p| RefinedSpace::linf_layer(p)).collect();
        assert!(layers.windows(2).all(|w| w[0] <= w[1]), "{layers:?}");
        // Layer 1 of a 2-d grid is the L-shape {01,10,11}.
        assert_eq!(&pts[1..4], &[vec![0, 1], vec![1, 0], vec![1, 1]]);
    }

    #[test]
    fn linf_containment_order_within_layer() {
        let s = space(2, Norm::LInf, 25.0);
        let pts = drain(LinfExpander::new(&s), 10_000);
        let pos = |p: &[u32]| pts.iter().position(|q| q == p).unwrap();
        // (3,1) is contained in (3,2): must be emitted first although both
        // are in L∞ layer 3.
        assert!(pos(&[3, 1]) < pos(&[3, 2]));
        assert!(pos(&[1, 3]) < pos(&[2, 3]));
    }

    #[test]
    fn expanders_respect_limits() {
        let s = space(2, Norm::L1, 10.0); // limits = 2 units
        let pts = drain(BfsExpander::new(&s), 1000);
        assert_eq!(pts.len(), 9);
        assert!(pts.iter().all(|p| p.iter().all(|&u| u <= 2)));
        let s = space(2, Norm::LInf, 10.0);
        let pts = drain(LinfExpander::new(&s), 1000);
        assert_eq!(pts.len(), 9);
    }

    #[test]
    fn best_first_orders_by_actual_lp_qscore() {
        let s = space(2, Norm::Lp(2.0), 50.0);
        let pts = drain(BestFirstExpander::new(&s), 10_000);
        assert_eq!(pts.len(), 121, "exhaustive");
        let q = |p: &[u32]| s.qscore(p);
        for w in pts.windows(2) {
            assert!(q(&w[0]) <= q(&w[1]) + 1e-9, "{:?} then {:?}", w[0], w[1]);
        }
        // BFS (Algorithm 1) violates exact L2 order inside its L1 layers:
        // its FIFO emits (2,0) (L2 qscore 10) before (1,1) (qscore 7.07).
        let bfs = drain(BfsExpander::new(&s), 10_000);
        let pos = |pts: &[GridPoint], p: &[u32]| pts.iter().position(|x| x == p).unwrap();
        assert!(pos(&bfs, &[2, 0]) < pos(&bfs, &[1, 1]), "BFS is L1-layered");
        assert!(
            pos(&pts, &[1, 1]) < pos(&pts, &[2, 0]),
            "best-first respects the true L2 order"
        );
    }

    #[test]
    fn best_first_containment_order() {
        let s = space(3, Norm::Lp(3.0), 20.0);
        let pts = drain(BestFirstExpander::new(&s), 100_000);
        assert_eq!(pts.len(), 343);
        for (i, a) in pts.iter().enumerate() {
            for b in pts.iter().skip(i + 1) {
                let b_contained = b.iter().zip(a).all(|(x, y)| x <= y) && a != b;
                assert!(!b_contained, "{b:?} contained in earlier {a:?}");
            }
        }
    }

    #[test]
    fn eviction_hints() {
        let s = space(2, Norm::L1, 10.0);
        assert_eq!(BfsExpander::new(&s).evictable_below(5), Some(4));
        assert_eq!(LinfExpander::new(&s).evictable_below(5), Some(4));
        assert_eq!(BestFirstExpander::new(&s).evictable_below(5), None);
    }

    #[test]
    fn asymmetric_limits() {
        // One dim capped at 0 via max_refinement.
        let q = AcqQuery::builder()
            .table("t")
            .predicate(
                Predicate::select(
                    ColRef::new("t", "a"),
                    Interval::new(0.0, 10.0),
                    RefineSide::Upper,
                )
                .with_domain(Interval::new(0.0, 10.0)), // no useful expansion
            )
            .predicate(
                Predicate::select(
                    ColRef::new("t", "b"),
                    Interval::new(0.0, 10.0),
                    RefineSide::Upper,
                )
                .with_domain(Interval::new(0.0, 11.0)), // 10% -> 2 units
            )
            .constraint(AggConstraint::new(AggregateSpec::count(), CmpOp::Eq, 5.0))
            .build()
            .unwrap();
        let s = RefinedSpace::new(&q, &AcquireConfig::default()).unwrap();
        assert_eq!(s.limits(), &[0, 2]);
        let pts = drain(BfsExpander::new(&s), 100);
        assert_eq!(pts, vec![vec![0, 0], vec![0, 1], vec![0, 2]]);
    }
}

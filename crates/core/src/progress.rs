//! Live refinement progress: wait-free event sink for layer-boundary commits.
//!
//! The driver emits a [`ProgressEvent`] at every serial layer-boundary commit
//! and one terminal event when the search ends. Events flow through a
//! [`ProgressSink`] — a bounded single-writer ring that *never blocks the
//! commit path*: the writer uses `try_lock` per slot and drops the event
//! (counted) if a reader holds the slot. Readers poll with [`drain_from`]
//! using a monotonically increasing cursor; lapped events are reported as
//! `missed`, never silently skipped.
//!
//! This file is on the lint `progress_sink_paths` grant: `try_push` may only
//! be called from here and from the driver's serial emission points
//! (enforced by acq-lint's obs-discipline contract 5).
//!
//! [`drain_from`]: ProgressSink::drain_from

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Mutex;

/// Default slot count for a [`ProgressSink`] ring.
pub const DEFAULT_PROGRESS_CAPACITY: usize = 1024;

/// One refinement progress observation.
///
/// Emitted at each serial layer-boundary commit (and once at termination with
/// `terminal = true`). `explored` is strictly monotone across the events of a
/// single run: at least one cell commits between consecutive layer
/// boundaries, and the terminal event reports the final count.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ProgressEvent {
    /// Registry id of the query this run belongs to (0 when unregistered).
    pub query_id: u64,
    /// Grid layer the driver just committed into.
    pub layer: u64,
    /// Cells explored so far (strictly monotone across events).
    pub explored: u64,
    /// Size of the batch being committed at this boundary.
    pub frontier: u64,
    /// Approximate bytes held by the result store.
    pub store_bytes: u64,
    /// Zone-map cells pruned so far by the evaluator.
    pub zones_pruned: u64,
    /// Milliseconds since the run started.
    pub elapsed_ms: u64,
    /// True only for the final event of a run.
    pub terminal: bool,
}

impl ProgressEvent {
    /// The event's fields as a braceless JSON fragment, so callers can
    /// append extra fields (e.g. the sealed outcome) before closing.
    pub fn json_fields(&self) -> String {
        format!(
            "\"query_id\":{},\"layer\":{},\"explored\":{},\"frontier\":{},\
             \"store_bytes\":{},\"zones_pruned\":{},\"elapsed_ms\":{},\"terminal\":{}",
            self.query_id,
            self.layer,
            self.explored,
            self.frontier,
            self.store_bytes,
            self.zones_pruned,
            self.elapsed_ms,
            self.terminal
        )
    }

    /// The event as a standalone JSON object.
    pub fn to_json(&self) -> String {
        format!("{{{}}}", self.json_fields())
    }
}

/// Bounded wait-free progress ring: one writer (the driver's serial commit
/// path), any number of polling readers.
///
/// Writer side: [`try_push`] claims the next slot with `try_lock`. If a
/// reader holds that slot the event is dropped and `dropped` is bumped —
/// the commit path never waits. Each slot stores `(seq, event)` so readers
/// can detect being lapped.
///
/// Reader side: [`drain_from`] returns every retained event at or after the
/// cursor, the next cursor, and how many events were missed (evicted by
/// wraparound or dropped at the slot).
///
/// [`try_push`]: ProgressSink::try_push
/// [`drain_from`]: ProgressSink::drain_from
pub struct ProgressSink {
    slots: Vec<Mutex<Option<(u64, ProgressEvent)>>>,
    /// Sequence number of the next event to be written.
    head: AtomicU64,
    /// Events discarded because a reader held the target slot.
    dropped: AtomicU64,
    /// Set once a terminal event has been accepted.
    terminal_seen: AtomicBool,
}

impl ProgressSink {
    /// A sink retaining at most `capacity` events (clamped to ≥ 1).
    pub fn new(capacity: usize) -> Self {
        let capacity = capacity.max(1);
        let mut slots = Vec::with_capacity(capacity);
        for _ in 0..capacity {
            slots.push(Mutex::new(None));
        }
        ProgressSink {
            slots,
            head: AtomicU64::new(0),
            dropped: AtomicU64::new(0),
            terminal_seen: AtomicBool::new(false),
        }
    }

    /// Slot count of the ring.
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Sequence number of the next event to be written; events with
    /// sequence `< head()` have been offered (though the oldest may have
    /// been evicted by wraparound).
    pub fn head(&self) -> u64 {
        self.head.load(Ordering::Acquire)
    }

    /// Events dropped because the commit path would have had to wait.
    pub fn dropped(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed) // relaxed-ok: monotone counter read
    }

    /// True once a terminal event has been accepted into the ring.
    pub fn is_terminated(&self) -> bool {
        self.terminal_seen.load(Ordering::Acquire)
    }

    /// Offer an event without ever blocking. Returns `false` (and counts the
    /// drop) if the target slot is momentarily held by a reader.
    ///
    /// Single-writer: only the driver's serial emission path may call this
    /// for a given sink.
    pub fn try_push(&self, event: ProgressEvent) -> bool {
        let seq = self.head.load(Ordering::Acquire);
        let slot = &self.slots[(seq % self.slots.len() as u64) as usize];
        match slot.try_lock() {
            Ok(mut guard) => {
                *guard = Some((seq, event));
                drop(guard);
                self.head.store(seq + 1, Ordering::Release);
                if event.terminal {
                    self.terminal_seen.store(true, Ordering::Release);
                }
                true
            }
            Err(_) => {
                self.dropped.fetch_add(1, Ordering::Relaxed); // relaxed-ok: independent monotone counter
                false
            }
        }
    }

    /// Read every retained event with sequence `>= cursor`, in order.
    ///
    /// Returns `(events, next_cursor, missed)`. `missed` counts events the
    /// reader can no longer observe: evicted by ring wraparound before the
    /// cursor caught up, or overwritten between the head load and the slot
    /// read (lapped). Resume the next poll from `next_cursor`.
    pub fn drain_from(&self, cursor: u64) -> (Vec<ProgressEvent>, u64, u64) {
        let head = self.head.load(Ordering::Acquire);
        let cap = self.slots.len() as u64;
        let oldest = head.saturating_sub(cap);
        let mut missed = oldest.saturating_sub(cursor);
        let start = cursor.max(oldest);
        let mut events = Vec::new();
        for seq in start..head {
            let slot = &self.slots[(seq % cap) as usize];
            match slot.try_lock() {
                Ok(guard) => match *guard {
                    Some((stored_seq, ev)) if stored_seq == seq => events.push(ev),
                    // Lapped (or never written after a drop): unobservable.
                    _ => missed += 1,
                },
                // Writer (or another reader) holds the slot right now; the
                // writer would have dropped rather than overwrite, so this
                // event is gone for us too.
                Err(_) => missed += 1,
            }
        }
        (events, head, missed)
    }
}

impl std::fmt::Debug for ProgressSink {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ProgressSink")
            .field("capacity", &self.capacity())
            .field("head", &self.head())
            .field("dropped", &self.dropped())
            .field("terminated", &self.is_terminated())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(explored: u64, terminal: bool) -> ProgressEvent {
        ProgressEvent {
            query_id: 7,
            layer: 2,
            explored,
            frontier: 16,
            store_bytes: 1024,
            zones_pruned: 3,
            elapsed_ms: 5,
            terminal,
        }
    }

    #[test]
    fn push_then_drain_round_trips_in_order() {
        let sink = ProgressSink::new(8);
        for i in 0..5 {
            assert!(sink.try_push(ev(i, false)));
        }
        let (events, next, missed) = sink.drain_from(0);
        assert_eq!(events.len(), 5);
        assert_eq!(next, 5);
        assert_eq!(missed, 0);
        assert!(events.windows(2).all(|w| w[0].explored < w[1].explored));
        // Nothing new: empty drain from the returned cursor.
        let (events, next2, missed) = sink.drain_from(next);
        assert!(events.is_empty());
        assert_eq!(next2, 5);
        assert_eq!(missed, 0);
    }

    #[test]
    fn wraparound_reports_missed_events() {
        let sink = ProgressSink::new(4);
        for i in 0..10 {
            assert!(sink.try_push(ev(i, false)));
        }
        // Ring holds the last 4; the first 6 are gone.
        let (events, next, missed) = sink.drain_from(0);
        assert_eq!(missed, 6);
        assert_eq!(next, 10);
        assert_eq!(
            events.iter().map(|e| e.explored).collect::<Vec<_>>(),
            vec![6, 7, 8, 9]
        );
    }

    #[test]
    fn writer_drops_instead_of_blocking_on_held_slot() {
        let sink = ProgressSink::new(2);
        assert!(sink.try_push(ev(0, false)));
        assert!(sink.try_push(ev(1, false)));
        // Hold the slot the writer wants next (seq 2 -> slot 0).
        let guard = sink.slots[0].lock().unwrap();
        assert!(!sink.try_push(ev(2, false)));
        assert_eq!(sink.dropped(), 1);
        drop(guard);
        assert!(sink.try_push(ev(3, false)));
        assert_eq!(sink.dropped(), 1);
        // head only advanced for accepted events.
        assert_eq!(sink.head(), 3);
    }

    #[test]
    fn terminal_flag_latches() {
        let sink = ProgressSink::new(4);
        assert!(!sink.is_terminated());
        sink.try_push(ev(1, false));
        assert!(!sink.is_terminated());
        sink.try_push(ev(2, true));
        assert!(sink.is_terminated());
        let (events, _, _) = sink.drain_from(0);
        assert!(events.last().unwrap().terminal);
    }

    #[test]
    fn zero_capacity_clamps_to_one() {
        let sink = ProgressSink::new(0);
        assert_eq!(sink.capacity(), 1);
        assert!(sink.try_push(ev(0, false)));
        let (events, _, _) = sink.drain_from(0);
        assert_eq!(events.len(), 1);
    }

    #[test]
    fn event_json_has_all_fields() {
        let e = ev(42, true);
        let json = e.to_json();
        let parsed = acq_obs::json::parse(&json).expect("valid json");
        assert_eq!(
            parsed.pointer("/explored").and_then(|v| v.as_f64()),
            Some(42.0)
        );
        assert_eq!(
            parsed.pointer("/terminal").and_then(|v| v.as_bool()),
            Some(true)
        );
        assert_eq!(
            parsed.pointer("/query_id").and_then(|v| v.as_f64()),
            Some(7.0)
        );
        assert_eq!(
            parsed.pointer("/zones_pruned").and_then(|v| v.as_f64()),
            Some(3.0)
        );
    }

    #[test]
    fn concurrent_reader_never_sees_out_of_order_explored() {
        use std::sync::Arc;
        let sink = Arc::new(ProgressSink::new(16));
        let writer = {
            let sink = Arc::clone(&sink);
            std::thread::spawn(move || {
                for i in 0..2000u64 {
                    sink.try_push(ev(i, i == 1999));
                }
            })
        };
        let mut cursor = 0u64;
        let mut last = None::<u64>;
        while !sink.is_terminated() || cursor < sink.head() {
            let (events, next, _missed) = sink.drain_from(cursor);
            cursor = next;
            for e in events {
                if let Some(prev) = last {
                    assert!(
                        e.explored > prev,
                        "explored regressed: {} -> {}",
                        prev,
                        e.explored
                    );
                }
                last = Some(e.explored);
            }
            std::thread::yield_now();
        }
        writer.join().unwrap();
    }
}

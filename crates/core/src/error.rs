//! Core error type.

use std::fmt;

use acq_engine::EngineError;
use acq_query::AcqError;

/// Errors surfaced by the ACQUIRE driver.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum CoreError {
    /// The query or norm failed validation.
    Query(AcqError),
    /// The evaluation layer failed.
    Engine(EngineError),
    /// The configuration is unusable (e.g. non-positive thresholds).
    Config(String),
    /// The evaluation layer panicked mid-search; the driver isolated the
    /// panic (`catch_unwind`) and surfaces its message here instead of
    /// unwinding through — or aborting — the caller.
    EvalPanicked(String),
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Query(e) => write!(f, "invalid ACQ: {e}"),
            Self::Engine(e) => write!(f, "evaluation layer error: {e}"),
            Self::Config(msg) => write!(f, "invalid configuration: {msg}"),
            Self::EvalPanicked(msg) => write!(f, "evaluation layer panicked: {msg}"),
        }
    }
}

impl std::error::Error for CoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Self::Query(e) => Some(e),
            Self::Engine(e) => Some(e),
            _ => None,
        }
    }
}

impl From<AcqError> for CoreError {
    fn from(e: AcqError) -> Self {
        Self::Query(e)
    }
}

impl From<EngineError> for CoreError {
    fn from(e: EngineError) -> Self {
        Self::Engine(e)
    }
}

//! Cell repartitioning for overshooting queries (Algorithm 4, §6).
//!
//! When a grid query overshoots the expected aggregate by more than `δ`
//! while its contained neighbours undershoot, the constraint's crossing
//! point lies *inside* the query's cell. The driver then "repartitions the
//! cell corresponding to the given query and examines queries lying within
//! … for `b` iterations, where `b` is a tunable parameter."
//!
//! This implementation bisects the cell along the diagonal between the
//! cell's lower corner (contained, undershooting) and the grid point itself
//! (overshooting), executing each candidate as a full query against the
//! evaluation layer — the candidates are fractional and do not align with
//! the grid, so incremental computation does not apply to them.

use acq_engine::EngineResult;
use acq_query::AggErrorFn;

use crate::eval::EvaluationLayer;
use crate::space::{GridPoint, RefinedSpace};

/// A fractional candidate found inside a repartitioned cell.
#[derive(Debug, Clone, PartialEq)]
pub struct RepartitionHit {
    /// Refinement bounds (PScore percent per flexible predicate).
    pub bounds: Vec<f64>,
    /// The candidate's aggregate value.
    pub aggregate: f64,
    /// Its aggregate error.
    pub error: f64,
}

/// Bisects the cell of `point` for up to `depth` iterations, returning the
/// candidate with the smallest aggregate error (which the caller checks
/// against `δ`). Returns `None` when the cell is degenerate (the origin).
pub fn repartition<E: EvaluationLayer>(
    eval: &mut E,
    space: &RefinedSpace,
    point: &GridPoint,
    target: f64,
    error_fn: AggErrorFn,
    depth: u32,
) -> EngineResult<Option<RepartitionHit>> {
    if point.iter().all(|&u| u == 0) {
        return Ok(None);
    }
    let hi = space.bounds(point);
    let lo: Vec<f64> = point
        .iter()
        .map(|&u| {
            if u > 0 {
                f64::from(u - 1) * space.step()
            } else {
                0.0
            }
        })
        .collect();

    let mut t_lo = 0.0f64;
    let mut t_hi = 1.0f64;
    let mut best: Option<RepartitionHit> = None;
    for _ in 0..depth.max(1) {
        let t = 0.5 * (t_lo + t_hi);
        let bounds: Vec<f64> = lo.iter().zip(&hi).map(|(&a, &b)| a + t * (b - a)).collect();
        let state = eval.full_aggregate(&bounds)?;
        let Some(actual) = state.value() else {
            // Empty aggregate (MIN/MAX over no tuples): grow the candidate.
            t_lo = t;
            continue;
        };
        let error = error_fn.error(target, actual);
        if best.as_ref().is_none_or(|b| error < b.error) {
            best = Some(RepartitionHit {
                bounds: bounds.clone(),
                aggregate: actual,
                error,
            });
        }
        if actual > target {
            t_hi = t;
        } else {
            t_lo = t;
        }
    }
    Ok(best)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::AcquireConfig;
    use crate::eval::CachedScoreEvaluator;
    use acq_engine::{Catalog, DataType, Executor, Field, TableBuilder, Value};
    use acq_query::{
        AcqQuery, AggConstraint, AggregateSpec, CmpOp, ColRef, Interval, Predicate, RefineSide,
    };

    /// Dense data: 1000 rows with x = 0.1, 0.2, ... so a whole grid step of
    /// 5% (interval width 10 -> 0.5 units of x) admits ~5 new tuples and a
    /// fine target sits strictly inside one cell.
    fn setup() -> (Executor, AcqQuery) {
        let mut b = TableBuilder::new("t", vec![Field::new("x", DataType::Float)]).unwrap();
        for i in 0..1000 {
            b.push_row(vec![Value::Float(f64::from(i) * 0.1)]);
        }
        let mut cat = Catalog::new();
        cat.register(b.finish().unwrap()).unwrap();
        let q = AcqQuery::builder()
            .table("t")
            .predicate(
                Predicate::select(
                    ColRef::new("t", "x"),
                    Interval::new(0.0, 10.0),
                    RefineSide::Upper,
                )
                .with_domain(Interval::new(0.0, 99.9)),
            )
            .constraint(AggConstraint::new(AggregateSpec::count(), CmpOp::Eq, 103.0))
            .build()
            .unwrap();
        (Executor::new(cat), q)
    }

    #[test]
    fn bisection_converges_into_the_cell() {
        let (mut exec, q) = setup();
        let cfg = AcquireConfig::default(); // step = gamma/d = 10%
        let space = RefinedSpace::new(&q, &cfg).unwrap();
        let caps = space.caps();
        let mut eval = CachedScoreEvaluator::new(&mut exec, &q, &caps).unwrap();
        // Grid point [1] = 10% refinement -> x <= 11 -> 111 tuples: overshoots
        // the 103 target; origin (101 tuples) undershoots beyond delta=0.01.
        let hit = repartition(&mut eval, &space, &vec![1], 103.0, AggErrorFn::Relative, 12)
            .unwrap()
            .unwrap();
        assert!(hit.error < 0.01, "error {}", hit.error);
        assert!(
            (hit.aggregate - 103.0).abs() <= 1.0,
            "agg {}",
            hit.aggregate
        );
        assert!(hit.bounds[0] > 0.0 && hit.bounds[0] < 10.0);
    }

    #[test]
    fn origin_cell_is_degenerate() {
        let (mut exec, q) = setup();
        let cfg = AcquireConfig::default();
        let space = RefinedSpace::new(&q, &cfg).unwrap();
        let caps = space.caps();
        let mut eval = CachedScoreEvaluator::new(&mut exec, &q, &caps).unwrap();
        let r = repartition(&mut eval, &space, &vec![0], 103.0, AggErrorFn::Relative, 4).unwrap();
        assert!(r.is_none());
    }
}

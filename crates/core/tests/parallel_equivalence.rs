//! Parallel Explore determinism: for every thread count, `acquire` must
//! produce outcomes **bit-identical** to the serial driver — same answers,
//! same closest-so-far, same stats, same termination — including under
//! explored/memory budgets, deterministic fault injection, and mid-run
//! cancellation.
//!
//! The comparison key serialises every observable field of [`AcqOutcome`]
//! with floats rendered as raw bit patterns, so even a sign-of-zero or
//! last-ulp divergence fails the tests. The only field deliberately
//! excluded is the wall-clock `elapsed` inside
//! [`Termination::Interrupted`].

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Duration;

use acq_engine::{
    AggState, Catalog, CellRange, DataType, EngineResult, ExecStats, Executor, Field, TableBuilder,
    Value,
};
use acq_query::{
    AcqQuery, AggConstraint, AggErrorFn, AggregateSpec, CmpOp, ColRef, Interval, Predicate,
    RefineSide,
};
use acquire_core::govern::Termination;
use acquire_core::{
    acquire_observed, acquire_progress, acquire_with, AcqOutcome, AcquireConfig,
    CachedScoreEvaluator, CancellationToken, CellCost, CoreError, EvaluationLayer, ExecutionBudget,
    FaultInjectingLayer, FaultPolicy, FaultSchedule, GridIndexEvaluator, Obs, ParallelCells,
    Parallelism, ProgressSink, RefinedQueryResult, RefinedSpace,
};

// ---------------------------------------------------------------------------
// Workloads
// ---------------------------------------------------------------------------

/// 3000 rows: x = 0.0, 0.1, …, 299.9 and y = i mod 150 — wide enough that
/// mid-search layers hold dozens of cells (the parallel path engages above
/// a 4-cell batch).
fn catalog() -> Catalog {
    let mut b = TableBuilder::new(
        "t",
        vec![
            Field::new("x", DataType::Float),
            Field::new("y", DataType::Float),
        ],
    )
    .unwrap();
    for i in 0..3000 {
        b.push_row(vec![
            Value::Float(f64::from(i) * 0.1),
            Value::Float(f64::from(i % 150)),
        ]);
    }
    let mut cat = Catalog::new();
    cat.register(b.finish().unwrap()).unwrap();
    cat
}

fn base_query(op: CmpOp, err: AggErrorFn, target: f64) -> AcqQuery {
    AcqQuery::builder()
        .table("t")
        .predicate(Predicate::select(
            ColRef::new("t", "x"),
            Interval::new(0.0, 10.0),
            RefineSide::Upper,
        ))
        .predicate(Predicate::select(
            ColRef::new("t", "y"),
            Interval::new(0.0, 30.0),
            RefineSide::Upper,
        ))
        .constraint(AggConstraint::new(AggregateSpec::count(), op, target))
        .error_fn(err)
        .build()
        .unwrap()
}

/// `COUNT(*) >= target` with hinge error: overshoot satisfies, so the
/// repartitioning branch never runs.
fn ge_query(target: f64) -> AcqQuery {
    base_query(CmpOp::Ge, AggErrorFn::HingeRelative, target)
}

/// `COUNT(*) = target` with symmetric relative error: overshooting cells
/// exercise the Algorithm 4 repartitioning branch.
fn eq_query(target: f64) -> AcqQuery {
    base_query(CmpOp::Eq, AggErrorFn::Relative, target)
}

// ---------------------------------------------------------------------------
// Outcome fingerprinting (floats as raw bits)
// ---------------------------------------------------------------------------

fn bits(x: f64) -> u64 {
    x.to_bits()
}

fn result_key(r: &RefinedQueryResult) -> String {
    format!(
        "point={:?} pscores={:?} qscore={} aggregate={} error={} sql={}",
        r.point,
        r.pscores.iter().copied().map(bits).collect::<Vec<_>>(),
        bits(r.qscore),
        bits(r.aggregate),
        bits(r.error),
        r.sql,
    )
}

/// Every observable field of the outcome, minus wall-clock time.
fn fingerprint(out: &AcqOutcome) -> String {
    let termination = match &out.termination {
        Termination::Interrupted {
            reason, explored, ..
        } => format!("Interrupted(reason={reason:?}, explored={explored})"),
        t => format!("{t:?}"),
    };
    format!(
        "satisfied={} explored={} layers={} peak_store={} original={} stats={:?} \
         termination={termination} closest={:?} answers={:?}",
        out.satisfied,
        out.explored,
        out.layers,
        out.peak_store,
        bits(out.original_aggregate),
        out.stats,
        out.closest.as_ref().map(result_key),
        out.queries.iter().map(result_key).collect::<Vec<_>>(),
    )
}

// ---------------------------------------------------------------------------
// Runners
// ---------------------------------------------------------------------------

#[derive(Clone, Copy)]
enum Layer {
    Cached,
    Grid,
}

fn run_layer(
    layer: Layer,
    query: &AcqQuery,
    cfg: &AcquireConfig,
    cancel: &CancellationToken,
) -> Result<AcqOutcome, CoreError> {
    let mut exec = Executor::new(catalog());
    exec.set_zone_pruning(cfg.zone_pruning);
    let mut query = query.clone();
    exec.populate_domains(&mut query).unwrap();
    let space = RefinedSpace::new(&query, cfg).unwrap();
    let caps = space.caps();
    match layer {
        Layer::Cached => {
            let mut eval = CachedScoreEvaluator::new(&mut exec, &query, &caps).unwrap();
            acquire_with(&mut eval, &query, cfg, cancel)
        }
        Layer::Grid => {
            let mut eval = GridIndexEvaluator::new(&mut exec, &query, &caps, space.step()).unwrap();
            acquire_with(&mut eval, &query, cfg, cancel)
        }
    }
}

fn run(layer: Layer, query: &AcqQuery, cfg: &AcquireConfig) -> AcqOutcome {
    run_layer(layer, query, cfg, &CancellationToken::new()).unwrap()
}

/// Thread counts under test: serial, every pool size 2–8, and `Auto`.
fn parallel_settings() -> Vec<Parallelism> {
    let mut settings: Vec<Parallelism> = (2..=8).map(Parallelism::Fixed).collect();
    settings.push(Parallelism::Auto);
    settings
}

// ---------------------------------------------------------------------------
// Plain equivalence
// ---------------------------------------------------------------------------

#[test]
fn every_thread_count_matches_serial_bit_for_bit() {
    for (query, delta) in [(ge_query(800.0), 0.05), (eq_query(801.0), 0.001)] {
        for layer in [Layer::Cached, Layer::Grid] {
            let serial_cfg = AcquireConfig::default().with_delta(delta);
            let baseline = fingerprint(&run(layer, &query, &serial_cfg));
            for par in parallel_settings() {
                let cfg = serial_cfg.clone().with_parallelism(par);
                let got = fingerprint(&run(layer, &query, &cfg));
                assert_eq!(got, baseline, "{par:?} diverged from serial");
            }
        }
    }
}

#[test]
fn budget_interrupts_are_identical_across_thread_counts() {
    let query = ge_query(800.0);
    let full = run(Layer::Grid, &query, &AcquireConfig::default());
    assert!(full.explored > 8, "need a non-trivial search");

    // Explored budgets, including ones that land mid-layer.
    for k in [1, 2, 5, full.explored / 2] {
        let serial_cfg =
            AcquireConfig::default().with_budget(ExecutionBudget::unlimited().with_max_explored(k));
        let baseline = fingerprint(&run(Layer::Grid, &query, &serial_cfg));
        assert!(baseline.contains("ExploredBudget"), "budget {k} must trip");
        for par in parallel_settings() {
            let cfg = serial_cfg.clone().with_parallelism(par);
            let got = fingerprint(&run(Layer::Grid, &query, &cfg));
            assert_eq!(got, baseline, "budget {k}, {par:?}");
        }
    }

    // A zero deadline interrupts before any work on every path (non-zero
    // deadlines are wall-clock dependent, hence not deterministic).
    let serial_cfg = AcquireConfig::default()
        .with_budget(ExecutionBudget::unlimited().with_deadline(Duration::ZERO));
    let baseline = fingerprint(&run(Layer::Grid, &query, &serial_cfg));
    for par in parallel_settings() {
        let cfg = serial_cfg.clone().with_parallelism(par);
        assert_eq!(fingerprint(&run(Layer::Grid, &query, &cfg)), baseline);
    }
}

// ---------------------------------------------------------------------------
// Zone-map pruning ablation
// ---------------------------------------------------------------------------

/// [`fingerprint`] minus `stats`: disabling zone pruning legitimately
/// changes `tuples_scanned` and zeroes the zone counters, while every
/// answer-bearing field must stay bit-identical between the two modes.
fn outcome_fingerprint(out: &AcqOutcome) -> String {
    let termination = match &out.termination {
        Termination::Interrupted {
            reason, explored, ..
        } => format!("Interrupted(reason={reason:?}, explored={explored})"),
        t => format!("{t:?}"),
    };
    format!(
        "satisfied={} explored={} layers={} peak_store={} original={} \
         termination={termination} closest={:?} answers={:?}",
        out.satisfied,
        out.explored,
        out.layers,
        out.peak_store,
        bits(out.original_aggregate),
        out.closest.as_ref().map(result_key),
        out.queries.iter().map(result_key).collect::<Vec<_>>(),
    )
}

#[test]
fn zone_pruning_ablation_is_bit_identical_across_thread_counts() {
    for (query, delta) in [(ge_query(800.0), 0.05), (eq_query(801.0), 0.001)] {
        let on_cfg = AcquireConfig::default().with_delta(delta);
        let off_cfg = on_cfg.clone().with_zone_pruning(false);
        let on = run(Layer::Cached, &query, &on_cfg);
        let off = run(Layer::Cached, &query, &off_cfg);
        // The answers must agree bit for bit; only the scan accounting may
        // differ between the two modes.
        assert_eq!(outcome_fingerprint(&on), outcome_fingerprint(&off));
        // The ablation must be real: pruning engages and saves tuple work,
        // and with pruning off the zone counters stay untouched.
        assert!(on.stats.zones_pruned > 0, "{:?}", on.stats);
        assert!(
            on.stats.tuples_scanned < off.stats.tuples_scanned,
            "{:?} vs {:?}",
            on.stats,
            off.stats
        );
        assert_eq!(off.stats.zones_pruned, 0);
        assert_eq!(off.stats.zones_full, 0);
        assert_eq!(off.stats.zones_scanned, 0);
        // Within each mode the full fingerprint — stats included — is
        // thread-count invariant.
        let on_base = fingerprint(&on);
        let off_base = fingerprint(&off);
        for par in parallel_settings() {
            let on_cfg = on_cfg.clone().with_parallelism(par);
            let off_cfg = off_cfg.clone().with_parallelism(par);
            assert_eq!(
                fingerprint(&run(Layer::Cached, &query, &on_cfg)),
                on_base,
                "pruning on, {par:?}"
            );
            assert_eq!(
                fingerprint(&run(Layer::Cached, &query, &off_cfg)),
                off_base,
                "pruning off, {par:?}"
            );
        }
    }
}

#[test]
fn zone_pruning_ablation_holds_under_budgets_and_faults() {
    let query = ge_query(800.0);

    // Explored budgets that land mid-layer: the interrupt must strike the
    // same logical cell in both modes and on every thread count.
    for k in [1, 5, 40] {
        let on_cfg =
            AcquireConfig::default().with_budget(ExecutionBudget::unlimited().with_max_explored(k));
        let off_cfg = on_cfg.clone().with_zone_pruning(false);
        let on = run(Layer::Cached, &query, &on_cfg);
        let off = run(Layer::Cached, &query, &off_cfg);
        assert_eq!(
            outcome_fingerprint(&on),
            outcome_fingerprint(&off),
            "budget {k}"
        );
        let on_base = fingerprint(&on);
        let off_base = fingerprint(&off);
        for par in [Parallelism::Fixed(4), Parallelism::Fixed(7)] {
            let on_cfg = on_cfg.clone().with_parallelism(par);
            let off_cfg = off_cfg.clone().with_parallelism(par);
            assert_eq!(
                fingerprint(&run(Layer::Cached, &query, &on_cfg)),
                on_base,
                "budget {k}, pruning on, {par:?}"
            );
            assert_eq!(
                fingerprint(&run(Layer::Cached, &query, &off_cfg)),
                off_base,
                "budget {k}, pruning off, {par:?}"
            );
        }
    }

    // Deterministic fault schedules: coordinate-keyed faults strike the
    // same cell whether or not its blocks were pruned, under both
    // policies, and each mode stays thread-count invariant.
    for seed in [2, 5, 9] {
        let schedule = FaultSchedule::mixed(seed, 0.15, 0.1);
        for policy in [FaultPolicy::BestEffort, FaultPolicy::Propagate] {
            let on_cfg = AcquireConfig::default();
            let off_cfg = on_cfg.clone().with_zone_pruning(false);
            let key = |r: &Result<AcqOutcome, CoreError>| match r {
                Ok(out) => format!("Ok({})", outcome_fingerprint(out)),
                Err(e) => format!("Err({e:?})"),
            };
            let full_key = |r: &Result<AcqOutcome, CoreError>| match r {
                Ok(out) => format!("Ok({})", fingerprint(out)),
                Err(e) => format!("Err({e:?})"),
            };
            let on = run_faulted(&schedule, policy, &on_cfg);
            let off = run_faulted(&schedule, policy, &off_cfg);
            assert_eq!(key(&on), key(&off), "seed {seed}, {policy:?}");
            let on_base = full_key(&on);
            let off_base = full_key(&off);
            for par in [Parallelism::Fixed(4), Parallelism::Fixed(7)] {
                let on_cfg = on_cfg.clone().with_parallelism(par);
                let off_cfg = off_cfg.clone().with_parallelism(par);
                assert_eq!(
                    full_key(&run_faulted(&schedule, policy, &on_cfg)),
                    on_base,
                    "seed {seed}, {policy:?}, pruning on, {par:?}"
                );
                assert_eq!(
                    full_key(&run_faulted(&schedule, policy, &off_cfg)),
                    off_base,
                    "seed {seed}, {policy:?}, pruning off, {par:?}"
                );
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Fault injection
// ---------------------------------------------------------------------------

fn run_faulted(
    schedule: &FaultSchedule,
    policy: FaultPolicy,
    cfg: &AcquireConfig,
) -> Result<AcqOutcome, CoreError> {
    let query = ge_query(800.0);
    let mut exec = Executor::new(catalog());
    exec.set_zone_pruning(cfg.zone_pruning);
    let mut query = query.clone();
    exec.populate_domains(&mut query).unwrap();
    let cfg = cfg.clone().with_fault_policy(policy);
    let space = RefinedSpace::new(&query, &cfg).unwrap();
    let caps = space.caps();
    let inner = CachedScoreEvaluator::new(&mut exec, &query, &caps).unwrap();
    let mut eval = FaultInjectingLayer::new(inner, schedule.clone());
    acquire_with(&mut eval, &query, &cfg, &CancellationToken::new())
}

#[test]
fn injected_faults_strike_the_same_cell_on_every_thread_count() {
    let mut faulted = 0;
    for seed in 0..12 {
        let schedule = FaultSchedule::mixed(seed, 0.15, 0.1);

        // Best-effort: the fault is absorbed into the outcome, which must
        // be identical everywhere (coordinate-keyed schedules fire on the
        // same cell regardless of execution order).
        let serial = run_faulted(
            &schedule,
            FaultPolicy::BestEffort,
            &AcquireConfig::default(),
        )
        .expect("best-effort absorbs faults");
        let baseline = fingerprint(&serial);
        if serial.termination.interrupt_reason().is_some() {
            faulted += 1;
        }
        for par in [Parallelism::Fixed(4), Parallelism::Fixed(7)] {
            let cfg = AcquireConfig::default().with_parallelism(par);
            let got = fingerprint(&run_faulted(&schedule, FaultPolicy::BestEffort, &cfg).unwrap());
            assert_eq!(got, baseline, "seed {seed}, {par:?}");
        }

        // Propagate: success and failure must agree, and failures must be
        // the same typed error.
        let serial = run_faulted(&schedule, FaultPolicy::Propagate, &AcquireConfig::default());
        let baseline = match &serial {
            Ok(out) => format!("Ok({})", fingerprint(out)),
            Err(e) => format!("Err({e:?})"),
        };
        for par in [Parallelism::Fixed(4), Parallelism::Fixed(7)] {
            let cfg = AcquireConfig::default().with_parallelism(par);
            let got = match run_faulted(&schedule, FaultPolicy::Propagate, &cfg) {
                Ok(out) => format!("Ok({})", fingerprint(&out)),
                Err(e) => format!("Err({e:?})"),
            };
            assert_eq!(got, baseline, "seed {seed}, {par:?}");
        }
    }
    assert!(faulted > 0, "the schedules must actually fault");
}

// ---------------------------------------------------------------------------
// Mid-run cancellation
// ---------------------------------------------------------------------------

/// Cancels a token after the `k`-th *committed* cell: in serial mode cells
/// commit inside [`EvaluationLayer::cell_aggregate`]; in parallel mode
/// prefetched cells commit through
/// [`EvaluationLayer::commit_cell_cost`]. Both sites observe the driver's
/// emission order, so the cancellation lands at the same logical instant
/// for every thread count. Speculative executions
/// ([`ParallelCells::cell_aggregate_shared`]) deliberately do not count.
struct CancelAfterCommits<E> {
    inner: E,
    commits: AtomicU64,
    after: u64,
    token: CancellationToken,
}

impl<E> CancelAfterCommits<E> {
    fn new(inner: E, after: u64, token: CancellationToken) -> Self {
        Self {
            inner,
            commits: AtomicU64::new(0),
            after,
            token,
        }
    }

    fn bump(&self) {
        if self.commits.fetch_add(1, Ordering::Relaxed) + 1 >= self.after {
            self.token.cancel();
        }
    }
}

impl<E: EvaluationLayer + Sync> EvaluationLayer for CancelAfterCommits<E> {
    fn cell_aggregate(&mut self, cell: &[CellRange]) -> EngineResult<AggState> {
        let out = self.inner.cell_aggregate(cell);
        self.bump();
        out
    }

    fn full_aggregate(&mut self, bounds: &[f64]) -> EngineResult<AggState> {
        self.inner.full_aggregate(bounds)
    }

    fn empty_state(&self) -> EngineResult<AggState> {
        self.inner.empty_state()
    }

    fn stats(&self) -> ExecStats {
        self.inner.stats()
    }

    fn universe_size(&self) -> usize {
        self.inner.universe_size()
    }

    fn parallel_cells(&self) -> Option<&dyn ParallelCells> {
        self.inner
            .parallel_cells()
            .map(|_| self as &dyn ParallelCells)
    }

    fn commit_cell_cost(&mut self, cost: &CellCost) {
        self.inner.commit_cell_cost(cost);
        self.bump();
    }
}

impl<E: EvaluationLayer + Sync> ParallelCells for CancelAfterCommits<E> {
    fn cell_aggregate_shared(&self, cell: &[CellRange]) -> EngineResult<(AggState, CellCost)> {
        self.inner
            .parallel_cells()
            .expect("handle exists whenever parallel_cells() returned Some")
            .cell_aggregate_shared(cell)
    }
}

fn run_cancelling(after: u64, cfg: &AcquireConfig) -> AcqOutcome {
    let query = ge_query(800.0);
    let mut exec = Executor::new(catalog());
    let mut query = query.clone();
    exec.populate_domains(&mut query).unwrap();
    let space = RefinedSpace::new(&query, cfg).unwrap();
    let caps = space.caps();
    let token = CancellationToken::new();
    let inner = CachedScoreEvaluator::new(&mut exec, &query, &caps).unwrap();
    let mut eval = CancelAfterCommits::new(inner, after, token.clone());
    acquire_with(&mut eval, &query, cfg, &token).unwrap()
}

#[test]
fn mid_run_cancellation_is_deterministic_across_thread_counts() {
    let full = run(Layer::Cached, &ge_query(800.0), &AcquireConfig::default());
    assert!(full.explored > 10, "need a non-trivial search");

    for k in [1, 3, full.explored / 2] {
        let baseline = fingerprint(&run_cancelling(k, &AcquireConfig::default()));
        assert!(
            baseline.contains("Cancelled"),
            "cancellation after {k} commits must interrupt: {baseline}"
        );
        assert!(baseline.contains(&format!("explored={k} ")), "{baseline}");
        for par in parallel_settings() {
            let cfg = AcquireConfig::default().with_parallelism(par);
            let got = fingerprint(&run_cancelling(k, &cfg));
            assert_eq!(got, baseline, "cancel after {k}, {par:?}");
        }
    }
}

// ---------------------------------------------------------------------------
// At-most-once across threads
// ---------------------------------------------------------------------------

/// Counts every execution attempt per cell coordinate, on both the serial
/// (`cell_aggregate`) and the shared (`cell_aggregate_shared`) paths.
struct CountingLayer<E> {
    inner: E,
    counts: Mutex<HashMap<String, u64>>,
    shared_calls: AtomicU64,
}

impl<E> CountingLayer<E> {
    fn new(inner: E) -> Self {
        Self {
            inner,
            counts: Mutex::new(HashMap::new()),
            shared_calls: AtomicU64::new(0),
        }
    }

    fn record(&self, cell: &[CellRange]) {
        *self
            .counts
            .lock()
            .unwrap()
            .entry(format!("{cell:?}"))
            .or_insert(0) += 1;
    }
}

impl<E: EvaluationLayer + Sync> EvaluationLayer for CountingLayer<E> {
    fn cell_aggregate(&mut self, cell: &[CellRange]) -> EngineResult<AggState> {
        self.record(cell);
        self.inner.cell_aggregate(cell)
    }

    fn full_aggregate(&mut self, bounds: &[f64]) -> EngineResult<AggState> {
        self.inner.full_aggregate(bounds)
    }

    fn empty_state(&self) -> EngineResult<AggState> {
        self.inner.empty_state()
    }

    fn stats(&self) -> ExecStats {
        self.inner.stats()
    }

    fn universe_size(&self) -> usize {
        self.inner.universe_size()
    }

    fn parallel_cells(&self) -> Option<&dyn ParallelCells> {
        self.inner
            .parallel_cells()
            .map(|_| self as &dyn ParallelCells)
    }

    fn commit_cell_cost(&mut self, cost: &CellCost) {
        self.inner.commit_cell_cost(cost);
    }
}

impl<E: EvaluationLayer + Sync> ParallelCells for CountingLayer<E> {
    fn cell_aggregate_shared(&self, cell: &[CellRange]) -> EngineResult<(AggState, CellCost)> {
        self.record(cell);
        self.shared_calls.fetch_add(1, Ordering::Relaxed);
        self.inner
            .parallel_cells()
            .expect("handle exists whenever parallel_cells() returned Some")
            .cell_aggregate_shared(cell)
    }
}

#[test]
fn no_cell_is_ever_executed_twice_under_parallelism() {
    // Faults, a mid-search budget, and 4 workers all at once: the
    // speculative pool must still never re-execute a coordinate serially
    // or vice versa.
    let scenarios: Vec<(FaultSchedule, Option<u64>)> = vec![
        (FaultSchedule::none(1), None),
        (FaultSchedule::none(1), Some(7)),
        (FaultSchedule::mixed(3, 0.1, 0.05), None),
        (FaultSchedule::mixed(5, 0.1, 0.05), Some(11)),
    ];
    for (schedule, budget) in scenarios {
        let seed = schedule.seed;
        let faulty = schedule.error_rate > 0.0 || schedule.panic_rate > 0.0;
        let query = ge_query(800.0);
        let mut exec = Executor::new(catalog());
        let mut query = query.clone();
        exec.populate_domains(&mut query).unwrap();
        let mut cfg = AcquireConfig::default()
            .with_parallelism(Parallelism::Fixed(4))
            .with_fault_policy(FaultPolicy::BestEffort);
        if let Some(k) = budget {
            cfg = cfg.with_budget(ExecutionBudget::unlimited().with_max_explored(k));
        }
        let space = RefinedSpace::new(&query, &cfg).unwrap();
        let caps = space.caps();
        let inner = CachedScoreEvaluator::new(&mut exec, &query, &caps).unwrap();
        let eval = CountingLayer::new(FaultInjectingLayer::new(inner, schedule));
        let mut eval = eval;
        let out = acquire_with(&mut eval, &query, &cfg, &CancellationToken::new()).unwrap();
        assert!(out.explored > 0 || out.termination.interrupt_reason().is_some());
        if budget.is_none() && !faulty {
            // Tight budgets clamp batches below the parallel threshold, and
            // best-effort faults can end the run in the narrow early
            // layers; in the plain scenario the pool must really engage.
            assert!(
                eval.shared_calls.load(Ordering::Relaxed) > 0,
                "seed {seed}: the speculative pool must actually engage"
            );
        }
        let counts = eval.counts.lock().unwrap();
        assert!(!counts.is_empty(), "the search must attempt some cells");
        for (cell, n) in counts.iter() {
            assert_eq!(*n, 1, "cell {cell} attempted {n} times (seed {seed})");
        }
    }
}

// ---------------------------------------------------------------------------
// Metrics ground truth
// ---------------------------------------------------------------------------

/// The deterministic instruments must agree with the outcome **exactly**:
/// the cell-execution counter and the latency-histogram population both
/// commit in the driver's serial emission loop at the same site where
/// `explored` advances, so equality holds by construction — this test
/// pins that construction down for every thread count and under every
/// disruption the suite knows (faults, budgets, cancellation).
fn assert_metrics_ground_truth(obs: &Obs, out: &AcqOutcome, what: &str) {
    let snap = obs.snapshot().expect("enabled handle");
    assert_eq!(
        snap.counter("cells_executed"),
        Some(out.explored),
        "{what}: cells_executed != AcqOutcome.explored"
    );
    let hist = snap.histogram("cell_latency_ns").expect("known instrument");
    assert_eq!(
        hist.count, out.explored,
        "{what}: latency histogram population != cells executed"
    );
    assert_eq!(
        hist.buckets.iter().map(|&(_, n)| n).sum::<u64>(),
        hist.count,
        "{what}: histogram buckets don't sum to its count"
    );
    assert_eq!(
        snap.counter("at_most_once_violations"),
        Some(0),
        "{what}: a cell sub-query was executed twice"
    );
    // Speculative executions are bounded by commits + in-flight discards;
    // every one the pool recorded must be attributed to some worker.
    let speculative = snap.counter("cells_speculative").unwrap();
    let worker_cells: u64 = snap.workers.iter().map(|&(_, cells, _)| cells).sum();
    assert_eq!(
        worker_cells, speculative,
        "{what}: per-worker tallies don't account for every speculative execution"
    );
}

fn run_observed(
    layer: Layer,
    query: &AcqQuery,
    cfg: &AcquireConfig,
    cancel: &CancellationToken,
    obs: &Obs,
) -> Result<AcqOutcome, CoreError> {
    let mut exec = Executor::new(catalog());
    let mut query = query.clone();
    exec.populate_domains(&mut query).unwrap();
    let space = RefinedSpace::new(&query, cfg).unwrap();
    let caps = space.caps();
    match layer {
        Layer::Cached => {
            let mut eval = CachedScoreEvaluator::new(&mut exec, &query, &caps).unwrap();
            acquire_observed(&mut eval, &query, cfg, cancel, obs)
        }
        Layer::Grid => {
            let mut eval = GridIndexEvaluator::new(&mut exec, &query, &caps, space.step()).unwrap();
            acquire_observed(&mut eval, &query, cfg, cancel, obs)
        }
    }
}

/// All thread counts under test for the metrics property: serial plus
/// every pool size 2–8.
fn all_thread_settings() -> Vec<Parallelism> {
    let mut settings = vec![Parallelism::Serial];
    settings.extend((2..=8).map(Parallelism::Fixed));
    settings
}

#[test]
fn metrics_match_ground_truth_for_every_thread_count() {
    // GE engages answers-without-repartition; EQ exercises repartitioning.
    for (query, delta) in [(ge_query(800.0), 0.05), (eq_query(801.0), 0.001)] {
        for layer in [Layer::Cached, Layer::Grid] {
            for par in all_thread_settings() {
                let cfg = AcquireConfig::default()
                    .with_delta(delta)
                    .with_parallelism(par);
                let obs = Obs::enabled();
                let out =
                    run_observed(layer, &query, &cfg, &CancellationToken::new(), &obs).unwrap();
                assert!(out.explored > 0);
                assert_metrics_ground_truth(&obs, &out, &format!("{par:?}"));
            }
        }
    }
}

#[test]
fn metrics_match_ground_truth_under_budgets_and_faults() {
    let query = ge_query(800.0);

    // Explored budgets that land mid-layer.
    for k in [1, 5, 40] {
        for par in [Parallelism::Serial, Parallelism::Fixed(4)] {
            let cfg = AcquireConfig::default()
                .with_parallelism(par)
                .with_budget(ExecutionBudget::unlimited().with_max_explored(k));
            let obs = Obs::enabled();
            let out =
                run_observed(Layer::Grid, &query, &cfg, &CancellationToken::new(), &obs).unwrap();
            assert_metrics_ground_truth(&obs, &out, &format!("budget {k}, {par:?}"));
            let snap = obs.snapshot().unwrap();
            assert_eq!(
                snap.counter("interrupts"),
                Some(1),
                "budget {k} must trip exactly one interrupt"
            );
        }
    }

    // Deterministic fault injection, best-effort policy.
    for seed in [3, 5, 9] {
        let schedule = FaultSchedule::mixed(seed, 0.15, 0.1);
        for par in [Parallelism::Serial, Parallelism::Fixed(4)] {
            let mut exec = Executor::new(catalog());
            let mut query = query.clone();
            exec.populate_domains(&mut query).unwrap();
            let cfg = AcquireConfig::default()
                .with_parallelism(par)
                .with_fault_policy(FaultPolicy::BestEffort);
            let space = RefinedSpace::new(&query, &cfg).unwrap();
            let caps = space.caps();
            let obs = Obs::enabled();
            let inner = CachedScoreEvaluator::new(&mut exec, &query, &caps).unwrap();
            let mut eval =
                FaultInjectingLayer::with_observability(inner, schedule.clone(), obs.clone());
            let out =
                acquire_observed(&mut eval, &query, &cfg, &CancellationToken::new(), &obs).unwrap();
            assert_metrics_ground_truth(&obs, &out, &format!("faults seed {seed}, {par:?}"));
        }
    }
}

// ---------------------------------------------------------------------------
// Progress streaming is observational only
// ---------------------------------------------------------------------------

/// Attaching a [`ProgressSink`] must not perturb the search: outcomes stay
/// bit-identical to the sink-less run on every thread count, and the event
/// stream itself is well-formed — `explored` strictly monotone, exactly one
/// terminal event, the terminal totals agreeing with the outcome.
#[test]
fn progress_sink_leaves_outcomes_bit_identical_across_thread_counts() {
    for (query, delta) in [(ge_query(800.0), 0.05), (eq_query(801.0), 0.001)] {
        let serial_cfg = AcquireConfig::default().with_delta(delta);
        let baseline = fingerprint(&run(Layer::Cached, &query, &serial_cfg));
        let mut settings = vec![Parallelism::Serial];
        settings.extend(parallel_settings());
        for par in settings {
            let cfg = serial_cfg.clone().with_parallelism(par);
            let mut exec = Executor::new(catalog());
            exec.set_zone_pruning(cfg.zone_pruning);
            let mut query = query.clone();
            exec.populate_domains(&mut query).unwrap();
            let space = RefinedSpace::new(&query, &cfg).unwrap();
            let caps = space.caps();
            let sink = ProgressSink::new(4096);
            let mut eval = CachedScoreEvaluator::new(&mut exec, &query, &caps).unwrap();
            let out = acquire_progress(
                &mut eval,
                &query,
                &cfg,
                &CancellationToken::new(),
                &Obs::disabled(),
                Some(&sink),
            )
            .unwrap();
            assert_eq!(
                fingerprint(&out),
                baseline,
                "{par:?}: attaching the sink changed the outcome"
            );

            // The stream must be honest about what it observed.
            let (events, _, missed) = sink.drain_from(0);
            assert_eq!(missed, 0, "{par:?}: 4096 slots must not wrap here");
            assert_eq!(sink.dropped(), 0, "{par:?}: single reader never contends");
            assert!(!events.is_empty(), "{par:?}: no events emitted");
            assert!(
                events.windows(2).all(|w| w[0].explored < w[1].explored),
                "{par:?}: explored not strictly monotone"
            );
            let terminal_count = events.iter().filter(|e| e.terminal).count();
            assert_eq!(terminal_count, 1, "{par:?}: exactly one terminal event");
            let last = events.last().unwrap();
            assert!(last.terminal, "{par:?}: terminal event must come last");
            assert_eq!(last.explored, out.explored, "{par:?}");
            assert_eq!(last.layer, out.layers, "{par:?}");
            assert!(sink.is_terminated(), "{par:?}");
        }
    }
}

#[test]
fn metrics_match_ground_truth_under_mid_run_cancellation() {
    for k in [1, 3, 25] {
        for par in [Parallelism::Serial, Parallelism::Fixed(4)] {
            let query = ge_query(800.0);
            let mut exec = Executor::new(catalog());
            let mut query = query.clone();
            exec.populate_domains(&mut query).unwrap();
            let cfg = AcquireConfig::default().with_parallelism(par);
            let space = RefinedSpace::new(&query, &cfg).unwrap();
            let caps = space.caps();
            let token = CancellationToken::new();
            let obs = Obs::enabled();
            let inner = CachedScoreEvaluator::new(&mut exec, &query, &caps).unwrap();
            let mut eval = CancelAfterCommits::new(inner, k, token.clone());
            let out = acquire_observed(&mut eval, &query, &cfg, &token, &obs).unwrap();
            assert_eq!(out.explored, k, "cancel after {k} commits");
            assert_metrics_ground_truth(&obs, &out, &format!("cancel after {k}, {par:?}"));
        }
    }
}

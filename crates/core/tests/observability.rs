//! The observability layer must be a pure observer: enabling it may not
//! change a single bit of any outcome, a disabled handle must be close to
//! free, and the artifacts it emits (trace, JSON snapshot, Prometheus
//! exposition) must be well-formed — the snapshot is validated against the
//! same committed schema CI uses (`schemas/metrics.schema.json`).

use std::time::Instant;

use acq_engine::{Catalog, DataType, Executor, Field, TableBuilder, Value};
use acq_query::{
    AcqQuery, AggConstraint, AggErrorFn, AggregateSpec, CmpOp, ColRef, Interval, Predicate,
    RefineSide,
};
use acquire_core::{
    acquire_observed, AcqOutcome, AcquireConfig, CachedScoreEvaluator, CancellationToken, Obs,
    Parallelism, RefinedSpace, Session,
};

fn catalog() -> Catalog {
    let mut b = TableBuilder::new(
        "t",
        vec![
            Field::new("x", DataType::Float),
            Field::new("y", DataType::Float),
        ],
    )
    .unwrap();
    for i in 0..3000 {
        b.push_row(vec![
            Value::Float(f64::from(i) * 0.1),
            Value::Float(f64::from(i % 150)),
        ]);
    }
    let mut cat = Catalog::new();
    cat.register(b.finish().unwrap()).unwrap();
    cat
}

fn query(target: f64) -> AcqQuery {
    AcqQuery::builder()
        .table("t")
        .predicate(Predicate::select(
            ColRef::new("t", "x"),
            Interval::new(0.0, 10.0),
            RefineSide::Upper,
        ))
        .predicate(Predicate::select(
            ColRef::new("t", "y"),
            Interval::new(0.0, 30.0),
            RefineSide::Upper,
        ))
        .constraint(AggConstraint::new(
            AggregateSpec::count(),
            CmpOp::Ge,
            target,
        ))
        .error_fn(AggErrorFn::HingeRelative)
        .build()
        .unwrap()
}

fn run_with(obs: &Obs, cfg: &AcquireConfig) -> AcqOutcome {
    let mut exec = Executor::new(catalog());
    let mut q = query(800.0);
    exec.populate_domains(&mut q).unwrap();
    let space = RefinedSpace::new(&q, cfg).unwrap();
    let caps = space.caps();
    let mut eval = CachedScoreEvaluator::new(&mut exec, &q, &caps).unwrap();
    acquire_observed(&mut eval, &q, cfg, &CancellationToken::new(), obs).unwrap()
}

/// Every observable field, floats as raw bits.
fn fingerprint(out: &AcqOutcome) -> String {
    format!(
        "satisfied={} explored={} layers={} peak_store={} original={} stats={:?} \
         termination={:?} answers={:?}",
        out.satisfied,
        out.explored,
        out.layers,
        out.peak_store,
        out.original_aggregate.to_bits(),
        out.stats,
        out.termination,
        out.queries
            .iter()
            .map(|r| format!(
                "{:?}/{}/{}",
                r.point,
                r.aggregate.to_bits(),
                r.error.to_bits()
            ))
            .collect::<Vec<_>>(),
    )
}

// ---------------------------------------------------------------------------
// Observation must not perturb the system
// ---------------------------------------------------------------------------

#[test]
fn enabling_observability_never_changes_the_outcome() {
    for par in [Parallelism::Serial, Parallelism::Fixed(4)] {
        let cfg = AcquireConfig::default().with_parallelism(par);
        let baseline = fingerprint(&run_with(&Obs::disabled(), &cfg));
        for (what, obs) in [
            ("counters", Obs::enabled()),
            ("tracing", Obs::with_trace(10_000)),
        ] {
            let got = fingerprint(&run_with(&obs, &cfg));
            assert_eq!(got, baseline, "{what} observability perturbed {par:?}");
        }
    }
}

/// A disabled handle costs one null check per instrument, so a run with
/// observability off must stay within noise of one that never heard of it.
/// Each attempt measures min-of-5 interleaved runs with an absolute floor;
/// up to three attempts absorb transient contention from concurrently
/// running tests (a *systematic* overhead regression fails every attempt,
/// noise doesn't).
#[test]
fn disabled_observability_overhead_is_below_two_percent() {
    let cfg = AcquireConfig::default();
    // Warm-up: fault in lazily-initialised state on both paths.
    run_with(&Obs::disabled(), &cfg);

    let mut last = String::new();
    for _attempt in 0..3 {
        let mut plain = f64::INFINITY;
        let mut enabled = f64::INFINITY;
        for _ in 0..5 {
            let t = Instant::now();
            run_with(&Obs::disabled(), &cfg);
            plain = plain.min(t.elapsed().as_secs_f64() * 1e3);

            let obs = Obs::enabled();
            let t = Instant::now();
            run_with(&obs, &cfg);
            enabled = enabled.min(t.elapsed().as_secs_f64() * 1e3);
        }
        // The counters-only path bounds the disabled path from above: if
        // even live atomics fit in 2% + floor, the null-check path
        // certainly does.
        let allowed = plain * 1.02 + 15.0;
        if enabled <= allowed {
            return;
        }
        last =
            format!("instrumented run {enabled:.1}ms exceeds {allowed:.1}ms (plain {plain:.1}ms)");
    }
    panic!("{last}");
}

// ---------------------------------------------------------------------------
// Emitted artifacts
// ---------------------------------------------------------------------------

#[test]
fn snapshot_json_validates_against_the_committed_schema() {
    let obs = Obs::enabled();
    let out = run_with(&obs, &AcquireConfig::default().with_threads(4));
    let snap = obs.snapshot().unwrap();
    assert_eq!(snap.counter("cells_executed"), Some(out.explored));

    let doc = acq_obs::json::parse(&snap.to_json()).expect("snapshot renders valid JSON");
    let schema_path = concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../../schemas/metrics.schema.json"
    );
    let schema_text = std::fs::read_to_string(schema_path).expect("committed schema exists");
    let schema = acq_obs::json::parse(&schema_text).expect("schema is valid JSON");
    let errors = acq_obs::schema::validate(&schema, &doc);
    assert!(errors.is_empty(), "schema violations: {errors:#?}");
}

#[test]
fn trace_records_the_pipeline_phases() {
    let obs = Obs::with_trace(10_000);
    let out = run_with(&obs, &AcquireConfig::default().with_threads(4));
    assert!(out.explored > 0);
    let trace = obs.render_trace().expect("tracing handle");
    for needle in [
        "acquire: target",
        "expand layer 0",
        "explore: speculative pool (4 workers",
        "answer:",
        "done: satisfied",
    ] {
        assert!(trace.contains(needle), "missing {needle:?} in:\n{trace}");
    }
    // Spans carry durations, events don't.
    assert!(trace.contains("ms]"), "timestamps missing:\n{trace}");
}

#[test]
fn prometheus_exposition_covers_every_instrument_family() {
    let obs = Obs::enabled();
    run_with(&obs, &AcquireConfig::default().with_threads(4));
    let text = obs.snapshot().unwrap().to_prometheus();
    for needle in [
        "# TYPE acq_cells_executed_total counter",
        "acq_store_peak ",
        "acq_cell_latency_ns_bucket{le=\"+Inf\"}",
        "acq_exec_cell_queries_total",
    ] {
        assert!(text.contains(needle), "missing {needle:?} in:\n{text}");
    }
}

/// The full live-progress path — a `ProgressSink` fed at every layer
/// boundary plus a `FlightRecorder` sampling a process-scoped `Metrics` at
/// its default cadence — must stay within 2% of an identical recorder-less
/// run: that is the price a served query pays while someone watches
/// `/query/<id>/progress` and `/timeseries`. Same retry discipline as the
/// disabled-handle gate above: min-of-5 per attempt, absolute floor, three
/// attempts so only a systematic regression fails.
#[test]
fn progress_and_recorder_overhead_is_below_two_percent() {
    use acq_obs::{FlightRecorder, Metrics, DEFAULT_RECORDER_CADENCE, DEFAULT_RECORDER_CAPACITY};
    use acquire_core::{acquire_progress, ProgressSink, DEFAULT_PROGRESS_CAPACITY};
    use std::sync::Arc;

    let cfg = AcquireConfig::default();
    run_with(&Obs::enabled(), &cfg); // warm-up

    let run_recorded = |sink: &ProgressSink| {
        let mut exec = Executor::new(catalog());
        let mut q = query(800.0);
        exec.populate_domains(&mut q).unwrap();
        let space = RefinedSpace::new(&q, &cfg).unwrap();
        let caps = space.caps();
        let mut eval = CachedScoreEvaluator::new(&mut exec, &q, &caps).unwrap();
        let obs = Obs::enabled();
        acquire_progress(
            &mut eval,
            &q,
            &cfg,
            &CancellationToken::new(),
            &obs,
            Some(sink),
        )
        .unwrap();
        obs
    };

    let process_metrics = Arc::new(Metrics::new());
    let _recorder = FlightRecorder::start(
        Arc::clone(&process_metrics),
        DEFAULT_RECORDER_CADENCE,
        DEFAULT_RECORDER_CAPACITY,
    );

    let mut last = String::new();
    for _attempt in 0..3 {
        let mut plain = f64::INFINITY;
        let mut recorded = f64::INFINITY;
        for _ in 0..5 {
            let t = Instant::now();
            run_with(&Obs::enabled(), &cfg);
            plain = plain.min(t.elapsed().as_secs_f64() * 1e3);

            let sink = ProgressSink::new(DEFAULT_PROGRESS_CAPACITY);
            let t = Instant::now();
            let obs = run_recorded(&sink);
            recorded = recorded.min(t.elapsed().as_secs_f64() * 1e3);
            process_metrics.absorb_snapshot(&obs.snapshot().unwrap());
            assert!(sink.is_terminated(), "run must emit its terminal event");
        }
        let allowed = plain * 1.02 + 15.0;
        if recorded <= allowed {
            return;
        }
        last = format!("recorded run {recorded:.1}ms exceeds {allowed:.1}ms (plain {plain:.1}ms)");
    }
    panic!("{last}");
}

// ---------------------------------------------------------------------------
// Session plumbing
// ---------------------------------------------------------------------------

#[test]
fn session_threads_its_observability_handle_through_runs() {
    let mut exec = Executor::new(catalog());
    let q = query(800.0);
    let cfg = AcquireConfig::default();
    let mut session = Session::new(&mut exec, &q, &cfg).unwrap();
    assert!(
        !session.observability().is_enabled(),
        "sessions default to a disabled handle"
    );

    session.set_observability(Obs::enabled());
    let first = session.run(800.0).unwrap();
    let after_first = session
        .observability()
        .snapshot()
        .unwrap()
        .counter("cells_executed")
        .unwrap();
    assert_eq!(after_first, first.explored);

    // Instruments accumulate across runs of one session (documented):
    // a second run adds its cells on top.
    let second = session.run(820.0).unwrap();
    let after_second = session
        .observability()
        .snapshot()
        .unwrap()
        .counter("cells_executed")
        .unwrap();
    assert_eq!(after_second, first.explored + second.explored);
}

/// Serve-mode instrumentation: every request runs against its own tracing
/// handle with a registry request ID attached, and the finished snapshot is
/// folded into a process-scoped registry. None of that may perturb the
/// outcome — bit-identical across threads 1–8 — and the per-query
/// `cells_executed == explored` invariant must hold in the registry record
/// of every request.
#[test]
fn serve_style_instrumentation_preserves_parallel_equivalence() {
    use acq_obs::{Metrics, QueryRegistry, QuerySummary};

    let baseline = fingerprint(&run_with(&Obs::disabled(), &AcquireConfig::default()));

    let process_metrics = Metrics::new();
    let registry = QueryRegistry::default();
    for threads in 1..=8 {
        let cfg = AcquireConfig::default().with_parallelism(Parallelism::Fixed(threads));
        let obs = Obs::with_trace(4096);
        let id = registry.begin(format!("threads={threads}"), threads);
        obs.set_query_id(id);
        let t0 = Instant::now();
        let out = run_with(&obs, &cfg);
        assert_eq!(
            fingerprint(&out),
            baseline,
            "serve instrumentation perturbed the outcome at {threads} thread(s)"
        );

        let snap = obs.snapshot().unwrap();
        registry.finish(
            id,
            QuerySummary {
                termination: out.termination.slug().to_string(),
                explored: out.explored,
                cells_executed: snap.counter("cells_executed").unwrap(),
                answers: out.queries.len() as u64,
                satisfied: out.satisfied,
                layers: out.layers,
            },
            t0.elapsed().as_millis() as u64,
            obs.render_trace_json(),
        );
        process_metrics.absorb_snapshot(&snap);

        // The per-query record pins the at-most-once invariant.
        let rec = registry.get(id).unwrap();
        let sum = rec.summary.as_ref().unwrap();
        assert_eq!(
            sum.cells_executed, sum.explored,
            "registry record violates cells_executed == explored at {threads} thread(s)"
        );
        // Request IDs tag the per-query trace.
        let trace = rec.trace_json.unwrap();
        assert!(trace.contains(&format!("[q{id}] acquire:")), "{trace}");
    }

    // The process registry saw 8 identical runs: totals are 8× one run.
    let (running, completed, dropped) = registry.counts();
    assert_eq!((running, completed, dropped), (0, 8, 0));
    let one = run_with(&Obs::enabled(), &AcquireConfig::default());
    assert_eq!(process_metrics.cells_executed.get(), 8 * one.explored);
    assert_eq!(process_metrics.at_most_once_violations.get(), 0);
}

/// The explain profile's Eq. 17 accounting must agree with the live run:
/// `cells_executed == explored` and `regions_reused == explored · d` for
/// any thread count.
#[test]
fn explain_profile_matches_live_accounting() {
    use acquire_core::ExplainProfile;

    for threads in [1, 4] {
        let cfg = AcquireConfig::default().with_parallelism(Parallelism::Fixed(threads));
        let obs = Obs::enabled();
        let t0 = Instant::now();
        let out = run_with(&obs, &cfg);
        let snap = obs.snapshot().unwrap();
        let q = query(800.0);
        let p = ExplainProfile::new(&q, &cfg, &out, Some(&snap), t0.elapsed());
        assert_eq!(p.cells_executed, out.explored);
        assert_eq!(p.regions_reused, out.explored * 2);
        assert_eq!(p.subqueries_total, out.explored * 3);
        assert_eq!(p.at_most_once_violations, 0);
        assert_eq!(p.workers, threads);
        assert!(
            p.explore_exec.is_some(),
            "instrumented run has a phase split"
        );
    }
}

//! Anytime-execution guarantees: deadlines, budgets, cancellation, panic
//! isolation, and fault injection.
//!
//! The contracts under test:
//!
//! * under any budget or cancellation, `acquire` returns `Ok(outcome)`
//!   carrying the closest-so-far query and a machine-readable
//!   [`Termination::Interrupted`] reason;
//! * an interrupted run equals the uninterrupted run truncated at the same
//!   point (verified against an independent manual Expand/Explore drive);
//! * no region of data is ever executed twice (§5's at-most-once), with or
//!   without interrupts and faults;
//! * under any seeded fault schedule the driver returns `Ok` or a typed
//!   [`CoreError`] — it never aborts the process and panics never unwind
//!   through the caller.

use std::time::Duration;

use acq_engine::{
    AggState, Catalog, CellRange, DataType, EngineError, EngineResult, ExecStats, Executor, Field,
    TableBuilder, Value,
};
use acq_query::{
    AcqQuery, AggConstraint, AggErrorFn, AggregateSpec, CmpOp, ColRef, Interval, Predicate,
    RefineSide,
};
use acquire_core::expand::{BfsExpander, Expander};
use acquire_core::explore::Explorer;
use acquire_core::govern::Termination;
use acquire_core::{
    acquire, acquire_with, AcquireConfig, CachedScoreEvaluator, CancellationToken, CoreError,
    EvaluationLayer, ExecutionBudget, FaultInjectingLayer, FaultPolicy, FaultSchedule,
    GridIndexEvaluator, InterruptReason, RefinedSpace, Session,
};

/// 1000 rows: x = 0.0, 0.1, …, 99.9 and y = i mod 100.
fn catalog() -> Catalog {
    let mut b = TableBuilder::new(
        "t",
        vec![
            Field::new("x", DataType::Float),
            Field::new("y", DataType::Float),
        ],
    )
    .unwrap();
    for i in 0..1000 {
        b.push_row(vec![
            Value::Float(f64::from(i) * 0.1),
            Value::Float(f64::from(i % 100)),
        ]);
    }
    let mut cat = Catalog::new();
    cat.register(b.finish().unwrap()).unwrap();
    cat
}

/// `COUNT(*) >= target` over two expandable predicates; hinge error, so
/// overshooting satisfies the constraint and repartitioning never runs.
fn ge_query(target: f64) -> AcqQuery {
    AcqQuery::builder()
        .table("t")
        .predicate(Predicate::select(
            ColRef::new("t", "x"),
            Interval::new(0.0, 10.0),
            RefineSide::Upper,
        ))
        .predicate(Predicate::select(
            ColRef::new("t", "y"),
            Interval::new(0.0, 30.0),
            RefineSide::Upper,
        ))
        .constraint(AggConstraint::new(
            AggregateSpec::count(),
            CmpOp::Ge,
            target,
        ))
        .error_fn(AggErrorFn::HingeRelative)
        .build()
        .unwrap()
}

/// Runs `acquire` over a fresh grid-index layer.
fn run(query: &AcqQuery, cfg: &AcquireConfig) -> acquire_core::AcqOutcome {
    run_with(query, cfg, &CancellationToken::new())
}

fn run_with(
    query: &AcqQuery,
    cfg: &AcquireConfig,
    cancel: &CancellationToken,
) -> acquire_core::AcqOutcome {
    let mut exec = Executor::new(catalog());
    let mut query = query.clone();
    exec.populate_domains(&mut query).unwrap();
    let space = RefinedSpace::new(&query, cfg).unwrap();
    let caps = space.caps();
    let mut eval = GridIndexEvaluator::new(&mut exec, &query, &caps, space.step()).unwrap();
    acquire_with(&mut eval, &query, cfg, cancel).unwrap()
}

// ---------------------------------------------------------------------------
// Instrumentation layers
// ---------------------------------------------------------------------------

/// Records every cell executed; optionally cancels a token after `k` cell
/// executions (modelling a user hitting Ctrl-C mid-search).
struct RecordingLayer<E> {
    inner: E,
    cells: Vec<String>,
    cancel_after: Option<(u64, CancellationToken)>,
}

impl<E> RecordingLayer<E> {
    fn new(inner: E) -> Self {
        Self {
            inner,
            cells: Vec::new(),
            cancel_after: None,
        }
    }

    fn cancelling(inner: E, after: u64, token: CancellationToken) -> Self {
        Self {
            inner,
            cells: Vec::new(),
            cancel_after: Some((after, token)),
        }
    }
}

impl<E: EvaluationLayer> EvaluationLayer for RecordingLayer<E> {
    fn cell_aggregate(&mut self, cell: &[CellRange]) -> EngineResult<AggState> {
        self.cells.push(format!("{cell:?}"));
        let out = self.inner.cell_aggregate(cell);
        if let Some((k, token)) = &self.cancel_after {
            if self.cells.len() as u64 >= *k {
                token.cancel();
            }
        }
        out
    }

    fn full_aggregate(&mut self, bounds: &[f64]) -> EngineResult<AggState> {
        self.inner.full_aggregate(bounds)
    }

    fn empty_state(&self) -> EngineResult<AggState> {
        self.inner.empty_state()
    }

    fn stats(&self) -> ExecStats {
        self.inner.stats()
    }

    fn universe_size(&self) -> usize {
        self.inner.universe_size()
    }
}

// ---------------------------------------------------------------------------
// Budget and cancellation interrupts
// ---------------------------------------------------------------------------

#[test]
fn zero_deadline_interrupts_before_any_work() {
    let cfg = AcquireConfig::default()
        .with_budget(ExecutionBudget::unlimited().with_deadline(Duration::ZERO));
    let out = run(&ge_query(800.0), &cfg);
    assert!(!out.satisfied);
    assert!(out.is_interrupted());
    assert_eq!(
        out.termination.interrupt_reason(),
        Some(&InterruptReason::DeadlineExceeded)
    );
    assert_eq!(out.explored, 0);
    assert!(out.closest.is_none());
}

#[test]
fn explored_budget_truncates_exactly() {
    let full = run(&ge_query(800.0), &AcquireConfig::default());
    assert!(full.satisfied);
    assert!(full.explored > 5, "need a non-trivial search");

    for k in [1, 2, full.explored / 2] {
        let cfg =
            AcquireConfig::default().with_budget(ExecutionBudget::unlimited().with_max_explored(k));
        let out = run(&ge_query(800.0), &cfg);
        assert_eq!(out.explored, k, "budget {k}");
        match &out.termination {
            Termination::Interrupted {
                reason: InterruptReason::ExploredBudget,
                explored,
                elapsed: _,
            } => assert_eq!(*explored, k),
            t => panic!("budget {k}: unexpected termination {t:?}"),
        }
        assert!(out.closest.is_some(), "closest-so-far after {k} queries");
    }
}

#[test]
fn memory_budget_interrupts_with_closest_so_far() {
    let cfg =
        AcquireConfig::default().with_budget(ExecutionBudget::unlimited().with_max_store_bytes(1));
    let out = run(&ge_query(800.0), &cfg);
    assert_eq!(
        out.termination.interrupt_reason(),
        Some(&InterruptReason::MemoryBudget)
    );
    assert!(out.explored >= 1, "the first query fits any budget check");
    assert!(out.closest.is_some());
}

#[test]
fn pre_cancelled_token_interrupts_immediately() {
    let token = CancellationToken::new();
    token.cancel();
    let out = run_with(&ge_query(800.0), &AcquireConfig::default(), &token);
    assert_eq!(
        out.termination.interrupt_reason(),
        Some(&InterruptReason::Cancelled)
    );
    assert_eq!(out.explored, 0);
}

#[test]
fn deadline_trips_under_injected_latency() {
    let mut schedule = FaultSchedule::none(1);
    schedule.latency_rate = 1.0;
    schedule.latency = Duration::from_millis(5);
    let cfg = AcquireConfig::default()
        .with_budget(ExecutionBudget::unlimited().with_deadline(Duration::from_millis(1)));

    let mut exec = Executor::new(catalog());
    let mut query = ge_query(800.0);
    exec.populate_domains(&mut query).unwrap();
    let space = RefinedSpace::new(&query, &cfg).unwrap();
    let caps = space.caps();
    let inner = CachedScoreEvaluator::new(&mut exec, &query, &caps).unwrap();
    let mut eval = FaultInjectingLayer::new(inner, schedule);
    let out = acquire(&mut eval, &query, &cfg).unwrap();
    assert_eq!(
        out.termination.interrupt_reason(),
        Some(&InterruptReason::DeadlineExceeded)
    );
    assert!(out.explored >= 1, "the first call is slow but completes");
}

// ---------------------------------------------------------------------------
// Interrupted == prefix of the uninterrupted run
// ---------------------------------------------------------------------------

/// Drives Expand/Explore by hand for at most `k` grid queries, mirroring
/// the driver's closest-so-far rule, as an independent reference for what a
/// budget-k run must return.
fn manual_prefix_closest(query: &AcqQuery, cfg: &AcquireConfig, k: u64) -> Option<(f64, f64)> {
    let mut exec = Executor::new(catalog());
    let mut query = query.clone();
    exec.populate_domains(&mut query).unwrap();
    let space = RefinedSpace::new(&query, cfg).unwrap();
    let caps = space.caps();
    let mut eval = GridIndexEvaluator::new(&mut exec, &query, &caps, space.step()).unwrap();
    let mut explorer = Explorer::new();
    let mut expander = BfsExpander::new(&space);

    let target = query.constraint.target;
    let err_fn = query.error_fn;
    let mut min_ref_layer = u64::MAX;
    let mut explored = 0u64;
    let mut closest: Option<(f64, f64)> = None; // (aggregate, error)
    while let Some(point) = expander.next_query() {
        let layer = RefinedSpace::l1_layer(&point);
        if layer > min_ref_layer || explored >= k {
            break;
        }
        let state = explorer
            .compute_aggregate(&mut eval, &space, &point, layer)
            .unwrap();
        explored += 1;
        let Some(actual) = state.value() else {
            continue;
        };
        let error = err_fn.error(target, actual);
        if error <= cfg.delta {
            min_ref_layer = min_ref_layer.min(layer);
        }
        if closest.is_none_or(|(_, e)| error < e) {
            closest = Some((actual, error));
        }
    }
    closest
}

/// Interrupt points to probe: dense at the start, then sampled, plus the
/// final stretch (running every k would make these tests quadratic).
fn sample_ks(explored: u64) -> Vec<u64> {
    let mut ks: Vec<u64> = (1..=explored.min(8)).collect();
    ks.extend((8..explored).step_by(17));
    ks.push(explored.saturating_sub(1).max(1));
    ks.push(explored);
    ks.sort_unstable();
    ks.dedup();
    ks
}

#[test]
fn interrupted_closest_matches_manual_prefix() {
    let query = ge_query(300.0);
    let full = run(&query, &AcquireConfig::default());
    assert!(full.explored > 4);
    for k in sample_ks(full.explored) {
        let cfg =
            AcquireConfig::default().with_budget(ExecutionBudget::unlimited().with_max_explored(k));
        let out = run(&query, &cfg);
        let reference = manual_prefix_closest(&query, &cfg, k);
        let got = out.closest.as_ref().map(|c| (c.aggregate, c.error));
        assert_eq!(got, reference, "prefix k={k}");
    }
}

#[test]
fn closest_error_improves_monotonically_with_budget() {
    let query = ge_query(300.0);
    let full = run(&query, &AcquireConfig::default());
    let mut last = f64::INFINITY;
    for k in sample_ks(full.explored) {
        let cfg =
            AcquireConfig::default().with_budget(ExecutionBudget::unlimited().with_max_explored(k));
        let out = run(&query, &cfg);
        let err = out.closest.as_ref().map_or(f64::INFINITY, |c| c.error);
        assert!(
            err <= last + 1e-12,
            "closest error regressed at k={k}: {err} > {last}"
        );
        last = err;
    }
}

#[test]
fn cancellation_mid_run_equals_budget_truncation() {
    let query = ge_query(900.0);
    for k in [2u64, 5, 9] {
        // Cancel from inside the evaluation layer after k cell executions
        // (the token is seen at the next loop iteration, i.e. explored == k).
        let token = CancellationToken::new();
        let mut exec = Executor::new(catalog());
        let mut q = query.clone();
        exec.populate_domains(&mut q).unwrap();
        let cfg = AcquireConfig::default();
        let space = RefinedSpace::new(&q, &cfg).unwrap();
        let caps = space.caps();
        let inner = GridIndexEvaluator::new(&mut exec, &q, &caps, space.step()).unwrap();
        let mut eval = RecordingLayer::cancelling(inner, k, token.clone());
        let cancelled = acquire_with(&mut eval, &q, &cfg, &token).unwrap();

        let budget_cfg =
            AcquireConfig::default().with_budget(ExecutionBudget::unlimited().with_max_explored(k));
        let budgeted = run(&query, &budget_cfg);

        assert_eq!(cancelled.explored, k);
        assert_eq!(budgeted.explored, k);
        assert_eq!(
            cancelled.termination.interrupt_reason(),
            Some(&InterruptReason::Cancelled)
        );
        assert_eq!(
            cancelled.closest.as_ref().map(|c| (c.aggregate, c.error)),
            budgeted.closest.as_ref().map(|c| (c.aggregate, c.error)),
            "k={k}"
        );
        assert_eq!(cancelled.queries.len(), budgeted.queries.len());
    }
}

// ---------------------------------------------------------------------------
// At-most-once execution (§5) under interrupts
// ---------------------------------------------------------------------------

#[test]
fn no_cell_is_executed_twice_with_or_without_interrupts() {
    let query = ge_query(900.0);
    for budget in [Some(1u64), Some(3), Some(7), None] {
        let mut cfg = AcquireConfig::default();
        if let Some(k) = budget {
            cfg.budget = ExecutionBudget::unlimited().with_max_explored(k);
        }
        let mut exec = Executor::new(catalog());
        let mut q = query.clone();
        exec.populate_domains(&mut q).unwrap();
        let space = RefinedSpace::new(&q, &cfg).unwrap();
        let caps = space.caps();
        let inner = GridIndexEvaluator::new(&mut exec, &q, &caps, space.step()).unwrap();
        let mut eval = RecordingLayer::new(inner);
        let _ = acquire(&mut eval, &q, &cfg).unwrap();
        let unique: std::collections::HashSet<&String> = eval.cells.iter().collect();
        assert_eq!(
            unique.len(),
            eval.cells.len(),
            "budget {budget:?}: a cell was executed twice"
        );
    }
}

// ---------------------------------------------------------------------------
// Fault injection: never abort, typed errors, best-effort absorption
// ---------------------------------------------------------------------------

/// Runs `acquire` under a fault schedule; used across many seeds.
fn run_faulted(
    schedule: FaultSchedule,
    policy: FaultPolicy,
) -> Result<acquire_core::AcqOutcome, CoreError> {
    let cfg = AcquireConfig::default().with_fault_policy(policy);
    let mut exec = Executor::new(catalog());
    let mut query = ge_query(900.0);
    exec.populate_domains(&mut query).unwrap();
    let space = RefinedSpace::new(&query, &cfg).unwrap();
    let caps = space.caps();
    let inner = CachedScoreEvaluator::new(&mut exec, &query, &caps).unwrap();
    let mut eval = FaultInjectingLayer::new(inner, schedule);
    acquire(&mut eval, &query, &cfg)
}

#[test]
fn propagate_policy_yields_typed_errors_never_aborts() {
    let mut injected = 0;
    for seed in 0..32 {
        match run_faulted(FaultSchedule::mixed(seed, 0.2, 0.1), FaultPolicy::Propagate) {
            Ok(out) => assert!(out.termination.is_complete()),
            Err(CoreError::Engine(EngineError::Fault(msg))) => {
                assert!(msg.contains("injected error"), "{msg}");
                injected += 1;
            }
            Err(CoreError::EvalPanicked(msg)) => {
                assert!(msg.contains("injected panic"), "{msg}");
                injected += 1;
            }
            Err(other) => panic!("seed {seed}: unexpected error kind {other:?}"),
        }
    }
    assert!(injected > 0, "the schedules must actually fault");
}

#[test]
fn best_effort_policy_always_returns_an_outcome() {
    let mut interrupted = 0;
    for seed in 0..32 {
        let mut schedule = FaultSchedule::mixed(seed, 0.2, 0.1);
        schedule.skip_layers = 2; // let the search make some progress first
        let out = run_faulted(schedule, FaultPolicy::BestEffort)
            .expect("best-effort absorbs all mid-search faults");
        match &out.termination {
            Termination::Interrupted {
                reason: InterruptReason::Fault(msg),
                ..
            } => {
                assert!(msg.contains("injected"), "{msg}");
                assert!(out.explored >= 3, "three fault-free calls happened");
                assert!(
                    out.closest.is_some() || out.satisfied,
                    "seed {seed}: an interrupted outcome still carries the \
                     closest-so-far answer"
                );
                interrupted += 1;
            }
            t => assert!(t.is_complete(), "seed {seed}: {t:?}"),
        }
    }
    assert!(interrupted > 0, "the schedules must actually fault");
}

#[test]
fn injected_panic_becomes_eval_panicked() {
    let err = run_faulted(FaultSchedule::panics(7, 1.0), FaultPolicy::Propagate).unwrap_err();
    match err {
        CoreError::EvalPanicked(msg) => {
            assert!(msg.contains("injected panic"), "{msg}");
            assert!(
                msg.contains("seed 7"),
                "fault messages carry the seed: {msg}"
            );
        }
        other => panic!("expected EvalPanicked, got {other:?}"),
    }
}

#[test]
fn fault_free_schedule_changes_nothing() {
    let baseline = run(&ge_query(900.0), &AcquireConfig::default());
    let via_harness = run_faulted(FaultSchedule::none(0), FaultPolicy::Propagate).unwrap();
    assert_eq!(baseline.satisfied, via_harness.satisfied);
    assert_eq!(
        baseline.best().map(|r| (r.qscore, r.aggregate)),
        via_harness.best().map(|r| (r.qscore, r.aggregate))
    );
    assert_eq!(baseline.termination, via_harness.termination);
}

// ---------------------------------------------------------------------------
// Sessions
// ---------------------------------------------------------------------------

#[test]
fn session_cancellation_is_sticky_until_reset() {
    let mut exec = Executor::new(catalog());
    let query = ge_query(800.0);
    let mut session = Session::new(&mut exec, &query, &AcquireConfig::default()).unwrap();

    let token = session.cancellation_token();
    token.cancel();
    let out = session.run(800.0).unwrap();
    assert_eq!(
        out.termination.interrupt_reason(),
        Some(&InterruptReason::Cancelled)
    );

    // Still cancelled: the token is sticky.
    let again = session.run(800.0).unwrap();
    assert!(again.is_interrupted());

    // A reset issues a fresh token; the next run completes.
    let fresh = session.reset_cancellation();
    assert!(!fresh.is_cancelled());
    let ok = session.run(800.0).unwrap();
    assert!(ok.satisfied);
    assert_eq!(ok.termination, Termination::Satisfied);
    // The old clone no longer affects the session.
    token.cancel();
    assert!(!fresh.is_cancelled());
}

#[test]
fn session_budget_applies_per_run() {
    let mut exec = Executor::new(catalog());
    let query = ge_query(800.0);
    let mut session = Session::new(&mut exec, &query, &AcquireConfig::default()).unwrap();
    session.set_budget(ExecutionBudget::unlimited().with_max_explored(1));
    let capped = session.run(800.0).unwrap();
    assert_eq!(capped.explored, 1);
    assert!(capped.is_interrupted());
    assert!(capped.best_or_closest().is_some());

    session.set_budget(ExecutionBudget::unlimited());
    let full = session.run(800.0).unwrap();
    assert!(full.satisfied);
    assert!(full.termination.is_complete());
}

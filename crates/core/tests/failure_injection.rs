//! Failure-injection tests: engine-level failures surface as typed errors
//! through the driver instead of panics or silent wrong answers.

use acq_engine::{Catalog, DataType, Executor, Field, TableBuilder, Value};
use acq_query::{
    AcqQuery, AggConstraint, AggregateSpec, CmpOp, ColRef, Interval, Predicate, RefineSide,
};
use acquire_core::{run_acquire, AcquireConfig, CoreError, EvalLayerKind};

fn table(name: &str, rows: usize) -> acq_engine::Table {
    let mut b = TableBuilder::new(
        name,
        vec![
            Field::new("k", DataType::Int),
            Field::new("v", DataType::Float),
        ],
    )
    .unwrap();
    for i in 0..rows {
        b.push_row(vec![Value::Int(i as i64), Value::Float(i as f64)]);
    }
    b.finish().unwrap()
}

fn base_query() -> AcqQuery {
    AcqQuery::builder()
        .table("a")
        .predicate(Predicate::select(
            ColRef::new("a", "v"),
            Interval::new(0.0, 10.0),
            RefineSide::Upper,
        ))
        .constraint(AggConstraint::new(AggregateSpec::count(), CmpOp::Eq, 5.0))
        .build()
        .unwrap()
}

#[test]
fn unknown_table_surfaces() {
    let mut exec = Executor::new(Catalog::new());
    let err = run_acquire(
        &mut exec,
        &base_query(),
        &AcquireConfig::default(),
        EvalLayerKind::Scan,
    )
    .unwrap_err();
    assert!(matches!(err, CoreError::Engine(_)), "{err}");
    assert!(err.to_string().contains("unknown table"), "{err}");
}

#[test]
fn unknown_column_surfaces() {
    let mut cat = Catalog::new();
    cat.register(table("a", 10)).unwrap();
    let mut q = base_query();
    q.predicates[0] = Predicate::select(
        ColRef::new("a", "nope"),
        Interval::new(0.0, 1.0),
        RefineSide::Upper,
    );
    let mut exec = Executor::new(cat);
    let err = run_acquire(
        &mut exec,
        &q,
        &AcquireConfig::default(),
        EvalLayerKind::GridIndex,
    )
    .unwrap_err();
    assert!(
        err.to_string().contains("unknown or unresolved column"),
        "{err}"
    );
}

#[test]
fn cross_product_limit_surfaces() {
    let mut cat = Catalog::new();
    cat.register(table("a", 2_000)).unwrap();
    cat.register(table("b", 2_000)).unwrap();
    // Two tables, no join predicate at all: a 4M-row cross product.
    let q = AcqQuery::builder()
        .table("a")
        .table("b")
        .predicate(Predicate::select(
            ColRef::new("a", "v"),
            Interval::new(0.0, 10.0),
            RefineSide::Upper,
        ))
        .constraint(AggConstraint::new(AggregateSpec::count(), CmpOp::Eq, 5.0))
        .build()
        .unwrap();
    let mut exec = Executor::new(cat).with_cross_product_limit(100_000);
    let err = run_acquire(
        &mut exec,
        &q,
        &AcquireConfig::default(),
        EvalLayerKind::CachedScore,
    )
    .unwrap_err();
    assert!(err.to_string().contains("cross product"), "{err}");
}

#[test]
fn unregistered_uda_surfaces() {
    let mut cat = Catalog::new();
    cat.register(table("a", 10)).unwrap();
    let mut q = base_query();
    q.constraint = AggConstraint::new(
        AggregateSpec::uda("MYSTERY", ColRef::new("a", "v")),
        CmpOp::Ge,
        1.0,
    );
    let mut exec = Executor::new(cat);
    let err = run_acquire(
        &mut exec,
        &q,
        &AcquireConfig::default(),
        EvalLayerKind::Scan,
    )
    .unwrap_err();
    assert!(err.to_string().contains("not registered"), "{err}");
}

#[test]
fn invalid_norm_weights_surface() {
    let mut cat = Catalog::new();
    cat.register(table("a", 10)).unwrap();
    let cfg = AcquireConfig::default().with_norm(acq_query::Norm::WeightedLp {
        p: 1.0,
        weights: vec![1.0, 2.0],
    });
    let mut exec = Executor::new(cat);
    let err = run_acquire(&mut exec, &base_query(), &cfg, EvalLayerKind::Scan).unwrap_err();
    assert!(matches!(err, CoreError::Query(_)), "{err}");
}

#[test]
fn empty_table_returns_closest_not_panic() {
    let mut cat = Catalog::new();
    cat.register(table("a", 0)).unwrap();
    let mut exec = Executor::new(cat);
    let out = run_acquire(
        &mut exec,
        &base_query(),
        &AcquireConfig::default(),
        EvalLayerKind::Scan,
    )
    .unwrap();
    assert!(!out.satisfied);
    assert_eq!(out.closest.unwrap().aggregate, 0.0);
}

//! Exhaustive oracle test: on a small grid, the driver's answer set must be
//! exactly the satisfying grid queries of the minimal refinement layer —
//! nothing missing, nothing extra, nothing from later layers.

use acq_engine::{Catalog, DataType, Executor, Field, TableBuilder, Value};
use acq_query::{
    AcqQuery, AggConstraint, AggregateSpec, CmpOp, ColRef, Interval, Predicate, RefineSide,
};
use acquire_core::{run_acquire, AcquireConfig, EvalLayerKind};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn setup(seed: u64) -> (Catalog, AcqQuery) {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut b = TableBuilder::new(
        "t",
        vec![
            Field::new("x", DataType::Float),
            Field::new("y", DataType::Float),
        ],
    )
    .unwrap();
    for _ in 0..800 {
        b.push_row(vec![
            Value::Float(rng.gen_range(0.0..60.0)),
            Value::Float(rng.gen_range(0.0..60.0)),
        ]);
    }
    let mut cat = Catalog::new();
    cat.register(b.finish().unwrap()).unwrap();
    let q = AcqQuery::builder()
        .table("t")
        .predicate(
            Predicate::select(
                ColRef::new("t", "x"),
                Interval::new(0.0, 20.0),
                RefineSide::Upper,
            )
            .with_domain(Interval::new(0.0, 60.0)),
        )
        .predicate(
            Predicate::select(
                ColRef::new("t", "y"),
                Interval::new(0.0, 20.0),
                RefineSide::Upper,
            )
            .with_domain(Interval::new(0.0, 60.0)),
        )
        .constraint(AggConstraint::new(AggregateSpec::count(), CmpOp::Eq, 1.0))
        .build()
        .unwrap();
    (cat, q)
}

/// Brute-force oracle: evaluate every grid point with independent full
/// executions and derive the expected answer set.
fn oracle(catalog: &Catalog, query: &AcqQuery, cfg: &AcquireConfig) -> Vec<(Vec<u32>, f64)> {
    let d = query.dims();
    let step = cfg.gamma / d as f64;
    let mut exec = Executor::new(catalog.clone());
    let rq = exec.resolve(query).unwrap();
    let caps: Vec<f64> = query
        .flexible()
        .iter()
        .map(|&i| query.predicates[i].max_useful_score().unwrap())
        .collect();
    let rel = exec.base_relation(&rq, &caps).unwrap();
    let limits: Vec<u32> = caps.iter().map(|c| (c / step).ceil() as u32).collect();

    let mut satisfying: Vec<(u64, Vec<u32>, f64)> = Vec::new();
    for u0 in 0..=limits[0] {
        for u1 in 0..=limits[1] {
            let bounds = vec![f64::from(u0) * step, f64::from(u1) * step];
            let actual = exec
                .full_aggregate(&rq, &rel, &bounds)
                .unwrap()
                .value()
                .unwrap();
            let err = query.error_fn.error(query.constraint.target, actual);
            if err <= cfg.delta {
                satisfying.push((u64::from(u0) + u64::from(u1), vec![u0, u1], actual));
            }
        }
    }
    let Some(min_layer) = satisfying.iter().map(|(l, _, _)| *l).min() else {
        return Vec::new();
    };
    satisfying
        .into_iter()
        .filter(|(l, _, _)| *l == min_layer)
        .map(|(_, p, a)| (p, a))
        .collect()
}

#[test]
fn answer_set_equals_brute_force_oracle() {
    let cfg = AcquireConfig::default();
    for seed in [3u64, 17, 99] {
        let (catalog, mut query) = setup(seed);
        // Aim for ~3x the original count: reachable and multi-layer.
        let mut exec = Executor::new(catalog.clone());
        let rq = exec.resolve(&query).unwrap();
        let rel = exec.base_relation(&rq, &[0.0, 0.0]).unwrap();
        let actual = exec
            .full_aggregate(&rq, &rel, &[0.0, 0.0])
            .unwrap()
            .value()
            .unwrap();
        query.constraint.target = (actual * 3.0).max(8.0);

        let expected = oracle(&catalog, &query, &cfg);
        let mut exec = Executor::new(catalog.clone());
        let out = run_acquire(&mut exec, &query, &cfg, EvalLayerKind::GridIndex).unwrap();

        // Grid answers only (repartitioned fractional hits have empty
        // points and only appear when no grid answer exists in the layer).
        let mut got: Vec<(Vec<u32>, u64)> = out
            .queries
            .iter()
            .filter(|r| !r.point.is_empty())
            .map(|r| (r.point.clone(), r.aggregate as u64))
            .collect();
        got.sort();
        let mut want: Vec<(Vec<u32>, u64)> =
            expected.into_iter().map(|(p, a)| (p, a as u64)).collect();
        want.sort();
        assert_eq!(got, want, "seed {seed}: answer set must match the oracle");
        assert_eq!(out.satisfied, !got.is_empty());
    }
}

//! Exact-Lp-order driver tests: with `exact_lp_order` the driver's answer
//! is optimal under the actual norm, never worse than Algorithm 1's
//! L1-layered approximation.

use acq_engine::{Catalog, DataType, Executor, Field, TableBuilder, Value};
use acq_query::{
    AcqQuery, AggConstraint, AggregateSpec, CmpOp, ColRef, Interval, Norm, Predicate, RefineSide,
};
use acquire_core::{run_acquire, AcquireConfig, EvalLayerKind};

/// Data engineered so the L2-cheapest refinement is diagonal while the
/// L1-layer traversal meets the target on an axis first: a dense block of
/// tuples sits just past both bounds on the diagonal.
fn catalog() -> Catalog {
    let mut b = TableBuilder::new(
        "t",
        vec![
            Field::new("x", DataType::Float),
            Field::new("y", DataType::Float),
        ],
    )
    .unwrap();
    // 200 base tuples inside [0,10]x[0,10].
    for i in 0..200 {
        b.push_row(vec![
            Value::Float(f64::from(i % 14) * 0.7),
            Value::Float(f64::from(i / 14) * 0.7),
        ]);
    }
    // 300 tuples in the diagonal pocket (11..12, 11..12): reachable with a
    // small *balanced* refinement.
    for i in 0..300 {
        b.push_row(vec![
            Value::Float(11.0 + f64::from(i % 10) * 0.1),
            Value::Float(11.0 + f64::from(i / 10) * 0.03),
        ]);
    }
    // 300 tuples far along x only (x in 14..15, y tiny): reachable with a
    // large single-axis refinement.
    for i in 0..300 {
        b.push_row(vec![
            Value::Float(14.0 + f64::from(i % 10) * 0.1),
            Value::Float(f64::from(i / 10) * 0.3),
        ]);
    }
    let mut cat = Catalog::new();
    cat.register(b.finish().unwrap()).unwrap();
    cat
}

fn query(target: f64) -> AcqQuery {
    AcqQuery::builder()
        .table("t")
        .predicate(
            Predicate::select(
                ColRef::new("t", "x"),
                Interval::new(0.0, 10.0),
                RefineSide::Upper,
            )
            .with_domain(Interval::new(0.0, 15.0)),
        )
        .predicate(
            Predicate::select(
                ColRef::new("t", "y"),
                Interval::new(0.0, 10.0),
                RefineSide::Upper,
            )
            .with_domain(Interval::new(0.0, 15.0)),
        )
        .constraint(AggConstraint::new(
            AggregateSpec::count(),
            CmpOp::Ge,
            target,
        ))
        .build()
        .unwrap()
}

#[test]
fn exact_order_never_worse_under_l2() {
    let cfg_bfs = AcquireConfig::default().with_norm(Norm::Lp(2.0));
    let cfg_exact = AcquireConfig {
        exact_lp_order: true,
        ..AcquireConfig::default().with_norm(Norm::Lp(2.0))
    };

    let mut e1 = Executor::new(catalog());
    let bfs = run_acquire(&mut e1, &query(450.0), &cfg_bfs, EvalLayerKind::GridIndex).unwrap();
    let mut e2 = Executor::new(catalog());
    let exact = run_acquire(&mut e2, &query(450.0), &cfg_exact, EvalLayerKind::GridIndex).unwrap();

    assert!(bfs.satisfied && exact.satisfied);
    let (bq, eq) = (bfs.best().unwrap().qscore, exact.best().unwrap().qscore);
    assert!(
        eq <= bq + 1e-9,
        "exact order must not lose under its own norm: exact {eq} vs bfs {bq}"
    );
}

#[test]
fn exact_order_matches_bfs_under_l1() {
    // Under L1 the BFS layers ARE the qscore layers: both modes must agree.
    let cfg_bfs = AcquireConfig::default();
    let cfg_exact = AcquireConfig {
        exact_lp_order: true,
        ..AcquireConfig::default()
    };
    let mut e1 = Executor::new(catalog());
    let a = run_acquire(&mut e1, &query(450.0), &cfg_bfs, EvalLayerKind::CachedScore).unwrap();
    let mut e2 = Executor::new(catalog());
    let b = run_acquire(
        &mut e2,
        &query(450.0),
        &cfg_exact,
        EvalLayerKind::CachedScore,
    )
    .unwrap();
    assert_eq!(a.satisfied, b.satisfied);
    assert!((a.best().unwrap().qscore - b.best().unwrap().qscore).abs() < 1e-9);
}

#[test]
fn exact_order_results_verify() {
    let cfg = AcquireConfig {
        exact_lp_order: true,
        ..AcquireConfig::default().with_norm(Norm::Lp(3.0))
    };
    let cat = catalog();
    let mut exec = Executor::new(cat.clone());
    let out = run_acquire(&mut exec, &query(450.0), &cfg, EvalLayerKind::GridIndex).unwrap();
    assert!(out.satisfied);
    let best = out.best().unwrap();
    // Independent re-execution.
    let mut e2 = Executor::new(cat);
    let mut q = query(450.0);
    e2.populate_domains(&mut q).unwrap();
    let rq = e2.resolve(&q).unwrap();
    let rel = e2.base_relation(&rq, &best.pscores).unwrap();
    let n = e2
        .full_aggregate(&rq, &rel, &best.pscores)
        .unwrap()
        .value()
        .unwrap();
    assert_eq!(n, best.aggregate);
}

//! §7.1 extension tests: refinement preferences via weighted norms and
//! per-predicate refinement caps, plus cross-norm driver behaviour.

use acq_engine::{Catalog, DataType, Executor, Field, TableBuilder, Value};
use acq_query::{
    AcqQuery, AggConstraint, AggregateSpec, CmpOp, ColRef, Interval, Norm, Predicate, RefineSide,
};
use acquire_core::{
    acquire, run_acquire, AcquireConfig, CachedScoreEvaluator, EvalLayerKind, RefinedSpace,
};

/// Two symmetric dimensions: both `x` and `y` are uniform on [0, 100] and
/// both predicates start at [0, 20], so refining either is equally
/// effective. Weights then decide which one moves.
fn symmetric_catalog() -> Catalog {
    let mut b = TableBuilder::new(
        "t",
        vec![
            Field::new("x", DataType::Float),
            Field::new("y", DataType::Float),
        ],
    )
    .unwrap();
    for i in 0..100 {
        for j in 0..100 {
            b.push_row(vec![Value::Float(f64::from(i)), Value::Float(f64::from(j))]);
        }
    }
    let mut cat = Catalog::new();
    cat.register(b.finish().unwrap()).unwrap();
    cat
}

fn symmetric_query(target: f64) -> AcqQuery {
    AcqQuery::builder()
        .table("t")
        .predicate(Predicate::select(
            ColRef::new("t", "x"),
            Interval::new(0.0, 20.0),
            RefineSide::Upper,
        ))
        .predicate(Predicate::select(
            ColRef::new("t", "y"),
            Interval::new(0.0, 20.0),
            RefineSide::Upper,
        ))
        .constraint(AggConstraint::new(
            AggregateSpec::count(),
            CmpOp::Ge,
            target,
        ))
        .build()
        .unwrap()
}

/// A weight steering refinement away from `x` makes the answer refine `y`
/// more than `x` — the §7.1 "preferences in refinement" behaviour.
#[test]
fn weighted_norm_steers_refinement() {
    // Original: 21x21 = 441 tuples; target 1300 needs roughly tripling.
    let cfg_weighted = AcquireConfig::default().with_norm(Norm::WeightedLp {
        p: 1.0,
        weights: vec![5.0, 1.0], // refining x is 5x as expensive
    });
    let mut exec = Executor::new(symmetric_catalog());
    let out = run_acquire(
        &mut exec,
        &symmetric_query(1300.0),
        &cfg_weighted,
        EvalLayerKind::GridIndex,
    )
    .unwrap();
    assert!(out.satisfied);
    let best = out.best().unwrap();
    assert!(
        best.pscores[1] > best.pscores[0],
        "y should absorb the refinement: {:?}",
        best.pscores
    );
}

/// With the plain L1 norm the same workload spreads refinement between the
/// symmetric dimensions (no dimension is special).
#[test]
fn unweighted_norm_is_symmetric_in_cost() {
    let mut exec = Executor::new(symmetric_catalog());
    let out = run_acquire(
        &mut exec,
        &symmetric_query(1300.0),
        &AcquireConfig::default(),
        EvalLayerKind::GridIndex,
    )
    .unwrap();
    assert!(out.satisfied);
    // The answer layer contains mirrored alternatives (a, b) and (b, a).
    let pairs: Vec<(u32, u32)> = out
        .queries
        .iter()
        .filter(|r| r.point.len() == 2)
        .map(|r| (r.point[0], r.point[1]))
        .collect();
    let mirrored = pairs
        .iter()
        .any(|&(a, b)| pairs.contains(&(b, a)) && a != b);
    assert!(
        mirrored || pairs.iter().any(|&(a, b)| a == b),
        "expected symmetric alternatives, got {pairs:?}"
    );
}

/// §7.1 "maximum refinement limits on predicates": a hard cap freezes the
/// dimension once reached, and the search routes around it.
#[test]
fn max_refinement_cap_is_respected() {
    let mut q = symmetric_query(1300.0);
    q.predicates[0] = q.predicates[0].clone().with_max_refinement(25.0);
    let mut exec = Executor::new(symmetric_catalog());
    let out = run_acquire(
        &mut exec,
        &q,
        &AcquireConfig::default(),
        EvalLayerKind::GridIndex,
    )
    .unwrap();
    assert!(out.satisfied);
    for r in &out.queries {
        assert!(r.pscores[0] <= 25.0 + 1e-9, "cap violated: {:?}", r.pscores);
    }
}

/// The L∞ norm minimises the worst per-predicate refinement: on the
/// symmetric workload the best L∞ answer is (nearly) balanced.
#[test]
fn linf_prefers_balanced_refinement() {
    let cfg = AcquireConfig::default().with_norm(Norm::LInf);
    let mut exec = Executor::new(symmetric_catalog());
    let out = run_acquire(
        &mut exec,
        &symmetric_query(1300.0),
        &cfg,
        EvalLayerKind::GridIndex,
    )
    .unwrap();
    assert!(out.satisfied);
    let best = out.best().unwrap();
    let spread = (best.pscores[0] - best.pscores[1]).abs();
    assert!(
        spread <= cfg.gamma + 1e-9,
        "L∞ answers should be balanced, got {:?}",
        best.pscores
    );
}

/// The caller-supplied-evaluator entry point (`acquire`) matches
/// `run_acquire` given equivalent construction.
#[test]
fn direct_evaluator_entry_point_matches() {
    let query = symmetric_query(1300.0);
    let cfg = AcquireConfig::default();

    let mut exec1 = Executor::new(symmetric_catalog());
    let via_helper = run_acquire(&mut exec1, &query, &cfg, EvalLayerKind::CachedScore).unwrap();

    let mut exec2 = Executor::new(symmetric_catalog());
    let mut q2 = query.clone();
    exec2.populate_domains(&mut q2).unwrap();
    let space = RefinedSpace::new(&q2, &cfg).unwrap();
    let caps = space.caps();
    let mut eval = CachedScoreEvaluator::new(&mut exec2, &q2, &caps).unwrap();
    let direct = acquire(&mut eval, &q2, &cfg).unwrap();

    assert_eq!(via_helper.satisfied, direct.satisfied);
    assert_eq!(via_helper.explored, direct.explored);
    assert_eq!(
        via_helper.best().map(|r| r.qscore),
        direct.best().map(|r| r.qscore)
    );
}

//! Contraction (§7.2) under non-default norms and aggregates.

use acq_engine::{Catalog, DataType, Executor, Field, TableBuilder, Value};
use acq_query::{
    AcqQuery, AggConstraint, AggregateSpec, CmpOp, ColRef, Interval, Norm, Predicate, RefineSide,
};
use acquire_core::{run_contraction, AcquireConfig, EvalLayerKind};

fn catalog() -> Catalog {
    let mut b = TableBuilder::new(
        "t",
        vec![
            Field::new("x", DataType::Float),
            Field::new("y", DataType::Float),
        ],
    )
    .unwrap();
    for i in 0..50 {
        for j in 0..50 {
            b.push_row(vec![
                Value::Float(f64::from(i) * 2.0),
                Value::Float(f64::from(j) * 2.0),
            ]);
        }
    }
    let mut cat = Catalog::new();
    cat.register(b.finish().unwrap()).unwrap();
    cat
}

fn overshooting(op: CmpOp, target: f64) -> AcqQuery {
    AcqQuery::builder()
        .table("t")
        .predicate(Predicate::select(
            ColRef::new("t", "x"),
            Interval::new(0.0, 80.0),
            RefineSide::Upper,
        ))
        .predicate(Predicate::select(
            ColRef::new("t", "y"),
            Interval::new(0.0, 80.0),
            RefineSide::Upper,
        ))
        .constraint(AggConstraint::new(AggregateSpec::count(), op, target))
        .build()
        .unwrap()
}

#[test]
fn contraction_under_linf_balances_both_dimensions() {
    // 41x41 = 1681 tuples; budget 900 needs ~sqrt contraction on each axis
    // under L∞ (minimising the worst per-predicate change).
    let cfg = AcquireConfig::default().with_norm(Norm::LInf);
    let mut exec = Executor::new(catalog());
    let out = run_contraction(
        &mut exec,
        &overshooting(CmpOp::Le, 900.0),
        &cfg,
        EvalLayerKind::GridIndex,
    )
    .unwrap();
    assert!(out.satisfied);
    let best = out.best().unwrap();
    assert!(best.aggregate <= 900.0 * 1.05);
    let spread = (best.pscores[0] - best.pscores[1]).abs();
    assert!(
        spread <= cfg.gamma + 1e-9,
        "L∞ contraction should balance: {:?}",
        best.pscores
    );
}

#[test]
fn weighted_contraction_protects_the_heavy_dimension() {
    // x is 5x as expensive to change: the contraction should fall on y.
    let cfg = AcquireConfig::default().with_norm(Norm::WeightedLp {
        p: 1.0,
        weights: vec![5.0, 1.0],
    });
    let mut exec = Executor::new(catalog());
    let out = run_contraction(
        &mut exec,
        &overshooting(CmpOp::Le, 900.0),
        &cfg,
        EvalLayerKind::GridIndex,
    )
    .unwrap();
    assert!(out.satisfied);
    let best = out.best().unwrap();
    assert!(
        best.pscores[1] > best.pscores[0],
        "y should absorb the contraction: {:?}",
        best.pscores
    );
}

#[test]
fn sum_contraction_without_early_stop() {
    // SUM aggregates disable the monotone early stop; the search must still
    // terminate (grid exhaustion) and satisfy the budget.
    let mut q = overshooting(CmpOp::Le, 30_000.0);
    q.constraint = AggConstraint::new(
        AggregateSpec::sum(ColRef::new("t", "x")),
        CmpOp::Le,
        30_000.0,
    );
    let mut exec = Executor::new(catalog());
    let out = run_contraction(
        &mut exec,
        &q,
        &AcquireConfig::default(),
        EvalLayerKind::CachedScore,
    )
    .unwrap();
    assert!(out.satisfied);
    let best = out.best().unwrap();
    assert!(
        best.aggregate <= 30_000.0 * 1.05,
        "aggregate {}",
        best.aggregate
    );
    // Minimal change: among all satisfying queries the best keeps the most.
    for r in &out.queries {
        assert!(best.qscore <= r.qscore + 1e-9);
    }
}

#[test]
fn lt_constraint_is_strict_about_direction() {
    let mut exec = Executor::new(catalog());
    let out = run_contraction(
        &mut exec,
        &overshooting(CmpOp::Lt, 500.0),
        &AcquireConfig::default(),
        EvalLayerKind::GridIndex,
    )
    .unwrap();
    assert!(out.satisfied);
    // HingeRelativeAbove: anything at or below the budget is error 0.
    assert!(out.best().unwrap().aggregate <= 500.0 * 1.05);
}

//! Property tests of the anytime contracts over random data, targets,
//! interrupt points, and fault schedules.

use proptest::prelude::*;

use acq_engine::{Catalog, DataType, EngineError, Executor, Field, TableBuilder, Value};
use acq_query::{
    AcqQuery, AggConstraint, AggErrorFn, AggregateSpec, CmpOp, ColRef, Interval, Predicate,
    RefineSide,
};
use acquire_core::expand::{BfsExpander, Expander};
use acquire_core::explore::Explorer;
use acquire_core::{
    acquire, AcquireConfig, CachedScoreEvaluator, CoreError, ExecutionBudget, FaultInjectingLayer,
    FaultPolicy, FaultSchedule, GridIndexEvaluator, InterruptReason, RefinedSpace,
};

fn build_catalog(rows: &[Vec<f64>]) -> Catalog {
    let fields = vec![
        Field::new("x0", DataType::Float),
        Field::new("x1", DataType::Float),
    ];
    let mut b = TableBuilder::new("t", fields).unwrap();
    for row in rows {
        b.push_row(vec![Value::Float(row[0]), Value::Float(row[1])]);
    }
    let mut cat = Catalog::new();
    cat.register(b.finish().unwrap()).unwrap();
    cat
}

/// `COUNT(*) >= target` with hinge error: overshoot satisfies, so the grid
/// search never repartitions and a manual Expand/Explore drive reproduces
/// the driver exactly.
fn ge_query(bound0: f64, bound1: f64, target: f64) -> AcqQuery {
    let mut b = AcqQuery::builder().table("t");
    for (i, bound) in [bound0, bound1].into_iter().enumerate() {
        b = b.predicate(
            Predicate::select(
                ColRef::new("t", format!("x{i}")),
                Interval::new(0.0, bound.max(1.0)),
                RefineSide::Upper,
            )
            .with_domain(Interval::new(0.0, 100.0)),
        );
    }
    b.constraint(AggConstraint::new(
        AggregateSpec::count(),
        CmpOp::Ge,
        target,
    ))
    .error_fn(AggErrorFn::HingeRelative)
    .build()
    .unwrap()
}

fn run(catalog: &Catalog, query: &AcqQuery, cfg: &AcquireConfig) -> acquire_core::AcqOutcome {
    let mut exec = Executor::new(catalog.clone());
    let mut query = query.clone();
    exec.populate_domains(&mut query).unwrap();
    let space = RefinedSpace::new(&query, cfg).unwrap();
    let caps = space.caps();
    let mut eval = GridIndexEvaluator::new(&mut exec, &query, &caps, space.step()).unwrap();
    acquire(&mut eval, &query, cfg).unwrap()
}

/// Independent reference: drive Expand/Explore by hand for `k` grid
/// queries, mirroring the driver's closest-so-far rule.
fn manual_prefix_closest(
    catalog: &Catalog,
    query: &AcqQuery,
    cfg: &AcquireConfig,
    k: u64,
) -> Option<(f64, f64)> {
    let mut exec = Executor::new(catalog.clone());
    let mut query = query.clone();
    exec.populate_domains(&mut query).unwrap();
    let space = RefinedSpace::new(&query, cfg).unwrap();
    let caps = space.caps();
    let mut eval = GridIndexEvaluator::new(&mut exec, &query, &caps, space.step()).unwrap();
    let mut explorer = Explorer::new();
    let mut expander = BfsExpander::new(&space);

    let target = query.constraint.target;
    let err_fn = query.error_fn;
    let mut min_ref_layer = u64::MAX;
    let mut explored = 0u64;
    let mut closest: Option<(f64, f64)> = None;
    while let Some(point) = expander.next_query() {
        let layer = RefinedSpace::l1_layer(&point);
        if layer > min_ref_layer || explored >= k {
            break;
        }
        let state = explorer
            .compute_aggregate(&mut eval, &space, &point, layer)
            .unwrap();
        explored += 1;
        let Some(actual) = state.value() else {
            continue;
        };
        let error = err_fn.error(target, actual);
        if error <= cfg.delta {
            min_ref_layer = min_ref_layer.min(layer);
        }
        if closest.is_none_or(|(_, e)| error < e) {
            closest = Some((actual, error));
        }
    }
    closest
}

fn rows_strategy() -> impl Strategy<Value = Vec<Vec<f64>>> {
    prop::collection::vec(prop::collection::vec(0.0f64..100.0, 2), 30..120)
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 16, ..ProptestConfig::default() })]

    /// For random data, targets, and interrupt points: a budget-k run is
    /// deterministic and its closest-so-far equals the uninterrupted run
    /// truncated after k explored queries (computed by an independent
    /// manual drive of Expand/Explore).
    #[test]
    fn interrupted_equals_truncated_prefix(
        rows in rows_strategy(),
        ratio in 2.0f64..8.0,
        pick in 0u64..1000,
    ) {
        let catalog = build_catalog(&rows);
        let query = ge_query(20.0, 20.0, rows.len() as f64 / ratio);
        let cfg = AcquireConfig::default();
        let full = run(&catalog, &query, &cfg);
        prop_assume!(full.explored >= 2);
        let k = 1 + pick % full.explored;

        let budget_cfg = cfg
            .clone()
            .with_budget(ExecutionBudget::unlimited().with_max_explored(k));
        let a = run(&catalog, &query, &budget_cfg);
        let b = run(&catalog, &query, &budget_cfg);

        // Deterministic across repeats.
        prop_assert_eq!(a.explored, b.explored);
        prop_assert_eq!(
            a.closest.as_ref().map(|c| (c.aggregate, c.error)),
            b.closest.as_ref().map(|c| (c.aggregate, c.error))
        );

        // Equal to the independently computed prefix.
        let reference = manual_prefix_closest(&catalog, &query, &budget_cfg, k);
        prop_assert_eq!(
            a.closest.as_ref().map(|c| (c.aggregate, c.error)),
            reference,
            "k={}", k
        );

        // Interrupted outcomes say so, completed ones do not.
        if a.explored >= k && !a.termination.is_complete() {
            prop_assert_eq!(
                a.termination.interrupt_reason(),
                Some(&InterruptReason::ExploredBudget)
            );
        }
    }

    /// Under any seeded fault schedule: Propagate yields `Ok` or a typed
    /// error (never an abort — reaching the assertion at all proves no
    /// abort happened), and BestEffort always yields an outcome.
    #[test]
    fn faults_never_abort(
        rows in rows_strategy(),
        seed in any::<u64>(),
        error_rate in 0.0f64..0.5,
        panic_rate in 0.0f64..0.3,
    ) {
        let catalog = build_catalog(&rows);
        let query = ge_query(20.0, 20.0, rows.len() as f64 / 3.0);
        let schedule = FaultSchedule::mixed(seed, error_rate, panic_rate);

        for policy in [FaultPolicy::Propagate, FaultPolicy::BestEffort] {
            let cfg = AcquireConfig::default().with_fault_policy(policy);
            let mut exec = Executor::new(catalog.clone());
            let mut q = query.clone();
            exec.populate_domains(&mut q).unwrap();
            let space = RefinedSpace::new(&q, &cfg).unwrap();
            let caps = space.caps();
            let inner = CachedScoreEvaluator::new(&mut exec, &q, &caps).unwrap();
            let mut eval = FaultInjectingLayer::new(inner, schedule.clone());
            match acquire(&mut eval, &q, &cfg) {
                Ok(out) => {
                    if policy == FaultPolicy::Propagate {
                        prop_assert!(out.termination.is_complete());
                    }
                }
                Err(e) => {
                    prop_assert_eq!(policy, FaultPolicy::Propagate,
                        "best-effort must absorb faults");
                    prop_assert!(matches!(
                        e,
                        CoreError::Engine(EngineError::Fault(_)) | CoreError::EvalPanicked(_)
                    ), "typed fault error expected");
                }
            }
        }
    }
}

//! # acq-lint — project-invariant static analysis for the ACQUIRE workspace
//!
//! ACQUIRE's central guarantees — every data region executed **at most
//! once** (Eq. 17 / Algorithm 3) and bit-identical outcomes for any thread
//! count — were established by hand-maintained conventions. This crate
//! turns those conventions into enforced invariants: a zero-dependency
//! analyzer that scans every workspace `.rs` file with a hand-rolled Rust
//! token lexer (the same approach as `acq-sql`'s SQL lexer), classifies
//! each file's compilation context, and checks nine rule families — six
//! per-file, three over the cross-file call graph built by [`index`] and
//! [`graph`]:
//!
//! | rule | invariant it protects |
//! |---|---|
//! | `panic-hygiene` | anytime semantics: library code degrades, never aborts |
//! | `determinism` | bit-identical outcomes: no unordered iteration, clocks or sleeps on the emission path |
//! | `atomics-audit` | at-most-once claims: every `Ordering::Relaxed` carries its soundness argument |
//! | `obs-discipline` | metric determinism: lazy trace labels, serial-loop-only deterministic commits |
//! | `error-hygiene` | API stability: public error enums stay `#[non_exhaustive]` |
//! | `forbid-unsafe` | memory safety: `#![forbid(unsafe_code)]` on every crate root |
//! | `commit-reachability` | wait-free commits: nothing blocking transitively callable from a commit fn |
//! | `lock-order` | deadlock freedom: one global mutex acquisition order |
//! | `suppression-audit` | escape hatches stay honest: dead annotations and stale config are errors |
//!
//! Two escape hatches, both audited in the report: a checked-in
//! [`Config`] (`lint.toml`) allowlist of path prefixes, and inline
//! `// lint-allow(<rule>): <reason>` annotations (plus the rule-specific
//! `// relaxed-ok:` / `// worker-metric-ok:` / `// commit-io-ok:`
//! justifications). The suppression audit closes the loop: every hatch
//! must still cover a real finding. Diagnostics are rustc-style
//! `file:line:col`; `--json` emits a report validated against
//! `schemas/lint.schema.json` in CI, and `--sarif` emits a SARIF 2.1.0
//! subset (`schemas/sarif-subset.schema.json`) for code-scanning upload.

#![forbid(unsafe_code)]
#![deny(missing_docs)]
#![deny(rustdoc::broken_intra_doc_links)]

pub mod baseline;
pub mod config;
pub mod context;
pub mod graph;
pub mod index;
pub mod lexer;
pub mod report;
pub mod rules;
pub mod sarif;

use std::fmt;
use std::path::{Path, PathBuf};

pub use config::Config;
pub use context::FileContext;
pub use report::{Allowed, AllowedBy, Diagnostic, Report};
pub use rules::SourceFile;

/// Errors surfaced by the analyzer itself.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum LintError {
    /// Reading the workspace failed.
    Io(String),
    /// `lint.toml` is malformed.
    Config(String),
}

impl fmt::Display for LintError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Io(msg) => write!(f, "io error: {msg}"),
            Self::Config(msg) => write!(f, "lint.toml: {msg}"),
        }
    }
}

impl std::error::Error for LintError {}

/// Directories never scanned (build output, VCS, editor state).
const SKIP_DIRS: [&str; 4] = ["target", ".git", ".claude", "node_modules"];

/// The whole workspace prepared for cross-file analysis: every scanned
/// file plus the item index and approximate call graph over them. The
/// three workspace-level rules (`commit-reachability`, `lock-order`,
/// `suppression-audit`) run against this; the per-file rules only need the
/// individual [`SourceFile`]s.
#[derive(Debug)]
pub struct Workspace {
    /// Every scanned file, in sorted path order.
    pub files: Vec<SourceFile>,
    /// Functions, impl blocks and struct fields across all files.
    pub index: index::ItemIndex,
    /// Call, blocking-site and lock-acquisition edges per function.
    pub graph: graph::CallGraph,
}

impl Workspace {
    /// Builds the index and call graph over `files`.
    #[must_use]
    pub fn new(files: Vec<SourceFile>) -> Self {
        let index = index::ItemIndex::build(&files);
        let graph = graph::CallGraph::build(&files, &index);
        Self {
            files,
            index,
            graph,
        }
    }
}

/// Checks one file's text as `rel_path` in `context`, splitting findings
/// into surviving violations and suppressed ones. This is the unit the
/// fixture tests drive directly (forcing `FileContext::Lib` on files that
/// live under `tests/fixtures/`).
#[must_use]
pub fn check_source(
    rel_path: &str,
    text: &str,
    context: FileContext,
    cfg: &Config,
) -> (Vec<Diagnostic>, Vec<Allowed>) {
    let file = SourceFile::new(rel_path, text, context);
    let mut violations = Vec::new();
    let mut allowed = Vec::new();
    for d in rules::check_file(&file, cfg) {
        if cfg.allows(d.rule, rel_path) {
            allowed.push(Allowed {
                diagnostic: d,
                by: AllowedBy::Config,
            });
        } else if file.annotations.allows(d.rule, d.line) {
            allowed.push(Allowed {
                diagnostic: d,
                by: AllowedBy::Inline,
            });
        } else {
            violations.push(d);
        }
    }
    (violations, allowed)
}

/// Runs every rule — per-file and workspace-level — over a prepared
/// [`Workspace`], routing each finding through the escape hatches. A
/// `commit-reachability` finding is additionally suppressible by
/// `// commit-io-ok: <reason>` at the blocking site; `suppression-audit`
/// findings against `lint.toml` itself have no inline hatch by design.
#[must_use]
pub fn check_workspace(ws: &Workspace, cfg: &Config) -> (Vec<Diagnostic>, Vec<Allowed>) {
    let mut raw = Vec::new();
    for file in &ws.files {
        raw.extend(rules::check_file(file, cfg));
    }
    rules::commit_reachability::check(ws, cfg, &mut raw);
    rules::lock_order::check(ws, cfg, &mut raw);
    rules::suppression_audit::check(ws, cfg, &mut raw);

    let by_path: std::collections::BTreeMap<&str, &SourceFile> =
        ws.files.iter().map(|f| (f.rel_path.as_str(), f)).collect();
    let mut violations = Vec::new();
    let mut allowed = Vec::new();
    for d in raw {
        let file = by_path.get(d.file.as_str());
        if cfg.allows(d.rule, &d.file) {
            allowed.push(Allowed {
                diagnostic: d,
                by: AllowedBy::Config,
            });
        } else if file.is_some_and(|f| {
            f.annotations.allows(d.rule, d.line)
                || (d.rule == "commit-reachability" && f.annotations.commit_io_ok(d.line))
        }) {
            allowed.push(Allowed {
                diagnostic: d,
                by: AllowedBy::Inline,
            });
        } else {
            violations.push(d);
        }
    }
    (violations, allowed)
}

/// Walks the workspace at `root` and checks every `.rs` file, classifying
/// contexts from the path. Files are visited in sorted order so the report
/// is deterministic — an invariant this tool would be embarrassed to break.
pub fn run_workspace(root: &Path, cfg: &Config) -> Result<Report, LintError> {
    let ws = load_workspace(root)?;
    let (violations, allowed) = check_workspace(&ws, cfg);
    let mut report = Report {
        files_scanned: ws.files.len(),
        violations,
        allowed,
    };
    report.sort();
    Ok(report)
}

/// Walks the workspace at `root`, scans every `.rs` file in sorted order
/// and builds the cross-file index and call graph — the prepared input for
/// [`check_workspace`], exposed separately so tests can interrogate the
/// graph layers (e.g. the lock-order self-check) directly.
pub fn load_workspace(root: &Path) -> Result<Workspace, LintError> {
    let mut rels = Vec::new();
    collect_rs_files(root, root, &mut rels)?;
    rels.sort();

    let mut files = Vec::new();
    for rel in rels {
        let text = std::fs::read_to_string(root.join(&rel))
            .map_err(|e| LintError::Io(format!("{rel}: {e}")))?;
        files.push(SourceFile::new(&rel, &text, context::classify(&rel)));
    }
    Ok(Workspace::new(files))
}

/// Loads `lint.toml` from `path`; a missing file is an empty config so the
/// tool works on a bare tree.
pub fn load_config(path: &Path) -> Result<Config, LintError> {
    match std::fs::read_to_string(path) {
        Ok(text) => Config::parse(&text).map_err(LintError::Config),
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(Config::default()),
        Err(e) => Err(LintError::Io(format!("{}: {e}", path.display()))),
    }
}

fn collect_rs_files(root: &Path, dir: &Path, out: &mut Vec<String>) -> Result<(), LintError> {
    let entries =
        std::fs::read_dir(dir).map_err(|e| LintError::Io(format!("{}: {e}", dir.display())))?;
    for entry in entries {
        let entry = entry.map_err(|e| LintError::Io(e.to_string()))?;
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if SKIP_DIRS.contains(&name.as_ref()) || name.starts_with('.') {
                continue;
            }
            collect_rs_files(root, &path, out)?;
        } else if name.ends_with(".rs") {
            out.push(rel_unix_path(root, &path));
        }
    }
    Ok(())
}

/// Workspace-relative path with `/` separators regardless of platform.
fn rel_unix_path(root: &Path, path: &Path) -> String {
    let rel: PathBuf = path.strip_prefix(root).unwrap_or(path).to_path_buf();
    rel.components()
        .map(|c| c.as_os_str().to_string_lossy().into_owned())
        .collect::<Vec<_>>()
        .join("/")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn check_source_routes_suppressions_to_allowed() {
        let cfg = Config::parse("[allow]\npanic-hygiene = [\"crates/compat/\"]\n").unwrap();
        // Config allow.
        let (v, a) = check_source(
            "crates/compat/rand/src/stub.rs",
            "fn f() { x.unwrap(); }",
            FileContext::Lib,
            &cfg,
        );
        assert!(v.is_empty());
        assert_eq!(a.len(), 1);
        assert_eq!(a[0].by, AllowedBy::Config);
        // Inline allow.
        let (v, a) = check_source(
            "crates/core/src/x.rs",
            "fn f() { x.unwrap(); // lint-allow(panic-hygiene): invariant holds\n}",
            FileContext::Lib,
            &cfg,
        );
        assert!(v.is_empty());
        assert_eq!(a[0].by, AllowedBy::Inline);
        // Neither: a violation.
        let (v, _) = check_source(
            "crates/core/src/x.rs",
            "fn f() { x.unwrap(); }",
            FileContext::Lib,
            &cfg,
        );
        assert_eq!(v.len(), 1);
    }
}

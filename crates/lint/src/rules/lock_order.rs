//! **lock-order** — every pair of mutexes is acquired in one global order.
//!
//! The serve crate's overload machinery and the progress broker both nest
//! locks (`RateLimiters.clients` → `RateLimiters.global`,
//! `ProgressBroker.channels` → `ProgressChannel.sealed`); a second code
//! path nesting any such pair in the *opposite* order is a deadlock waiting
//! for load. Per function, the call-graph layer records lock acquisitions
//! with approximate hold windows; this rule turns them into a lock-order
//! graph: an edge `L → M` means some function acquires `M` (directly, or
//! transitively through a call) while holding `L`. Any cycle is an error,
//! reported rustc-style with one acquisition chain per edge so both sides
//! of the inversion are visible. Acyclicity is exactly the existence of one
//! consistent global order.
//!
//! A length-1 cycle (`L → L`) is re-acquisition of a mutex already held —
//! self-deadlock with `std::sync::Mutex` — and is reported the same way.

use std::collections::{BTreeMap, BTreeSet};

use crate::config::Config;
use crate::report::Diagnostic;
use crate::Workspace;

/// One lock-order edge with its provenance.
#[derive(Debug, Clone)]
pub struct LockEdge {
    /// Lock held when the edge fires.
    pub from: String,
    /// Lock acquired while `from` is held.
    pub to: String,
    /// Qualified name of the function where the nested acquisition happens.
    pub holder: String,
    /// File of the nested acquisition (or call) site.
    pub file: String,
    /// 1-based line of that site.
    pub line: u32,
    /// 1-based column of that site.
    pub col: u32,
    /// Callee carrying the transitive acquisition, if the edge crosses a
    /// call boundary.
    pub via: Option<String>,
}

/// Builds every lock-order edge in the workspace, sorted for determinism.
#[must_use]
pub fn edges(ws: &Workspace) -> Vec<LockEdge> {
    let closure = ws.graph.lock_closure();
    let mut out = Vec::new();
    for (f, item) in ws.index.fns.iter().enumerate() {
        if !item.is_lib {
            continue;
        }
        let toks = &ws.files[item.file].scanned.tokens;
        let holder = item.qual_name(&ws.index.file_stems[item.file]);
        let rel = &ws.files[item.file].rel_path;
        for a in &ws.graph.locks[f] {
            // Direct nesting: a second acquisition inside the hold window.
            for b in &ws.graph.locks[f] {
                if b.tok > a.tok && b.tok <= a.hold_end {
                    let t = &toks[b.tok];
                    out.push(LockEdge {
                        from: a.lock.clone(),
                        to: b.lock.clone(),
                        holder: holder.clone(),
                        file: rel.clone(),
                        line: t.line,
                        col: t.col,
                        via: None,
                    });
                }
            }
            // Transitive nesting: a call inside the hold window whose
            // closure acquires locks.
            for c in &ws.graph.calls[f] {
                if c.tok <= a.tok || c.tok > a.hold_end {
                    continue;
                }
                let t = &toks[c.tok];
                let mut transitive: BTreeSet<&str> = BTreeSet::new();
                for &callee in &c.callees {
                    for l in &closure[callee] {
                        transitive.insert(l);
                    }
                }
                for l in transitive {
                    out.push(LockEdge {
                        from: a.lock.clone(),
                        to: l.to_string(),
                        holder: holder.clone(),
                        file: rel.clone(),
                        line: t.line,
                        col: t.col,
                        via: Some(c.name.clone()),
                    });
                }
            }
        }
    }
    out.sort_by(|a, b| {
        (&a.from, &a.to, &a.file, a.line, a.col).cmp(&(&b.from, &b.to, &b.file, b.line, b.col))
    });
    out.dedup_by(|a, b| a.from == b.from && a.to == b.to && a.holder == b.holder);
    out
}

/// Runs the rule: any cycle in the lock-order graph is an error.
pub fn check(ws: &Workspace, _cfg: &Config, out: &mut Vec<Diagnostic>) {
    let all = edges(ws);
    for cycle in find_cycles(&all) {
        let first = &cycle[0];
        let mut msg = format!(
            "lock-order cycle: no global acquisition order exists for {}",
            cycle
                .iter()
                .map(|e| format!("`{}`", e.from))
                .collect::<Vec<_>>()
                .join(" → ")
        );
        for e in &cycle {
            let via = e
                .via
                .as_ref()
                .map(|v| format!(" through call to `{v}`"))
                .unwrap_or_default();
            msg.push_str(&format!(
                "\n  = note: `{}` then `{}` in `{}`{via} at {}:{}:{}",
                e.from, e.to, e.holder, e.file, e.line, e.col
            ));
        }
        out.push(Diagnostic {
            rule: "lock-order",
            file: first.file.clone(),
            line: first.line,
            col: first.col,
            message: msg,
        });
    }
}

/// Finds every elementary cycle in the edge list, deduplicated by the set
/// of participating locks (rotation-normalised), in deterministic order.
fn find_cycles(all: &[LockEdge]) -> Vec<Vec<LockEdge>> {
    let mut adj: BTreeMap<&str, Vec<&LockEdge>> = BTreeMap::new();
    for e in all {
        adj.entry(e.from.as_str()).or_default().push(e);
    }
    let mut cycles: Vec<Vec<LockEdge>> = Vec::new();
    let mut seen: BTreeSet<Vec<String>> = BTreeSet::new();
    // DFS from every node; a path returning to its origin is a cycle.
    let starts: Vec<&str> = adj.keys().copied().collect();
    for start in starts {
        let mut path: Vec<&LockEdge> = Vec::new();
        let mut on_path: BTreeSet<&str> = BTreeSet::new();
        dfs(start, start, &adj, &mut path, &mut on_path, &mut |cycle| {
            let mut key: Vec<String> = cycle.iter().map(|e| e.from.clone()).collect();
            key.sort();
            if seen.insert(key) {
                cycles.push(cycle.iter().map(|&e| e.clone()).collect());
            }
        });
    }
    cycles
}

fn dfs<'a>(
    node: &'a str,
    origin: &'a str,
    adj: &BTreeMap<&'a str, Vec<&'a LockEdge>>,
    path: &mut Vec<&'a LockEdge>,
    on_path: &mut BTreeSet<&'a str>,
    emit: &mut impl FnMut(&[&'a LockEdge]),
) {
    on_path.insert(node);
    for e in adj.get(node).map_or(&[][..], Vec::as_slice) {
        path.push(e);
        if e.to == origin {
            emit(path);
        } else if !on_path.contains(e.to.as_str()) {
            dfs(&e.to, origin, adj, path, on_path, emit);
        }
        path.pop();
    }
    on_path.remove(node);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::FileContext;
    use crate::rules::SourceFile;

    fn ws(srcs: &[(&str, &str)]) -> Workspace {
        Workspace::new(
            srcs.iter()
                .map(|(p, s)| SourceFile::new(p, s, FileContext::Lib))
                .collect(),
        )
    }

    #[test]
    fn opposite_nesting_orders_are_a_cycle() {
        let w = ws(&[(
            "virtual/gate.rs",
            "struct G { a: Mutex, b: Mutex }\n\
             impl G {\n\
                 fn fwd(&self) { let x = self.a.lock(); let y = self.b.lock(); }\n\
                 fn rev(&self) { let y = self.b.lock(); let x = self.a.lock(); }\n\
             }\n",
        )]);
        let mut out = Vec::new();
        check(&w, &Config::default(), &mut out);
        assert_eq!(out.len(), 1, "{out:?}");
        assert!(
            out[0].message.contains("lock-order cycle"),
            "{}",
            out[0].message
        );
        assert!(out[0].message.contains("G.a"), "{}", out[0].message);
        assert!(out[0].message.contains("G.b"), "{}", out[0].message);
        assert!(out[0].message.contains("`G::fwd`"), "{}", out[0].message);
        assert!(out[0].message.contains("`G::rev`"), "{}", out[0].message);
    }

    #[test]
    fn consistent_nesting_is_clean() {
        let w = ws(&[(
            "virtual/gate.rs",
            "struct G { a: Mutex, b: Mutex }\n\
             impl G {\n\
                 fn one(&self) { let x = self.a.lock(); let y = self.b.lock(); }\n\
                 fn two(&self) { let x = self.a.lock(); let y = self.b.lock(); }\n\
                 fn solo(&self) { let y = self.b.lock(); }\n\
             }\n",
        )]);
        let mut out = Vec::new();
        check(&w, &Config::default(), &mut out);
        assert!(out.is_empty(), "{out:?}");
        let es = edges(&w);
        assert!(
            es.iter().all(|e| e.from == "G.a" && e.to == "G.b"),
            "{es:?}"
        );
    }

    #[test]
    fn dropping_the_first_guard_breaks_the_edge() {
        let w = ws(&[(
            "virtual/gate.rs",
            "struct G { a: Mutex, b: Mutex }\n\
             impl G {\n\
                 fn fwd(&self) { let x = self.a.lock(); drop(x); let y = self.b.lock(); }\n\
                 fn rev(&self) { let y = self.b.lock(); drop(y); let x = self.a.lock(); }\n\
             }\n",
        )]);
        let mut out = Vec::new();
        check(&w, &Config::default(), &mut out);
        assert!(
            out.is_empty(),
            "released-before-acquire never orders: {out:?}"
        );
    }

    #[test]
    fn cross_function_inversion_is_caught_through_calls() {
        let w = ws(&[(
            "virtual/broker.rs",
            "struct Broker { channels: Mutex } struct Chan { sealed: Mutex }\n\
             impl Broker { fn publish(&self, c: &Chan) { let g = self.channels.lock(); \
             c.seal_now(); } }\n\
             impl Chan { fn seal_now(&self) { let s = self.sealed.lock(); } \
             fn registering(&self, b: &Broker) { let s = self.sealed.lock(); \
             b.subscribe(); } }\n\
             impl Broker { fn subscribe(&self) { let g = self.channels.lock(); } }\n",
        )]);
        let mut out = Vec::new();
        check(&w, &Config::default(), &mut out);
        assert_eq!(out.len(), 1, "{out:?}");
        assert!(
            out[0].message.contains("through call to"),
            "transitive edges name the callee: {}",
            out[0].message
        );
    }

    #[test]
    fn self_reacquisition_is_a_length_one_cycle() {
        let w = ws(&[(
            "virtual/gate.rs",
            "struct G { a: Mutex }\n\
             impl G { fn twice(&self) { let x = self.a.lock(); let y = self.a.lock(); } }\n",
        )]);
        let mut out = Vec::new();
        check(&w, &Config::default(), &mut out);
        assert_eq!(out.len(), 1, "{out:?}");
    }
}

//! **atomics-audit** — every `Ordering::Relaxed` must justify itself.
//!
//! The §5 at-most-once guarantee rests on the worker pool's `fetch_add`
//! claim protocol; whether `Relaxed` is sound there is a real proof
//! obligation (it is — RMW operations on a single atomic are totally
//! ordered; see DESIGN.md), and the same is true of every other relaxed
//! access in the workspace. Rather than banning `Relaxed` (upgrading a
//! sound site to `AcqRel` hides the reasoning instead of recording it),
//! the rule requires each use in library code to carry a
//! `// relaxed-ok: <reason>` annotation on the same line or the line
//! above. No annotation, no `Relaxed`.

use crate::config::Config;
use crate::report::Diagnostic;

use super::{ident_at, qualified_by, SourceFile};

/// Runs the rule over one file.
pub fn check(f: &SourceFile, _cfg: &Config, out: &mut Vec<Diagnostic>) {
    let toks = &f.scanned.tokens;
    for (i, t) in toks.iter().enumerate() {
        if ident_at(toks, i) != Some("Relaxed") || !qualified_by(toks, i, "Ordering") {
            continue;
        }
        if !f.is_lib_line(t.line) {
            continue;
        }
        if !f.annotations.relaxed_ok(t.line) {
            out.push(f.diag(
                "atomics-audit",
                t,
                "`Ordering::Relaxed` without a `// relaxed-ok: <reason>` justification".to_string(),
            ));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::FileContext;

    fn run(src: &str) -> Vec<Diagnostic> {
        let f = SourceFile::new("crates/core/src/pool.rs", src, FileContext::Lib);
        let mut out = Vec::new();
        check(&f, &Config::default(), &mut out);
        out
    }

    #[test]
    fn unannotated_relaxed_is_flagged_with_position() {
        let out = run("fn f() {\n    c.fetch_add(1, Ordering::Relaxed);\n}");
        assert_eq!(out.len(), 1);
        assert_eq!((out[0].line, out[0].col), (2, 30));
    }

    #[test]
    fn trailing_and_preceding_annotations_satisfy() {
        assert!(
            run("fn f() { c.load(Ordering::Relaxed); // relaxed-ok: monotone flag\n}").is_empty()
        );
        assert!(run(
            "fn f() {\n    // relaxed-ok: claim uniqueness is RMW total order\n    \
             c.fetch_add(1, Ordering::Relaxed);\n}"
        )
        .is_empty());
    }

    #[test]
    fn stronger_orderings_need_no_annotation() {
        assert!(
            run("fn f() { c.store(1, Ordering::AcqRel); c.load(Ordering::SeqCst); }").is_empty()
        );
    }

    #[test]
    fn tests_are_exempt() {
        assert!(run("#[cfg(test)]\nmod t { fn f() { c.load(Ordering::Relaxed); } }").is_empty());
    }
}

//! **obs-discipline** — observability must not perturb determinism.
//!
//! Two contracts from PR 3:
//!
//! * **Lazy trace labels.** `Obs::trace`/`trace_span` take a label closure
//!   so a disabled handle never builds a string. An eager argument (string
//!   literal, `format!`, a bound variable) would both cost allocations on
//!   the hot path and tempt the next author to weaken the API, so every
//!   label argument must syntactically be a closure.
//! * **No deterministic-metric commits on workers.** Deterministic
//!   instruments (`cells_executed`, `answers_found`, …) are committed only
//!   in the driver's serial emission loop; the worker-side files listed in
//!   `lint.toml` (`[obs-discipline] worker_paths`) may only touch the
//!   explicitly nondeterministic-class instruments, and each such commit
//!   carries a `// worker-metric-ok: <reason>` annotation naming why the
//!   instrument tolerates thread-schedule dependence.

use crate::config::Config;
use crate::report::Diagnostic;

use super::{ident_at, is_method_call, matching_paren, punct_at, SourceFile};

/// Metric-commit method names audited on worker paths.
const COMMIT_METHODS: [&str; 5] = ["inc", "add", "observe", "record_exec_stats", "set_meta"];

/// Runs the rule over one file.
pub fn check(f: &SourceFile, cfg: &Config, out: &mut Vec<Diagnostic>) {
    let toks = &f.scanned.tokens;
    let worker_path = cfg.is_worker_path(&f.rel_path);
    for (i, t) in toks.iter().enumerate() {
        let Some(name) = ident_at(toks, i) else {
            continue;
        };
        if !f.is_lib_line(t.line) || !is_method_call(toks, i) {
            continue;
        }
        if matches!(name, "trace" | "trace_span") && !label_is_closure(f, i) {
            out.push(f.diag(
                "obs-discipline",
                t,
                format!("`{name}` label must be a lazy closure (`|| format!(…)`), never an eager string"),
            ));
        }
        if worker_path && COMMIT_METHODS.contains(&name) && !f.annotations.worker_metric_ok(t.line)
        {
            out.push(f.diag(
                "obs-discipline",
                t,
                format!(
                    "metric commit `.{name}(…)` on a worker path without `// worker-metric-ok: \
                     <reason>`; deterministic instruments commit in the serial emission loop only"
                ),
            ));
        }
    }
}

/// Whether the last top-level argument of the call at ident index `i`
/// starts with `|` or `move` (a closure). Calls without arguments pass.
fn label_is_closure(f: &SourceFile, i: usize) -> bool {
    let toks = &f.scanned.tokens;
    let open = i + 1;
    let Some(close) = matching_paren(toks, open) else {
        return true; // unparseable call: the compiler's problem, not ours
    };
    if close == open + 1 {
        return true; // no arguments
    }
    // Find the start of the last top-level argument.
    let mut depth = 0i32;
    let mut last_arg = open + 1;
    for (j, t) in toks.iter().enumerate().take(close).skip(open + 1) {
        match t.tok {
            crate::lexer::Tok::Punct('(' | '[' | '{') => depth += 1,
            crate::lexer::Tok::Punct(')' | ']' | '}') => depth -= 1,
            crate::lexer::Tok::Punct(',') if depth == 0 => last_arg = j + 1,
            _ => {}
        }
    }
    punct_at(toks, last_arg, '|') || ident_at(toks, last_arg) == Some("move")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::FileContext;

    fn run(path: &str, src: &str) -> Vec<Diagnostic> {
        let f = SourceFile::new(path, src, FileContext::Lib);
        let cfg = Config::parse("[obs-discipline]\nworker_paths = [\"crates/core/src/pool.rs\"]\n")
            .unwrap();
        let mut out = Vec::new();
        check(&f, &cfg, &mut out);
        out
    }

    #[test]
    fn eager_trace_labels_are_flagged() {
        assert_eq!(
            run(
                "crates/core/src/driver.rs",
                "fn f() { obs.trace(1, format!(\"layer {l}\")); }"
            )
            .len(),
            1
        );
        assert_eq!(
            run(
                "crates/core/src/driver.rs",
                "fn f() { obs.trace_span(1, dur, label); }"
            )
            .len(),
            1
        );
    }

    #[test]
    fn closure_labels_pass_including_spans_with_method_args() {
        assert!(run(
            "crates/core/src/driver.rs",
            "fn f() { obs.trace(1, || format!(\"x\")); \
             obs.trace_span(1, t0.elapsed(), || format!(\"({a}, {b})\")); \
             obs.trace(2, move || s.clone()); }"
        )
        .is_empty());
    }

    #[test]
    fn worker_metric_commits_need_annotations() {
        let src = "fn f() { m.at_most_once_violations.inc(); }";
        assert_eq!(run("crates/core/src/pool.rs", src).len(), 1);
        assert!(run(
            "crates/core/src/pool.rs",
            "fn f() { m.at_most_once_violations.inc(); // worker-metric-ok: diagnostic counter\n}"
        )
        .is_empty());
        // Off the worker paths the commit-side check does not apply.
        assert!(run("crates/core/src/driver.rs", src).is_empty());
    }

    #[test]
    fn oncelock_set_is_not_a_metric_commit() {
        assert!(run(
            "crates/core/src/pool.rs",
            "fn f() { slots[i].set(outcome); }"
        )
        .is_empty());
    }
}

//! **obs-discipline** — observability must not perturb determinism.
//!
//! Four contracts (the first two from PR 3, the third from PR 7, the
//! fourth from PR 8). A fifth — no blocking calls in the textually listed
//! instrument-commit *files* — was superseded in PR 9 by the
//! call-graph-aware `commit-reachability` rule, which follows commit
//! *functions* across files instead of trusting a file list:
//!
//! * **Lazy trace labels.** `Obs::trace`/`trace_span` take a label closure
//!   so a disabled handle never builds a string. An eager argument (string
//!   literal, `format!`, a bound variable) would both cost allocations on
//!   the hot path and tempt the next author to weaken the API, so every
//!   label argument must syntactically be a closure.
//! * **No deterministic-metric commits on workers.** Deterministic
//!   instruments (`cells_executed`, `answers_found`, …) are committed only
//!   in the driver's serial emission loop; the worker-side files listed in
//!   `lint.toml` (`[obs-discipline] worker_paths`) may only touch the
//!   explicitly nondeterministic-class instruments, and each such commit
//!   carries a `// worker-metric-ok: <reason>` annotation naming why the
//!   instrument tolerates thread-schedule dependence.
//! * **Zone counters commit only on the serial emission path.** The
//!   zone-map accounting (`zones_pruned`/`zones_full`/`zones_scanned`) is
//!   part of the §9 determinism contract: scans accumulate it in pure
//!   per-cell values and the driver commits those in emission order.
//!   Mutating a zone counter (`+=`, `-=` or assignment) anywhere outside
//!   the files listed in `[obs-discipline] zone_stat_paths` would let
//!   worker-side code perturb the deterministic stats, so it is flagged
//!   wherever it appears. Reads and comparisons are free.
//! * **Progress sinks are fed only from the serial emission path.** The
//!   streaming progress contract (strictly monotone `explored`, terminal
//!   event last) holds because every [`acquire_core::ProgressSink`] push
//!   happens at a layer-boundary commit in the driver. A `.try_push(…)`
//!   call anywhere outside `[obs-discipline] progress_sink_paths` — a
//!   worker closure, an evaluation layer, a request handler — could
//!   interleave events out of order, so it is flagged wherever it appears.

use crate::config::Config;
use crate::report::Diagnostic;

use super::{ident_at, is_method_call, matching_paren, punct_at, SourceFile};

/// Metric-commit method names audited on worker paths.
const COMMIT_METHODS: [&str; 5] = ["inc", "add", "observe", "record_exec_stats", "set_meta"];

/// Zone-map counter fields whose mutation is confined to
/// `[obs-discipline] zone_stat_paths`.
const ZONE_COUNTERS: [&str; 3] = ["zones_pruned", "zones_full", "zones_scanned"];

/// Runs the rule over one file.
pub fn check(f: &SourceFile, cfg: &Config, out: &mut Vec<Diagnostic>) {
    let toks = &f.scanned.tokens;
    let worker_path = cfg.is_worker_path(&f.rel_path);
    for (i, t) in toks.iter().enumerate() {
        let Some(name) = ident_at(toks, i) else {
            continue;
        };
        if !f.is_lib_line(t.line) {
            continue;
        }
        if name == "try_push" && is_method_call(toks, i) && !cfg.is_progress_sink_path(&f.rel_path)
        {
            out.push(
                f.diag(
                    "obs-discipline",
                    t,
                    "progress sink push `.try_push(…)` outside `[obs-discipline] \
                 progress_sink_paths`; events are emitted only at the driver's serial \
                 layer-boundary commits"
                        .to_string(),
                ),
            );
        }
        if ZONE_COUNTERS.contains(&name)
            && is_zone_mutation(toks, i)
            && !cfg.is_zone_stat_path(&f.rel_path)
        {
            out.push(f.diag(
                "obs-discipline",
                t,
                format!(
                    "zone counter `{name}` mutated outside `[obs-discipline] zone_stat_paths`; \
                     zone-map accounting commits only on the serial emission path"
                ),
            ));
        }
        if !is_method_call(toks, i) {
            continue;
        }
        if matches!(name, "trace" | "trace_span") && !label_is_closure(f, i) {
            out.push(f.diag(
                "obs-discipline",
                t,
                format!("`{name}` label must be a lazy closure (`|| format!(…)`), never an eager string"),
            ));
        }
        if worker_path && COMMIT_METHODS.contains(&name) && !f.annotations.worker_metric_ok(t.line)
        {
            out.push(f.diag(
                "obs-discipline",
                t,
                format!(
                    "metric commit `.{name}(…)` on a worker path without `// worker-metric-ok: \
                     <reason>`; deterministic instruments commit in the serial emission loop only"
                ),
            ));
        }
    }
}

/// Whether the zone-counter field at ident index `i` is being written:
/// `+=`, `-=`, or a plain `=` that is not part of `==`. Struct-literal
/// initialisation (`zones_pruned: 0`), reads and comparisons all pass.
fn is_zone_mutation(toks: &[crate::lexer::Token], i: usize) -> bool {
    if (punct_at(toks, i + 1, '+') || punct_at(toks, i + 1, '-')) && punct_at(toks, i + 2, '=') {
        return true;
    }
    punct_at(toks, i + 1, '=') && !punct_at(toks, i + 2, '=') && !punct_at(toks, i + 2, '>')
}

/// Whether the last top-level argument of the call at ident index `i`
/// starts with `|` or `move` (a closure). Calls without arguments pass.
fn label_is_closure(f: &SourceFile, i: usize) -> bool {
    let toks = &f.scanned.tokens;
    let open = i + 1;
    let Some(close) = matching_paren(toks, open) else {
        return true; // unparseable call: the compiler's problem, not ours
    };
    if close == open + 1 {
        return true; // no arguments
    }
    // Find the start of the last top-level argument.
    let mut depth = 0i32;
    let mut last_arg = open + 1;
    for (j, t) in toks.iter().enumerate().take(close).skip(open + 1) {
        match t.tok {
            crate::lexer::Tok::Punct('(' | '[' | '{') => depth += 1,
            crate::lexer::Tok::Punct(')' | ']' | '}') => depth -= 1,
            crate::lexer::Tok::Punct(',') if depth == 0 => last_arg = j + 1,
            _ => {}
        }
    }
    punct_at(toks, last_arg, '|') || ident_at(toks, last_arg) == Some("move")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::FileContext;

    fn run(path: &str, src: &str) -> Vec<Diagnostic> {
        let f = SourceFile::new(path, src, FileContext::Lib);
        let cfg = Config::parse(
            "[obs-discipline]\n\
             worker_paths = [\"crates/core/src/pool.rs\"]\n",
        )
        .unwrap();
        let mut out = Vec::new();
        check(&f, &cfg, &mut out);
        out
    }

    #[test]
    fn eager_trace_labels_are_flagged() {
        assert_eq!(
            run(
                "crates/core/src/driver.rs",
                "fn f() { obs.trace(1, format!(\"layer {l}\")); }"
            )
            .len(),
            1
        );
        assert_eq!(
            run(
                "crates/core/src/driver.rs",
                "fn f() { obs.trace_span(1, dur, label); }"
            )
            .len(),
            1
        );
    }

    #[test]
    fn closure_labels_pass_including_spans_with_method_args() {
        assert!(run(
            "crates/core/src/driver.rs",
            "fn f() { obs.trace(1, || format!(\"x\")); \
             obs.trace_span(1, t0.elapsed(), || format!(\"({a}, {b})\")); \
             obs.trace(2, move || s.clone()); }"
        )
        .is_empty());
    }

    #[test]
    fn worker_metric_commits_need_annotations() {
        let src = "fn f() { m.at_most_once_violations.inc(); }";
        assert_eq!(run("crates/core/src/pool.rs", src).len(), 1);
        assert!(run(
            "crates/core/src/pool.rs",
            "fn f() { m.at_most_once_violations.inc(); // worker-metric-ok: diagnostic counter\n}"
        )
        .is_empty());
        // Off the worker paths the commit-side check does not apply.
        assert!(run("crates/core/src/driver.rs", src).is_empty());
    }

    #[test]
    fn zone_counter_mutations_are_confined() {
        // `+=`, `-=` and plain assignment are all flagged off the
        // sanctioned paths…
        for src in [
            "fn f(s: &mut ExecStats) { s.zones_pruned += 1; }",
            "fn f(s: &mut ExecStats) { s.zones_full -= 1; }",
            "fn f(s: &mut ExecStats) { s.zones_scanned = 0; }",
        ] {
            assert_eq!(run("crates/core/src/pool.rs", src).len(), 1, "{src}");
        }
        // …while reads, comparisons, struct-literal init and match arms pass,
        for src in [
            "fn f(s: &ExecStats) -> u64 { s.zones_pruned + s.zones_full }",
            "fn f(s: &ExecStats) -> bool { s.zones_pruned == 0 }",
            "fn f() -> ExecStats { ExecStats { zones_pruned: 0, ..Default::default() } }",
            "fn f(k: Kind) { match k { Kind::zones_pruned => {} _ => {} } }",
        ] {
            assert!(run("crates/core/src/pool.rs", src).is_empty(), "{src}");
        }
        // and a sanctioned zone_stat_path may commit them.
        let f = SourceFile::new(
            "crates/engine/src/zone.rs",
            "fn f(s: &mut ExecStats) { s.zones_pruned += 1; }",
            FileContext::Lib,
        );
        let cfg =
            Config::parse("[obs-discipline]\nzone_stat_paths = [\"crates/engine/src/zone.rs\"]\n")
                .unwrap();
        let mut out = Vec::new();
        check(&f, &cfg, &mut out);
        assert!(out.is_empty());
    }

    #[test]
    fn progress_sink_pushes_are_confined() {
        let src = "fn f(sink: &ProgressSink) { sink.try_push(event); }";
        // Off the sanctioned paths a push is flagged wherever it appears…
        assert_eq!(run("crates/core/src/pool.rs", src).len(), 1);
        assert_eq!(run("crates/engine/src/executor.rs", src).len(), 1);
        // …a free call or a different method is not…
        assert!(run("crates/core/src/pool.rs", "fn f() { try_push(e); }").is_empty());
        assert!(run("crates/core/src/pool.rs", "fn f() { q.push(e); }").is_empty());
        // …and a sanctioned path may push.
        let f = SourceFile::new("crates/core/src/driver.rs", src, FileContext::Lib);
        let cfg = Config::parse(
            "[obs-discipline]\nprogress_sink_paths = [\"crates/core/src/driver.rs\"]\n",
        )
        .unwrap();
        let mut out = Vec::new();
        check(&f, &cfg, &mut out);
        assert!(out.is_empty());
    }

    #[test]
    fn oncelock_set_is_not_a_metric_commit() {
        assert!(run(
            "crates/core/src/pool.rs",
            "fn f() { slots[i].set(outcome); }"
        )
        .is_empty());
    }
}

//! **commit-reachability** — nothing blocking is *transitively* callable
//! from a serial-emission commit function.
//!
//! The PR 5 obs-discipline contract checked blocking calls textually inside
//! listed commit *files*; a `.lock()` one function-hop away was invisible.
//! This rule supersedes it with a graph closure: the commit functions named
//! by `[commit-reachability] roots` (`<file>::<fn>` or `<file>::*`) are the
//! BFS roots, and every blocking primitive inside any reachable library
//! function is an error, anchored at the blocking site with the call chain
//! in the message. The blocking sets are the same ones the textual contract
//! used (`.lock()`, channel `recv`, stream I/O, `thread::sleep`,
//! `print!`-family macros); `try_lock` and relaxed atomics remain the
//! sanctioned wait-free alternatives, and a justified blocking site carries
//! `// commit-io-ok: <reason>` exactly as before.
//!
//! The roots are *functions*, not files, because commit files legitimately
//! contain non-commit code: `driver.rs` owns both the serial emission
//! commits and the speculative phase whose `pool::execute_batch` join
//! blocks by design.

use std::collections::BTreeSet;

use crate::config::Config;
use crate::graph::CallGraph;
use crate::index::file_stem;
use crate::report::Diagnostic;
use crate::Workspace;

/// Runs the rule, emitting **all** findings (the caller routes
/// `commit-io-ok` / `lint-allow` suppression so suppressed findings stay
/// audited in the report).
pub fn check(ws: &Workspace, cfg: &Config, out: &mut Vec<Diagnostic>) {
    let roots = resolve_roots(ws, cfg);
    if roots.is_empty() {
        return;
    }
    let parent = ws.graph.reachable(&roots);
    let mut seen: BTreeSet<(usize, usize)> = BTreeSet::new();
    // Deterministic order: walk functions in index order.
    for (f, item) in ws.index.fns.iter().enumerate() {
        if !parent.contains_key(&f) || !item.is_lib {
            continue;
        }
        let chain = CallGraph::chain(&parent, f);
        let chain_names: Vec<String> = chain
            .iter()
            .map(|&g| {
                let it = &ws.index.fns[g];
                it.qual_name(&ws.index.file_stems[it.file])
            })
            .collect();
        let root_item = &ws.index.fns[chain[0]];
        let root_name = format!(
            "{}::{}",
            file_stem(&ws.files[root_item.file].rel_path),
            root_item.name
        );
        for site in &ws.graph.blocking[f] {
            if !seen.insert((item.file, site.tok)) {
                continue;
            }
            let t = &ws.files[item.file].scanned.tokens[site.tok];
            let via = if chain_names.len() > 1 {
                format!(" via `{}`", chain_names.join(" → "))
            } else {
                String::new()
            };
            out.push(Diagnostic {
                rule: "commit-reachability",
                file: ws.files[item.file].rel_path.clone(),
                line: t.line,
                col: t.col,
                message: format!(
                    "{} reachable from commit fn `{root_name}`{via}; commit paths must stay \
                     wait-free (atomics or `try_lock`) — restructure or justify with \
                     `// commit-io-ok: <reason>`",
                    site.what
                ),
            });
        }
    }
}

/// Resolves `[commit-reachability] roots` entries to function ids.
#[must_use]
pub fn resolve_roots(ws: &Workspace, cfg: &Config) -> Vec<usize> {
    let mut roots = Vec::new();
    for entry in &cfg.commit_roots {
        let Some((file, name)) = Config::parse_root(entry) else {
            continue;
        };
        for (f, item) in ws.index.fns.iter().enumerate() {
            if !item.is_lib || ws.files[item.file].rel_path != file {
                continue;
            }
            if name == "*" || item.name == name {
                roots.push(f);
            }
        }
    }
    roots.sort_unstable();
    roots.dedup();
    roots
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::FileContext;
    use crate::rules::SourceFile;

    fn ws(srcs: &[(&str, &str)]) -> Workspace {
        Workspace::new(
            srcs.iter()
                .map(|(p, s)| SourceFile::new(p, s, FileContext::Lib))
                .collect(),
        )
    }

    #[test]
    fn two_hop_blocking_call_is_found_with_its_chain() {
        let w = ws(&[
            ("virtual/commit.rs", "pub fn emit() { middle::relay(); }\n"),
            ("virtual/middle.rs", "pub fn relay() { sink::store(); }\n"),
            (
                "virtual/sink.rs",
                "pub fn store() { let g = STATE.lock(); }\n",
            ),
        ]);
        let cfg = Config::parse("[commit-reachability]\nroots = [\"virtual/commit.rs::emit\"]\n")
            .unwrap();
        let mut out = Vec::new();
        check(&w, &cfg, &mut out);
        assert_eq!(out.len(), 1, "{out:?}");
        assert_eq!((out[0].line, out[0].col), (1, 32));
        assert!(
            out[0].message.contains("commit fn `commit::emit`"),
            "{}",
            out[0].message
        );
        assert!(
            out[0]
                .message
                .contains("commit::emit → middle::relay → sink::store"),
            "{}",
            out[0].message
        );
    }

    #[test]
    fn functions_off_the_closure_may_block() {
        let w = ws(&[(
            "virtual/driver.rs",
            "pub fn emit() { tally(); }\nfn tally() {}\n\
             pub fn speculate() { let g = POOL.lock(); }\n",
        )]);
        let cfg = Config::parse("[commit-reachability]\nroots = [\"virtual/driver.rs::emit\"]\n")
            .unwrap();
        let mut out = Vec::new();
        check(&w, &cfg, &mut out);
        assert!(
            out.is_empty(),
            "speculate() is not reachable from emit(): {out:?}"
        );
    }

    #[test]
    fn star_roots_cover_the_whole_file() {
        let w = ws(&[(
            "virtual/telemetry.rs",
            "pub fn record() { std::thread::sleep(d); }\npub fn render() { println!(\"x\"); }\n",
        )]);
        let cfg = Config::parse("[commit-reachability]\nroots = [\"virtual/telemetry.rs::*\"]\n")
            .unwrap();
        let mut out = Vec::new();
        check(&w, &cfg, &mut out);
        assert_eq!(out.len(), 2, "{out:?}");
    }
}

//! **determinism** — keep nondeterminism out of the emission path.
//!
//! ACQUIRE's outcomes are bit-identical for any thread count because the
//! driver merges (Eq. 17), accounts and answers in serial emission order.
//! Three things would silently break that:
//!
//! * unordered-container iteration (`HashMap`/`HashSet`, or the project's
//!   `FastMap`/`FastSet` aliases) in an emission-path file — iteration
//!   order would leak into answers, so those files must use `BTreeMap` or
//!   keyed lookups only;
//! * wall-clock reads (`Instant::now`, `SystemTime::now`) outside the
//!   governor (deadlines are *policy*) and `acq-obs` (latency metrics are
//!   explicitly nondeterministic-class) — a clock anywhere else is a
//!   timing dependency waiting to become a flaky answer;
//! * `thread::sleep` anywhere but the fault injector, whose injected
//!   latency is part of its contract.
//!
//! Paths are scoped in `lint.toml` (`[determinism]`); individual sound
//! sites carry `// lint-allow(determinism): <reason>`.

use crate::config::Config;
use crate::report::Diagnostic;

use super::{ident_at, qualified_by, SourceFile};

const UNORDERED: [&str; 4] = ["HashMap", "HashSet", "FastMap", "FastSet"];

/// Runs the rule over one file.
pub fn check(f: &SourceFile, cfg: &Config, out: &mut Vec<Diagnostic>) {
    let toks = &f.scanned.tokens;
    let ordered = cfg.is_ordered_path(&f.rel_path);
    for (i, t) in toks.iter().enumerate() {
        let Some(name) = ident_at(toks, i) else {
            continue;
        };
        if !f.is_lib_line(t.line) {
            continue;
        }
        if ordered && UNORDERED.contains(&name) {
            out.push(f.diag(
                "determinism",
                t,
                format!(
                    "`{name}` in an ordered emission path; use `BTreeMap`/`BTreeSet` or keyed \
                     lookups with sorted iteration"
                ),
            ));
        }
        if name == "now"
            && (qualified_by(toks, i, "Instant") || qualified_by(toks, i, "SystemTime"))
            && !cfg.clock_allowed(&f.rel_path)
        {
            out.push(f.diag(
                "determinism",
                t,
                "wall-clock read outside govern/obs; clocks belong to budget policy and metrics \
                 only"
                    .to_string(),
            ));
        }
        if name == "sleep" && qualified_by(toks, i, "thread") && !cfg.sleep_allowed(&f.rel_path) {
            out.push(f.diag(
                "determinism",
                t,
                "`thread::sleep` outside the fault injector".to_string(),
            ));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::FileContext;

    fn cfg() -> Config {
        Config::parse(
            "[determinism]\n\
             ordered_paths = [\"crates/core/src/store.rs\"]\n\
             clock_allowed = [\"crates/obs/\"]\n\
             sleep_allowed = [\"crates/core/src/fault.rs\"]\n",
        )
        .unwrap()
    }

    fn run(path: &str, src: &str) -> Vec<Diagnostic> {
        let f = SourceFile::new(path, src, FileContext::Lib);
        let mut out = Vec::new();
        check(&f, &cfg(), &mut out);
        out
    }

    #[test]
    fn unordered_containers_flagged_only_on_ordered_paths() {
        let src = "use std::collections::HashMap;\nstruct S { m: FastMap<u32, u32> }";
        assert_eq!(run("crates/core/src/store.rs", src).len(), 2);
        assert!(run("crates/core/src/eval.rs", src).is_empty());
    }

    #[test]
    fn clocks_allowed_only_where_configured() {
        let src = "fn f() { let t = Instant::now(); let s = SystemTime::now(); }";
        assert_eq!(run("crates/core/src/driver.rs", src).len(), 2);
        assert!(run("crates/obs/src/lib.rs", src).is_empty());
    }

    #[test]
    fn sleep_allowed_only_in_the_fault_injector() {
        let src = "fn f() { std::thread::sleep(d); }";
        assert_eq!(run("crates/core/src/pool.rs", src).len(), 1);
        assert!(run("crates/core/src/fault.rs", src).is_empty());
    }

    #[test]
    fn unrelated_now_and_sleep_idents_do_not_fire() {
        assert!(run(
            "crates/core/src/driver.rs",
            "fn f() { let now = 3; now.max(1); }"
        )
        .is_empty());
        assert!(run("crates/core/src/pool.rs", "fn f() { pool.sleep(); }").is_empty());
    }
}

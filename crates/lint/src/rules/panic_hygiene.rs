//! **panic-hygiene** — no `unwrap`/`expect`/`panic!`/`todo!`/
//! `unimplemented!` in library code.
//!
//! The PR-1 sweep replaced every panicking path in `core` and `engine` with
//! typed `Result`s: a serving system degrades (anytime semantics,
//! `Termination` statuses), it does not abort. This rule keeps the sweep
//! swept. Binaries, tests, benches and examples may fail fast; invariants
//! that genuinely cannot fail carry a `// lint-allow(panic-hygiene):
//! <reason>` annotation stating why.

use crate::config::Config;
use crate::report::Diagnostic;

use super::{ident_at, is_method_call, punct_at, SourceFile};

const PANIC_MACROS: [&str; 3] = ["panic", "todo", "unimplemented"];
const PANIC_METHODS: [&str; 2] = ["unwrap", "expect"];

/// Runs the rule over one file.
pub fn check(f: &SourceFile, _cfg: &Config, out: &mut Vec<Diagnostic>) {
    let toks = &f.scanned.tokens;
    for (i, t) in toks.iter().enumerate() {
        let Some(name) = ident_at(toks, i) else {
            continue;
        };
        if !f.is_lib_line(t.line) {
            continue;
        }
        if PANIC_MACROS.contains(&name) && punct_at(toks, i + 1, '!') {
            out.push(f.diag(
                "panic-hygiene",
                t,
                format!("`{name}!` in library code; return a typed error instead"),
            ));
        }
        if PANIC_METHODS.contains(&name) && is_method_call(toks, i) {
            // `self.expect(…)` is a method on the receiver's own type (the
            // SQL parser has one), not `Option::expect`.
            if i >= 2 && ident_at(toks, i - 2) == Some("self") {
                continue;
            }
            out.push(f.diag(
                "panic-hygiene",
                t,
                format!(
                    "`.{name}()` in library code; propagate the error or annotate the invariant"
                ),
            ));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::FileContext;

    fn run(src: &str) -> Vec<Diagnostic> {
        let f = SourceFile::new("crates/x/src/lib.rs", src, FileContext::Lib);
        let mut out = Vec::new();
        check(&f, &Config::default(), &mut out);
        out
    }

    #[test]
    fn flags_unwrap_expect_and_panic_macros() {
        let out = run("fn f() { x.unwrap(); y.expect(\"m\"); panic!(\"b\"); todo!(); }");
        let rules: Vec<_> = out.iter().map(|d| d.message.clone()).collect();
        assert_eq!(out.len(), 4, "{rules:?}");
    }

    #[test]
    fn self_expect_is_a_parser_method_not_option_expect() {
        assert!(run("fn f(&mut self) { self.expect(&TokenKind::Star)?; }").is_empty());
        // …but a field's expect still counts.
        assert_eq!(run("fn f(&self) { self.parent.expect(\"m\"); }").len(), 1);
    }

    #[test]
    fn test_regions_and_non_lib_contexts_are_exempt() {
        assert!(run("#[cfg(test)]\nmod tests { fn t() { x.unwrap(); } }").is_empty());
        let f = SourceFile::new(
            "src/bin/acq.rs",
            "fn main() { x.unwrap(); }",
            FileContext::Bin,
        );
        let mut out = Vec::new();
        check(&f, &Config::default(), &mut out);
        assert!(out.is_empty());
    }

    #[test]
    fn unwrap_in_strings_and_comments_is_ignored() {
        assert!(run("fn f() { let s = \"x.unwrap()\"; /* panic!() */ }").is_empty());
    }

    #[test]
    fn unwrap_or_variants_are_fine() {
        assert!(run("fn f() { x.unwrap_or_default(); x.unwrap_or_else(f); }").is_empty());
    }
}

//! The rule families and the per-file checking pipeline.
//!
//! Each rule is a function over a [`SourceFile`] — the scanned tokens plus
//! everything needed to scope a finding: the file's [`FileContext`], its
//! `#[cfg(test)]` regions, and the inline annotations parsed from comments.
//! Rules emit raw [`Diagnostic`]s; the caller applies the two escape
//! hatches (inline `lint-allow`, `lint.toml` `[allow]`) afterwards so
//! suppressed findings still appear in the report's `allowed` list.

pub mod atomics_audit;
pub mod commit_reachability;
pub mod determinism;
pub mod error_hygiene;
pub mod forbid_unsafe;
pub mod lock_order;
pub mod obs_discipline;
pub mod panic_hygiene;
pub mod suppression_audit;

use std::collections::{BTreeMap, BTreeSet};

use crate::config::Config;
use crate::context::{self, FileContext, LineRange};
use crate::lexer::{Scanned, Tok, Token};
use crate::report::Diagnostic;

/// Every rule family, in report order. `lint.toml`'s `[allow]` keys are
/// validated against this list. The last three are workspace-level rules
/// (they run over the call graph, not a single file).
pub const ALL: [&str; 9] = [
    "panic-hygiene",
    "determinism",
    "atomics-audit",
    "obs-discipline",
    "error-hygiene",
    "forbid-unsafe",
    "commit-reachability",
    "lock-order",
    "suppression-audit",
];

/// The kind of one inline annotation, for the suppression audit.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AnnKind {
    /// `lint-allow(<rule>)` with the rule name as written.
    LintAllow(String),
    /// `relaxed-ok` (satisfies atomics-audit).
    RelaxedOk,
    /// `worker-metric-ok` (satisfies obs-discipline's worker contract).
    WorkerMetricOk,
    /// `commit-io-ok` (satisfies commit-reachability).
    CommitIoOk,
}

impl AnnKind {
    /// The annotation spelling for diagnostics.
    #[must_use]
    pub fn spelling(&self) -> String {
        match self {
            Self::LintAllow(rule) => format!("lint-allow({rule})"),
            Self::RelaxedOk => "relaxed-ok".to_string(),
            Self::WorkerMetricOk => "worker-metric-ok".to_string(),
            Self::CommitIoOk => "commit-io-ok".to_string(),
        }
    }
}

/// One counted annotation with the position of its comment, so the
/// suppression audit can point at dead ones exactly.
#[derive(Debug, Clone)]
pub struct AnnRecord {
    /// What the annotation claims to suppress.
    pub kind: AnnKind,
    /// The line whose findings it covers (plus the line after).
    pub anchor: u32,
    /// 1-based line of the comment's opening delimiter.
    pub line: u32,
    /// 1-based column of the comment's opening delimiter.
    pub col: u32,
}

/// Inline escape-hatch annotations, indexed by the line they cover. An
/// annotation on line `L` covers findings on `L` (trailing comment) and
/// `L + 1` (comment on its own line above the code).
#[derive(Debug, Default)]
pub struct Annotations {
    lint_allow: BTreeMap<u32, Vec<String>>,
    relaxed_ok: BTreeSet<u32>,
    worker_metric_ok: BTreeSet<u32>,
    commit_io_ok: BTreeSet<u32>,
    /// Every counted annotation, in source order, for the audit.
    pub records: Vec<AnnRecord>,
}

impl Annotations {
    /// Parses annotations out of scanned comments. An annotation without a
    /// non-empty `: <reason>` does **not** count — the reason is the point.
    #[must_use]
    pub fn parse(scanned: &Scanned) -> Self {
        let mut a = Self::default();
        for c in &scanned.comments {
            // Doc comments (`///`, `//!`, `/**`, `/*!`) talk *about* the
            // annotation syntax; only plain comments can suppress.
            if matches!(c.text.as_bytes().get(2), Some(b'/' | b'!' | b'*')) {
                continue;
            }
            let anchor = c.end_line;
            let mut kinds: Vec<AnnKind> = Vec::new();
            if let Some(rest) = find_after(&c.text, "lint-allow(") {
                if let Some((rule, after)) = rest.split_once(')') {
                    if reason_present(after) {
                        a.lint_allow
                            .entry(anchor)
                            .or_default()
                            .push(rule.trim().to_string());
                        kinds.push(AnnKind::LintAllow(rule.trim().to_string()));
                    }
                }
            }
            if find_after(&c.text, "relaxed-ok").is_some_and(reason_present) {
                a.relaxed_ok.insert(anchor);
                kinds.push(AnnKind::RelaxedOk);
            }
            if find_after(&c.text, "worker-metric-ok").is_some_and(reason_present) {
                a.worker_metric_ok.insert(anchor);
                kinds.push(AnnKind::WorkerMetricOk);
            }
            if find_after(&c.text, "commit-io-ok").is_some_and(reason_present) {
                a.commit_io_ok.insert(anchor);
                kinds.push(AnnKind::CommitIoOk);
            }
            a.records.extend(kinds.into_iter().map(|kind| AnnRecord {
                kind,
                anchor,
                line: c.line,
                col: c.col,
            }));
        }
        a
    }

    fn covers(set: &BTreeSet<u32>, line: u32) -> bool {
        set.contains(&line) || (line > 1 && set.contains(&(line - 1)))
    }

    /// Whether a `lint-allow(rule)` annotation covers `line`.
    #[must_use]
    pub fn allows(&self, rule: &str, line: u32) -> bool {
        let hit = |l: u32| {
            self.lint_allow
                .get(&l)
                .is_some_and(|rules| rules.iter().any(|r| r == rule))
        };
        hit(line) || (line > 1 && hit(line - 1))
    }

    /// Whether a `relaxed-ok: <reason>` annotation covers `line`.
    #[must_use]
    pub fn relaxed_ok(&self, line: u32) -> bool {
        Self::covers(&self.relaxed_ok, line)
    }

    /// Whether a `worker-metric-ok: <reason>` annotation covers `line`.
    #[must_use]
    pub fn worker_metric_ok(&self, line: u32) -> bool {
        Self::covers(&self.worker_metric_ok, line)
    }

    /// Whether a `commit-io-ok: <reason>` annotation covers `line`.
    #[must_use]
    pub fn commit_io_ok(&self, line: u32) -> bool {
        Self::covers(&self.commit_io_ok, line)
    }
}

fn find_after<'a>(text: &'a str, needle: &str) -> Option<&'a str> {
    text.find(needle).map(|i| &text[i + needle.len()..])
}

/// `": reason"` with a non-empty reason after the colon.
fn reason_present(after: &str) -> bool {
    after
        .trim_start()
        .strip_prefix(':')
        .is_some_and(|r| !r.trim().is_empty())
}

/// One source file prepared for rule checking.
#[derive(Debug)]
pub struct SourceFile {
    /// Workspace-relative path with `/` separators.
    pub rel_path: String,
    /// Compilation context from the path.
    pub context: FileContext,
    /// Tokens and comments.
    pub scanned: Scanned,
    /// `#[cfg(test)]` line ranges.
    pub test_regions: Vec<LineRange>,
    /// Inline escape hatches.
    pub annotations: Annotations,
}

impl SourceFile {
    /// Prepares `text` for checking as `rel_path` in the given context.
    #[must_use]
    pub fn new(rel_path: &str, text: &str, context: FileContext) -> Self {
        let scanned = crate::lexer::scan(text);
        let test_regions = context::test_regions(&scanned);
        let annotations = Annotations::parse(&scanned);
        Self {
            rel_path: rel_path.to_string(),
            context,
            scanned,
            test_regions,
            annotations,
        }
    }

    /// Whether the token at `line` is library code: a lib-context file,
    /// outside any `#[cfg(test)]` region.
    #[must_use]
    pub fn is_lib_line(&self, line: u32) -> bool {
        self.context == FileContext::Lib && !context::in_regions(&self.test_regions, line)
    }

    /// Emits a diagnostic at token `t`.
    pub(crate) fn diag(&self, rule: &'static str, t: &Token, message: String) -> Diagnostic {
        self.diag_at(rule, t.line, t.col, message)
    }

    /// Emits a diagnostic at an explicit position (comment sites and other
    /// non-token anchors).
    pub(crate) fn diag_at(
        &self,
        rule: &'static str,
        line: u32,
        col: u32,
        message: String,
    ) -> Diagnostic {
        Diagnostic {
            rule,
            file: self.rel_path.clone(),
            line,
            col,
            message,
        }
    }
}

/// Runs every rule family over `file`, returning raw findings.
#[must_use]
pub fn check_file(file: &SourceFile, cfg: &Config) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    panic_hygiene::check(file, cfg, &mut out);
    determinism::check(file, cfg, &mut out);
    atomics_audit::check(file, cfg, &mut out);
    obs_discipline::check(file, cfg, &mut out);
    error_hygiene::check(file, cfg, &mut out);
    forbid_unsafe::check(file, cfg, &mut out);
    out
}

// ---- token-pattern helpers shared by the rule modules ---------------------

/// The identifier text at index `i`, if any.
pub(crate) fn ident_at(toks: &[Token], i: usize) -> Option<&str> {
    match toks.get(i).map(|t| &t.tok) {
        Some(Tok::Ident(s)) => Some(s.as_str()),
        _ => None,
    }
}

/// Whether token `i` is the punctuation `c`.
pub(crate) fn punct_at(toks: &[Token], i: usize, c: char) -> bool {
    matches!(toks.get(i).map(|t| &t.tok), Some(Tok::Punct(p)) if *p == c)
}

/// Whether tokens `i-2..i` spell `name::` (i.e. the ident at `i` is
/// qualified by `name`).
pub(crate) fn qualified_by(toks: &[Token], i: usize, name: &str) -> bool {
    i >= 3
        && punct_at(toks, i - 1, ':')
        && punct_at(toks, i - 2, ':')
        && ident_at(toks, i - 3) == Some(name)
}

/// Whether the ident at `i` is a method call: preceded by `.`, followed by
/// `(` (possibly with turbofish generics in between — not used by any
/// pattern here, so a plain `(` check is enough).
pub(crate) fn is_method_call(toks: &[Token], i: usize) -> bool {
    i >= 1 && punct_at(toks, i - 1, '.') && punct_at(toks, i + 1, '(')
}

/// Index of the matching `)` for the `(` at `open`.
pub(crate) fn matching_paren(toks: &[Token], open: usize) -> Option<usize> {
    let mut depth = 0i32;
    for (j, t) in toks.iter().enumerate().skip(open) {
        match t.tok {
            Tok::Punct('(') => depth += 1,
            Tok::Punct(')') => {
                depth -= 1;
                if depth == 0 {
                    return Some(j);
                }
            }
            _ => {}
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::scan;

    #[test]
    fn annotations_require_reasons() {
        let a = Annotations::parse(&scan(
            "// lint-allow(panic-hygiene): fixture invariant\n\
             x.unwrap();\n\
             y.fetch_add(1, Ordering::Relaxed); // relaxed-ok: monotone flag\n\
             z.unwrap(); // lint-allow(panic-hygiene):\n\
             w.load(Ordering::Relaxed); // relaxed-ok\n",
        ));
        assert!(a.allows("panic-hygiene", 2), "line-above coverage");
        assert!(a.relaxed_ok(3), "trailing coverage");
        assert!(!a.allows("panic-hygiene", 4), "empty reason rejected");
        assert!(!a.relaxed_ok(5), "missing colon rejected");
        assert!(!a.allows("determinism", 2), "rule names must match");
    }

    #[test]
    fn qualified_and_method_patterns() {
        let s = scan("Ordering::Relaxed; a.unwrap(); self.expect(x);");
        let toks = &s.tokens;
        let relaxed = toks
            .iter()
            .position(|t| t.tok == Tok::Ident("Relaxed".into()))
            .unwrap();
        assert!(qualified_by(toks, relaxed, "Ordering"));
        let unwrap = toks
            .iter()
            .position(|t| t.tok == Tok::Ident("unwrap".into()))
            .unwrap();
        assert!(is_method_call(toks, unwrap));
    }
}

//! **error-hygiene** — public error enums are `#[non_exhaustive]`.
//!
//! PR 1 grew `CoreError`/`EngineError` new variants (`Fault`,
//! `EvalPanicked`) without a breaking change only because both enums were
//! `#[non_exhaustive]`. Every `pub enum *Error` must keep that property:
//! downstream `match`es are forced to carry a wildcard arm, so the next
//! anytime/fault/termination variant ships without an API break.

use crate::config::Config;
use crate::lexer::Tok;
use crate::report::Diagnostic;

use super::{ident_at, punct_at, SourceFile};

/// Runs the rule over one file.
pub fn check(f: &SourceFile, _cfg: &Config, out: &mut Vec<Diagnostic>) {
    let toks = &f.scanned.tokens;
    for i in 0..toks.len() {
        if ident_at(toks, i) != Some("enum") {
            continue;
        }
        let Some(name) = ident_at(toks, i + 1) else {
            continue;
        };
        if !name.ends_with("Error") || !f.is_lib_line(toks[i].line) {
            continue;
        }
        // Only fully-public enums: `pub enum`, not `pub(crate) enum` (whose
        // `)` precedes `enum`) or a private one.
        if ident_at(toks, i.wrapping_sub(1)) != Some("pub") {
            continue;
        }
        if !has_non_exhaustive_attr(f, i - 1) {
            out.push(f.diag(
                "error-hygiene",
                &toks[i + 1],
                format!("public error enum `{name}` must be `#[non_exhaustive]`"),
            ));
        }
    }
}

/// Walks the attribute block immediately above the item starting at `item`
/// (the `pub` token), looking for `non_exhaustive` anywhere in it. Doc
/// comments are not tokens, so they never interrupt the walk.
fn has_non_exhaustive_attr(f: &SourceFile, item: usize) -> bool {
    let toks = &f.scanned.tokens;
    let mut end = item; // exclusive end of the preceding attribute block
    while end > 0 && punct_at(toks, end - 1, ']') {
        // Find the matching `[` backwards.
        let mut depth = 0i32;
        let mut j = end - 1;
        loop {
            match toks[j].tok {
                Tok::Punct(']') => depth += 1,
                Tok::Punct('[') => {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                _ => {}
            }
            if j == 0 {
                return false;
            }
            j -= 1;
        }
        if j == 0 || !punct_at(toks, j - 1, '#') {
            return false;
        }
        if (j..end).any(|k| ident_at(toks, k) == Some("non_exhaustive")) {
            return true;
        }
        end = j - 1;
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::FileContext;

    fn run(src: &str) -> Vec<Diagnostic> {
        let f = SourceFile::new("crates/x/src/error.rs", src, FileContext::Lib);
        let mut out = Vec::new();
        check(&f, &Config::default(), &mut out);
        out
    }

    #[test]
    fn bare_public_error_enum_is_flagged_at_its_name() {
        let out = run("/// Docs.\n#[derive(Debug, Clone)]\npub enum SqlError { Parse(String) }");
        assert_eq!(out.len(), 1);
        assert_eq!((out[0].line, out[0].col), (3, 10));
        assert!(out[0].message.contains("SqlError"));
    }

    #[test]
    fn non_exhaustive_in_any_attribute_position_passes() {
        assert!(run("#[derive(Debug)]\n#[non_exhaustive]\npub enum AError { X }").is_empty());
        assert!(run("#[non_exhaustive]\n#[derive(Debug)]\npub enum BError { X }").is_empty());
    }

    #[test]
    fn private_restricted_and_non_error_enums_are_ignored() {
        assert!(run("enum InnerError { X }").is_empty());
        assert!(run("pub(crate) enum CrateError { X }").is_empty());
        assert!(run("pub enum AggErrorFn { Absolute }").is_empty());
        assert!(run("pub enum TokenKind { Eof }").is_empty());
    }
}

//! **forbid-unsafe** — the workspace is `unsafe`-free, and stays that way.
//!
//! The whole reproduction is written in safe Rust (grep found zero `unsafe`
//! blocks when this rule landed), so the strongest cheap guarantee is to
//! lock it in: every crate root must carry `#![forbid(unsafe_code)]` —
//! which makes the *compiler* reject any future unsafe block, even behind
//! `#[allow]` — and the linter independently flags `unsafe` tokens in
//! lib/bin code as defence in depth (and so the diagnostic appears even in
//! files that are momentarily not compiled, e.g. behind a feature gate).

use crate::config::Config;
use crate::context::{is_crate_root, FileContext};
use crate::lexer::Token;
use crate::report::Diagnostic;

use super::{ident_at, punct_at, SourceFile};

/// Runs the rule over one file.
pub fn check(f: &SourceFile, _cfg: &Config, out: &mut Vec<Diagnostic>) {
    let toks = &f.scanned.tokens;
    if f.context == FileContext::Lib && is_crate_root(&f.rel_path) && !has_forbid_attr(f) {
        out.push(Diagnostic {
            rule: "forbid-unsafe",
            file: f.rel_path.clone(),
            line: 1,
            col: 1,
            message: "crate root is missing `#![forbid(unsafe_code)]`".to_string(),
        });
    }
    if matches!(f.context, FileContext::Lib | FileContext::Bin) {
        for (i, t) in toks.iter().enumerate() {
            if ident_at(toks, i) == Some("unsafe") && f.is_unsafe_relevant_line(t) {
                out.push(f.diag(
                    "forbid-unsafe",
                    t,
                    "`unsafe` is forbidden workspace-wide".to_string(),
                ));
            }
        }
    }
}

impl SourceFile {
    /// Bin files have no test-region exemption to speak of, but inline
    /// `#[cfg(test)]` modules in either context stay exempt for symmetry
    /// with the other rules.
    fn is_unsafe_relevant_line(&self, t: &Token) -> bool {
        !crate::context::in_regions(&self.test_regions, t.line)
    }
}

/// Scans for the inner attribute `#![forbid(unsafe_code)]` (possibly
/// listing several lints: `#![forbid(unsafe_code, missing_docs)]`).
fn has_forbid_attr(f: &SourceFile) -> bool {
    let toks = &f.scanned.tokens;
    for i in 0..toks.len() {
        if punct_at(toks, i, '#')
            && punct_at(toks, i + 1, '!')
            && punct_at(toks, i + 2, '[')
            && ident_at(toks, i + 3) == Some("forbid")
            && punct_at(toks, i + 4, '(')
        {
            let mut j = i + 5;
            while !punct_at(toks, j, ')') {
                if ident_at(toks, j) == Some("unsafe_code") {
                    return true;
                }
                if j >= toks.len() {
                    return false;
                }
                j += 1;
            }
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(path: &str, src: &str, context: FileContext) -> Vec<Diagnostic> {
        let f = SourceFile::new(path, src, context);
        let mut out = Vec::new();
        check(&f, &Config::default(), &mut out);
        out
    }

    #[test]
    fn crate_root_without_the_attribute_is_flagged_at_1_1() {
        let out = run(
            "crates/x/src/lib.rs",
            "//! Docs.\npub fn f() {}\n",
            FileContext::Lib,
        );
        assert_eq!(out.len(), 1);
        assert_eq!((out[0].line, out[0].col), (1, 1));
    }

    #[test]
    fn attribute_variants_satisfy() {
        for src in [
            "#![forbid(unsafe_code)]\npub fn f() {}\n",
            "//! Docs.\n#![deny(missing_docs)]\n#![forbid(unsafe_code)]\n",
            "#![forbid(unsafe_code, missing_docs)]\n",
        ] {
            assert!(
                run("crates/x/src/lib.rs", src, FileContext::Lib).is_empty(),
                "{src}"
            );
        }
    }

    #[test]
    fn non_root_files_need_no_attribute_but_no_unsafe_either() {
        assert!(run("crates/x/src/other.rs", "pub fn f() {}", FileContext::Lib).is_empty());
        let out = run(
            "crates/x/src/other.rs",
            "#![forbid(unsafe_code)]\npub fn f(p: *const u8) { unsafe { p.read() }; }",
            FileContext::Lib,
        );
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].line, 2);
    }

    #[test]
    fn unsafe_in_tests_or_strings_is_not_flagged() {
        assert!(run(
            "crates/x/src/other.rs",
            "#[cfg(test)]\nmod t { fn f() { unsafe {} } }",
            FileContext::Lib
        )
        .is_empty());
        assert!(run(
            "crates/x/src/other.rs",
            "fn f() { let s = \"unsafe\"; }",
            FileContext::Lib
        )
        .is_empty());
    }
}

//! **suppression-audit** — every escape hatch must still suppress
//! something.
//!
//! Suppressions rot: a refactor moves the offending call, the annotation
//! stays behind, and a year later nobody knows whether deleting it is safe.
//! This rule recomputes the workspace findings in a *raw* configuration —
//! inline annotations ignored, `[allow]` and the grant lists
//! (`clock_allowed`, `sleep_allowed`, `zone_stat_paths`,
//! `progress_sink_paths`) emptied — and then checks that:
//!
//! * every inline `lint-allow(<rule>)` / `relaxed-ok` / `worker-metric-ok`
//!   / `commit-io-ok` annotation covers at least one raw finding of the
//!   matching kind on its two covered lines;
//! * every `lint.toml` grant or `[allow]` prefix suppresses (or sanctions)
//!   at least one raw finding in a matching file;
//! * every obligation prefix (`ordered_paths`, `worker_paths`) still
//!   matches at least one scanned library file, and every
//!   `[commit-reachability]` root still resolves to at least one function.
//!
//! Dead entries are errors at the annotation's own `file:line:col` (or the
//! `lint.toml` line). The committed findings baseline (`lint-baseline.json`)
//! ratchets the surviving suppression counts downward in CI.

use crate::config::Config;
use crate::context::in_regions;
use crate::report::Diagnostic;
use crate::rules::{self, AnnKind, Annotations, SourceFile};
use crate::Workspace;

use super::{commit_reachability, lock_order};

/// Runs the audit over the whole workspace.
pub fn check(ws: &Workspace, cfg: &Config, out: &mut Vec<Diagnostic>) {
    let raw = raw_findings(ws, cfg);

    // Inline annotations: each must cover a matching raw finding.
    for f in &ws.files {
        if f.context != crate::FileContext::Lib {
            continue;
        }
        for rec in &f.annotations.records {
            if in_regions(&f.test_regions, rec.anchor) {
                continue;
            }
            if let AnnKind::LintAllow(rule) = &rec.kind {
                if rule == "suppression-audit" {
                    continue; // auditing the audit would be circular
                }
            }
            let live = raw.iter().any(|d| {
                d.file == f.rel_path && covered(rec.anchor, d.line) && kind_matches(&rec.kind, d)
            });
            if !live {
                out.push(f.diag_at(
                    "suppression-audit",
                    rec.line,
                    rec.col,
                    format!(
                        "dead suppression: `{}` covers lines {}\u{2013}{} but no {} finding \
                         fires there any more; remove the annotation",
                        rec.kind.spelling(),
                        rec.anchor,
                        rec.anchor + 1,
                        kind_rule(&rec.kind),
                    ),
                ));
            }
        }
    }

    // lint.toml entries: prefixes must still bite.
    for e in &cfg.entries {
        let live = match (e.section.as_str(), e.key.as_str()) {
            ("allow", rule) => {
                rule == "suppression-audit"
                    || raw
                        .iter()
                        .any(|d| d.rule == rule && d.file.starts_with(&e.value))
            }
            ("determinism", "clock_allowed") => raw.iter().any(|d| {
                d.rule == "determinism"
                    && d.message.contains("wall-clock")
                    && d.file.starts_with(&e.value)
            }),
            ("determinism", "sleep_allowed") => raw.iter().any(|d| {
                d.rule == "determinism"
                    && d.message.contains("sleep")
                    && d.file.starts_with(&e.value)
            }),
            ("obs-discipline", "zone_stat_paths") => raw.iter().any(|d| {
                d.rule == "obs-discipline"
                    && d.message.contains("zone counter")
                    && d.file.starts_with(&e.value)
            }),
            ("obs-discipline", "progress_sink_paths") => raw.iter().any(|d| {
                d.rule == "obs-discipline"
                    && d.message.contains("progress sink push")
                    && d.file.starts_with(&e.value)
            }),
            // Obligations: they must still point at something real.
            ("determinism", "ordered_paths") | ("obs-discipline", "worker_paths") => ws
                .files
                .iter()
                .any(|f| f.context == crate::FileContext::Lib && f.rel_path.starts_with(&e.value)),
            ("commit-reachability", "roots") => {
                let one = Config {
                    commit_roots: vec![e.value.clone()],
                    ..Config::default()
                };
                !commit_reachability::resolve_roots(ws, &one).is_empty()
            }
            _ => true,
        };
        if !live {
            out.push(Diagnostic {
                rule: "suppression-audit",
                file: "lint.toml".to_string(),
                line: e.line,
                col: 1,
                message: format!(
                    "stale lint.toml entry: [{}] {} = \"{}\" no longer suppresses, grants or \
                     matches anything; remove it",
                    e.section, e.key, e.value
                ),
            });
        }
    }
}

/// Whether an annotation anchored at `anchor` covers a finding at `line`.
fn covered(anchor: u32, line: u32) -> bool {
    line == anchor || line == anchor + 1
}

/// The rule family an annotation kind suppresses, for diagnostics.
fn kind_rule(kind: &AnnKind) -> &str {
    match kind {
        AnnKind::LintAllow(rule) => rule,
        AnnKind::RelaxedOk => "atomics-audit",
        AnnKind::WorkerMetricOk => "obs-discipline",
        AnnKind::CommitIoOk => "commit-reachability",
    }
}

/// Whether a raw finding is of the kind an annotation suppresses.
fn kind_matches(kind: &AnnKind, d: &Diagnostic) -> bool {
    match kind {
        AnnKind::LintAllow(rule) => d.rule == rule.as_str(),
        AnnKind::RelaxedOk => d.rule == "atomics-audit",
        AnnKind::WorkerMetricOk => {
            d.rule == "obs-discipline" && d.message.contains("metric commit")
        }
        AnnKind::CommitIoOk => d.rule == "commit-reachability",
    }
}

/// Recomputes every finding with annotations ignored and the grant lists
/// emptied — the maximal finding set a suppression could possibly cover.
fn raw_findings(ws: &Workspace, cfg: &Config) -> Vec<Diagnostic> {
    let audit_cfg = Config {
        allow: Default::default(),
        ordered_paths: cfg.ordered_paths.clone(),
        clock_allowed: Vec::new(),
        sleep_allowed: Vec::new(),
        worker_paths: cfg.worker_paths.clone(),
        commit_roots: cfg.commit_roots.clone(),
        zone_stat_paths: Vec::new(),
        progress_sink_paths: Vec::new(),
        entries: Vec::new(),
    };
    let mut raw = Vec::new();
    for f in &ws.files {
        let shadow = SourceFile {
            rel_path: f.rel_path.clone(),
            context: f.context,
            scanned: f.scanned.clone(),
            test_regions: f.test_regions.clone(),
            annotations: Annotations::default(),
        };
        raw.extend(rules::check_file(&shadow, &audit_cfg));
    }
    commit_reachability::check(ws, &audit_cfg, &mut raw);
    lock_order::check(ws, &audit_cfg, &mut raw);
    raw
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::FileContext;

    fn ws(srcs: &[(&str, &str)]) -> Workspace {
        Workspace::new(
            srcs.iter()
                .map(|(p, s)| SourceFile::new(p, s, FileContext::Lib))
                .collect(),
        )
    }

    #[test]
    fn live_annotations_pass_dead_ones_fail_with_exact_positions() {
        let w = ws(&[(
            "crates/x/src/a.rs",
            "fn live() { x.unwrap(); // lint-allow(panic-hygiene): invariant holds\n}\n\
             fn dead() { y.checked(); // lint-allow(panic-hygiene): stale since the refactor\n}\n",
        )]);
        let mut out = Vec::new();
        check(&w, &Config::default(), &mut out);
        assert_eq!(out.len(), 1, "{out:?}");
        assert_eq!((out[0].line, out[0].col), (3, 26));
        assert!(
            out[0].message.contains("dead suppression"),
            "{}",
            out[0].message
        );
        assert!(
            out[0].message.contains("panic-hygiene"),
            "{}",
            out[0].message
        );
    }

    #[test]
    fn relaxed_ok_must_cover_a_relaxed_site() {
        let w = ws(&[(
            "crates/x/src/a.rs",
            "fn f() { c.fetch_add(1, Ordering::Relaxed); // relaxed-ok: monotone tally\n}\n\
             fn g() { plain(); // relaxed-ok: nothing relaxed here\n}\n",
        )]);
        let mut out = Vec::new();
        check(&w, &Config::default(), &mut out);
        assert_eq!(out.len(), 1, "{out:?}");
        assert_eq!(out[0].line, 3);
    }

    #[test]
    fn stale_config_prefixes_point_at_their_toml_lines() {
        let cfg = Config::parse(
            "[allow]\npanic-hygiene = [\"crates/gone/\"]\n\
             [determinism]\nclock_allowed = [\"crates/x/src/a.rs\"]\n",
        )
        .unwrap();
        let w = ws(&[("crates/x/src/a.rs", "fn f() { let t = Instant::now(); }\n")]);
        let mut out = Vec::new();
        check(&w, &cfg, &mut out);
        // The clock grant is live (a.rs reads a clock); the panic-hygiene
        // allow for a vanished directory is stale.
        assert_eq!(out.len(), 1, "{out:?}");
        assert_eq!((out[0].file.as_str(), out[0].line), ("lint.toml", 2));
        assert!(
            out[0].message.contains("crates/gone/"),
            "{}",
            out[0].message
        );
    }

    #[test]
    fn annotations_in_test_regions_are_not_audited() {
        let w = ws(&[(
            "crates/x/src/a.rs",
            "fn live() {}\n#[cfg(test)]\nmod tests {\n\
             // lint-allow(panic-hygiene): rules are inert here anyway\n\
             fn t() { x.unwrap(); }\n}\n",
        )]);
        let mut out = Vec::new();
        check(&w, &Config::default(), &mut out);
        assert!(out.is_empty(), "{out:?}");
    }

    #[test]
    fn commit_io_ok_needs_a_reachable_blocking_site() {
        let cfg = Config::parse("[commit-reachability]\nroots = [\"crates/x/src/a.rs::emit\"]\n")
            .unwrap();
        let w = ws(&[(
            "crates/x/src/a.rs",
            "pub fn emit() { let g = STATE.lock(); // commit-io-ok: cold init, bounded\n}\n\
             pub fn off_path() { tally(); // commit-io-ok: nothing blocking here\n}\n\
             fn tally() {}\n",
        )]);
        let mut out = Vec::new();
        check(&w, &cfg, &mut out);
        assert_eq!(out.len(), 1, "{out:?}");
        assert_eq!(out[0].line, 3);
    }
}

//! A Rust token scanner good enough for invariant linting.
//!
//! Follows the same hand-rolled approach as `acq-sql`'s SQL lexer: a single
//! forward pass over the bytes, no lookahead tables, no external crates. The
//! scanner does **not** attempt full fidelity with rustc — it only needs to
//! distinguish identifiers, literals and punctuation reliably enough that
//! rule patterns never fire inside strings, comments or doc text, and to
//! report accurate 1-based `line:col` positions for the tokens it emits.
//!
//! Comments are not discarded: they are collected into a side channel so the
//! rules can honour inline escape hatches such as
//! `// lint-allow(<rule>): <reason>` and `// relaxed-ok: <reason>`.

/// What a scanned token is.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Tok {
    /// Identifier or keyword (`unwrap`, `pub`, `HashMap`, `unsafe`, …).
    Ident(String),
    /// Lifetime (`'a`, `'static`); kept distinct so `'a'` char literals and
    /// lifetimes never confuse the rules.
    Lifetime(String),
    /// Numeric literal, verbatim spelling.
    Number(String),
    /// Any string, raw-string, byte-string or char literal. The content is
    /// deliberately dropped: no rule may ever match inside a literal.
    Literal,
    /// A single punctuation character (`::` is two `Punct(':')` tokens).
    Punct(char),
}

/// A token plus its 1-based source position.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    /// The token itself.
    pub tok: Tok,
    /// 1-based line.
    pub line: u32,
    /// 1-based byte column.
    pub col: u32,
}

/// A comment (line or block) with the position of its opening delimiter.
/// Doc comments (`///`, `//!`) are comments too.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Comment {
    /// Full comment text including delimiters.
    pub text: String,
    /// 1-based line of the opening delimiter.
    pub line: u32,
    /// 1-based byte column of the opening delimiter.
    pub col: u32,
    /// 1-based line of the closing delimiter (differs for block comments).
    pub end_line: u32,
}

/// The result of scanning one source file.
#[derive(Debug, Default, Clone)]
pub struct Scanned {
    /// Significant tokens in source order.
    pub tokens: Vec<Token>,
    /// All comments in source order.
    pub comments: Vec<Comment>,
}

struct Scanner<'a> {
    bytes: &'a [u8],
    pos: usize,
    line: u32,
    col: u32,
}

impl<'a> Scanner<'a> {
    fn new(text: &'a str) -> Self {
        Self {
            bytes: text.as_bytes(),
            pos: 0,
            line: 1,
            col: 1,
        }
    }

    fn peek(&self, ahead: usize) -> Option<u8> {
        self.bytes.get(self.pos + ahead).copied()
    }

    /// Advances one byte, maintaining the line/col cursor.
    fn bump(&mut self) {
        if self.bytes.get(self.pos) == Some(&b'\n') {
            self.line += 1;
            self.col = 1;
        } else {
            self.col += 1;
        }
        self.pos += 1;
    }

    fn bump_n(&mut self, n: usize) {
        for _ in 0..n {
            self.bump();
        }
    }

    fn take_while(&mut self, pred: impl Fn(u8) -> bool) -> String {
        let start = self.pos;
        while let Some(b) = self.peek(0) {
            if pred(b) {
                self.bump();
            } else {
                break;
            }
        }
        String::from_utf8_lossy(&self.bytes[start..self.pos]).into_owned()
    }
}

fn is_ident_start(b: u8) -> bool {
    b.is_ascii_alphabetic() || b == b'_' || b >= 0x80
}

fn is_ident_continue(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_' || b >= 0x80
}

/// Scans `text` into tokens and comments. Never fails: malformed input
/// degrades to punctuation tokens, which at worst makes a rule miss — the
/// compiler, not the linter, owns syntax errors.
pub fn scan(text: &str) -> Scanned {
    let mut s = Scanner::new(text);
    let mut out = Scanned::default();

    while let Some(b) = s.peek(0) {
        let (line, col) = (s.line, s.col);
        match b {
            b' ' | b'\t' | b'\r' | b'\n' => s.bump(),
            b'/' if s.peek(1) == Some(b'/') => {
                let text = s.take_while(|b| b != b'\n');
                out.comments.push(Comment {
                    text,
                    line,
                    col,
                    end_line: line,
                });
            }
            b'/' if s.peek(1) == Some(b'*') => {
                let start = s.pos;
                s.bump_n(2);
                let mut depth = 1u32;
                while depth > 0 {
                    match (s.peek(0), s.peek(1)) {
                        (Some(b'/'), Some(b'*')) => {
                            depth += 1;
                            s.bump_n(2);
                        }
                        (Some(b'*'), Some(b'/')) => {
                            depth -= 1;
                            s.bump_n(2);
                        }
                        (Some(_), _) => s.bump(),
                        (None, _) => break,
                    }
                }
                out.comments.push(Comment {
                    text: String::from_utf8_lossy(&s.bytes[start..s.pos]).into_owned(),
                    line,
                    col,
                    end_line: s.line,
                });
            }
            b'"' => {
                lex_string(&mut s);
                out.tokens.push(Token {
                    tok: Tok::Literal,
                    line,
                    col,
                });
            }
            b'\'' => {
                let tok = lex_quote(&mut s);
                out.tokens.push(Token { tok, line, col });
            }
            b'0'..=b'9' => {
                let text = lex_number(&mut s);
                out.tokens.push(Token {
                    tok: Tok::Number(text),
                    line,
                    col,
                });
            }
            b if is_ident_start(b) => {
                // Raw strings (`r"…"`, `r#"…"#`), byte strings (`b"…"`,
                // `br#"…"#`) and byte chars (`b'x'`) start with what looks
                // like an identifier; raw identifiers (`r#type`) also start
                // with `r#`. Disambiguate before committing to an ident.
                if let Some(tok) = lex_prefixed_literal(&mut s) {
                    out.tokens.push(Token { tok, line, col });
                } else {
                    let text = s.take_while(is_ident_continue);
                    out.tokens.push(Token {
                        tok: Tok::Ident(text),
                        line,
                        col,
                    });
                }
            }
            other => {
                s.bump();
                out.tokens.push(Token {
                    tok: Tok::Punct(other as char),
                    line,
                    col,
                });
            }
        }
    }
    out
}

/// Consumes a `"…"` string (opening quote under the cursor), honouring
/// backslash escapes.
fn lex_string(s: &mut Scanner<'_>) {
    s.bump(); // opening quote
    while let Some(b) = s.peek(0) {
        match b {
            b'\\' => s.bump_n(2),
            b'"' => {
                s.bump();
                return;
            }
            _ => s.bump(),
        }
    }
}

/// Consumes a `'` and decides between a char literal and a lifetime.
fn lex_quote(s: &mut Scanner<'_>) -> Tok {
    s.bump(); // the quote
    match s.peek(0) {
        // Escaped char: '\n', '\'', '\u{…}'.
        Some(b'\\') => {
            s.bump_n(2);
            // Consume up to the closing quote (covers \u{…}).
            while let Some(b) = s.peek(0) {
                s.bump();
                if b == b'\'' {
                    break;
                }
            }
            Tok::Literal
        }
        Some(b) if is_ident_start(b) => {
            let name = s.take_while(is_ident_continue);
            if s.peek(0) == Some(b'\'') {
                // 'a' — a char literal whose payload scanned as an ident.
                s.bump();
                Tok::Literal
            } else {
                Tok::Lifetime(name)
            }
        }
        // Any other single char ('.', '(', …) up to the closing quote.
        _ => {
            while let Some(b) = s.peek(0) {
                s.bump();
                if b == b'\'' {
                    break;
                }
            }
            Tok::Literal
        }
    }
}

/// Consumes a numeric literal: decimal/hex/octal/binary digits, `_`
/// separators, one fractional part, exponents and type suffixes.
fn lex_number(s: &mut Scanner<'_>) -> String {
    let start = s.pos;
    // Integer part, radix prefixes and type suffixes are all covered by the
    // alphanumeric class (`0xFF`, `1_000u64`, `1e9`).
    s.take_while(|b| b.is_ascii_alphanumeric() || b == b'_');
    // One fractional part — only when followed by a digit, so `0..10` and
    // `1.max(2)` keep their dots as punctuation.
    if s.peek(0) == Some(b'.') && s.peek(1).is_some_and(|b| b.is_ascii_digit()) {
        s.bump();
        s.take_while(|b| b.is_ascii_alphanumeric() || b == b'_');
    }
    // Signed exponent (`1e-9`): the sign stops the alphanumeric scan above.
    if matches!(s.bytes.get(s.pos.wrapping_sub(1)), Some(b'e' | b'E'))
        && matches!(s.peek(0), Some(b'+' | b'-'))
        && s.peek(1).is_some_and(|b| b.is_ascii_digit())
    {
        s.bump();
        s.take_while(|b| b.is_ascii_alphanumeric() || b == b'_');
    }
    String::from_utf8_lossy(&s.bytes[start..s.pos]).into_owned()
}

/// Handles literals that begin with an identifier-looking prefix: raw
/// strings, byte strings, byte chars, and raw identifiers. Returns `None`
/// when the cursor is at a plain identifier.
fn lex_prefixed_literal(s: &mut Scanner<'_>) -> Option<Tok> {
    let b0 = s.peek(0)?;
    match (b0, s.peek(1), s.peek(2)) {
        // b'x' byte char.
        (b'b', Some(b'\''), _) => {
            s.bump();
            Some(lex_quote(s))
        }
        // b"…" byte string.
        (b'b', Some(b'"'), _) => {
            s.bump();
            lex_string(s);
            Some(Tok::Literal)
        }
        // r"…" | r#"…"# | r#ident | br"…" | br#"…"#.
        (b'r', Some(b'"'), _)
        | (b'r', Some(b'#'), _)
        | (b'b', Some(b'r'), Some(b'"'))
        | (b'b', Some(b'r'), Some(b'#')) => {
            let prefix = if b0 == b'b' { 2 } else { 1 };
            let mut hashes = 0usize;
            while s.peek(prefix + hashes) == Some(b'#') {
                hashes += 1;
            }
            if s.peek(prefix + hashes) != Some(b'"') {
                if prefix == 1 && hashes >= 1 {
                    // r#ident — a raw identifier, not a literal.
                    s.bump_n(1 + hashes);
                    let name = s.take_while(is_ident_continue);
                    return Some(Tok::Ident(name));
                }
                return None;
            }
            s.bump_n(prefix + hashes + 1);
            // Scan to `"` followed by `hashes` hash marks.
            'outer: while let Some(b) = s.peek(0) {
                if b == b'"' {
                    for h in 0..hashes {
                        if s.peek(1 + h) != Some(b'#') {
                            s.bump();
                            continue 'outer;
                        }
                    }
                    s.bump_n(1 + hashes);
                    break;
                }
                s.bump();
            }
            Some(Tok::Literal)
        }
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(text: &str) -> Vec<String> {
        scan(text)
            .tokens
            .into_iter()
            .filter_map(|t| match t.tok {
                Tok::Ident(s) => Some(s),
                _ => None,
            })
            .collect()
    }

    #[test]
    fn positions_are_one_based_lines_and_cols() {
        let s = scan("fn main() {\n    x.unwrap();\n}\n");
        let unwrap = s
            .tokens
            .iter()
            .find(|t| t.tok == Tok::Ident("unwrap".into()))
            .unwrap();
        assert_eq!((unwrap.line, unwrap.col), (2, 7));
    }

    #[test]
    fn strings_and_chars_never_leak_idents() {
        assert_eq!(
            idents(r#"let s = "unwrap panic HashMap"; let c = 'u';"#),
            vec!["let", "s", "let", "c"]
        );
    }

    #[test]
    fn raw_strings_with_hashes() {
        assert_eq!(
            idents(r###"let s = r#"a "quoted" unwrap"#; done"###),
            vec!["let", "s", "done"]
        );
        assert_eq!(
            idents(r#"let b = br"bytes unwrap"; done"#),
            vec!["let", "b", "done"]
        );
    }

    #[test]
    fn raw_identifiers_are_idents() {
        assert_eq!(idents("let r#type = 1;"), vec!["let", "type"]);
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        let s = scan("fn f<'a>(x: &'a str) -> char { 'a' }");
        let lifetimes: Vec<_> = s
            .tokens
            .iter()
            .filter(|t| matches!(t.tok, Tok::Lifetime(_)))
            .collect();
        assert_eq!(lifetimes.len(), 2);
        assert!(s.tokens.iter().any(|t| t.tok == Tok::Literal));
    }

    #[test]
    fn comments_are_captured_with_lines() {
        let s = scan("// one\nlet x = 1; // two\n/* three\nspans */ let y = 2;\n");
        assert_eq!(s.comments.len(), 3);
        assert_eq!(s.comments[0].line, 1);
        assert_eq!(s.comments[1].line, 2);
        assert_eq!((s.comments[2].line, s.comments[2].end_line), (3, 4));
        // Comment text never becomes tokens.
        assert_eq!(idents("// unwrap\n/* panic */"), Vec::<String>::new());
    }

    #[test]
    fn nested_block_comments() {
        let s = scan("/* a /* b */ c */ let x = 1;");
        assert_eq!(s.comments.len(), 1);
        assert_eq!(idents("/* a /* b */ c */ let x = 1;"), vec!["let", "x"]);
    }

    #[test]
    fn numbers_keep_dots_out_of_ranges_and_methods() {
        let s = scan("0..10 1.max(2) 1.5e-3 0xFFu32");
        let nums: Vec<_> = s
            .tokens
            .iter()
            .filter_map(|t| match &t.tok {
                Tok::Number(n) => Some(n.as_str()),
                _ => None,
            })
            .collect();
        assert_eq!(nums, vec!["0", "10", "1", "2", "1.5e-3", "0xFFu32"]);
    }

    #[test]
    fn escaped_char_literals() {
        assert_eq!(
            idents(r"let c = '\n'; let u = '\u{1F600}'; done"),
            vec!["let", "c", "let", "u", "done"]
        );
    }

    // ---- edge cases the call-graph parser leans on -----------------------

    #[test]
    fn raw_strings_with_fences_never_leak_fn_items() {
        // A `fn ` inside a fenced raw string must not look like an item to
        // the index; the whole literal collapses to one `Tok::Literal`.
        let src = r####"let s = r##"fn not_an_item() { a.lock(); }"##; fn real() {}"####;
        assert_eq!(idents(src), vec!["let", "s", "fn", "real"]);
        // An inner `"#` sequence with too few hashes does not terminate.
        let src = r####"let s = r##"has "# inside"##; fn after() {}"####;
        assert_eq!(idents(src), vec!["let", "s", "fn", "after"]);
    }

    #[test]
    fn nested_block_comments_containing_quotes() {
        // Quotes inside comments never open string literals, so the
        // comment's `*/` terminators keep their meaning (rustc nests block
        // comments without string-awareness, and so do we).
        let s = scan("/* outer \" /* inner ' */ still \" comment */ fn live() {}");
        assert_eq!(s.comments.len(), 1);
        assert_eq!(
            idents("/* \" /* ' */ \" */ fn live() {}"),
            vec!["fn", "live"]
        );
    }

    #[test]
    fn lifetime_vs_char_literal_inside_generic_args() {
        // `Vec<'a>` keeps a lifetime, `Some('a')` keeps a char literal, and
        // a lifetime bound list mixes both shapes on one line.
        let s = scan("fn f<'g, T: Iter<'g>>(x: Map<'g, char>) { take(Some('g')); }");
        let lifetimes = s
            .tokens
            .iter()
            .filter(|t| matches!(&t.tok, Tok::Lifetime(n) if n == "g"))
            .count();
        assert_eq!(lifetimes, 3, "three `'g` lifetimes: {:?}", s.tokens);
        assert_eq!(
            s.tokens.iter().filter(|t| t.tok == Tok::Literal).count(),
            1,
            "one 'g' char literal"
        );
    }

    #[test]
    fn raw_fn_identifiers_are_idents_not_items() {
        // `r#fn` is an identifier spelled like a keyword: it must come back
        // as `Ident("fn")` at the right position, and downstream item
        // parsing is expected to treat `self.r#fn()` call sites by token
        // shape, not by the `fn` spelling alone.
        let s = scan("let r#fn = 1; obj.r#fn();");
        let fns: Vec<_> = s
            .tokens
            .iter()
            .filter(|t| t.tok == Tok::Ident("fn".into()))
            .collect();
        assert_eq!(fns.len(), 2);
        assert_eq!((fns[0].line, fns[0].col), (1, 5));
        // `r#` consumes into the ident; no stray `#` punctuation survives.
        assert!(!s.tokens.iter().any(|t| t.tok == Tok::Punct('#')));
    }

    #[test]
    fn comments_carry_columns() {
        let s = scan("let x = 1; // trailing\n    /* indented */\n");
        assert_eq!((s.comments[0].line, s.comments[0].col), (1, 12));
        assert_eq!((s.comments[1].line, s.comments[1].col), (2, 5));
    }
}

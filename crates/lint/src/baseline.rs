//! The suppression ratchet (`lint-baseline.json`).
//!
//! The committed baseline records, per rule, how many findings survive as
//! violations and how many an escape hatch absorbed. CI regenerates the
//! counts from the current report and compares: **counts may only go
//! down**. A new suppression — inline annotation or `lint.toml` prefix —
//! shows up as an `allowed` count going up and fails the ratchet, so every
//! new escape hatch is a deliberate, reviewed baseline update
//! (`acq-lint --write-baseline`), never a drive-by. Paired with the
//! `suppression-audit` rule (dead hatches are errors) the suppression
//! population is squeezed from both ends.
//!
//! The parser covers exactly the JSON this module writes, in the same
//! zero-dependency spirit as the `lint.toml` parser.

use std::collections::BTreeMap;

use crate::report::{escape, Report};
use crate::rules;

/// Per-rule finding counts.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Counts {
    /// Findings that survived every escape hatch.
    pub violations: u64,
    /// Findings an inline annotation or `lint.toml` absorbed.
    pub allowed: u64,
}

/// The committed per-rule counts.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Baseline {
    /// Counts keyed by rule name; rules with zero findings are included so
    /// the file is self-describing.
    pub rules: BTreeMap<String, Counts>,
}

impl Baseline {
    /// Tallies the current report into a baseline.
    #[must_use]
    pub fn from_report(report: &Report) -> Self {
        let mut rules_map: BTreeMap<String, Counts> = rules::ALL
            .iter()
            .map(|r| ((*r).to_string(), Counts::default()))
            .collect();
        for d in &report.violations {
            rules_map.entry(d.rule.to_string()).or_default().violations += 1;
        }
        for a in &report.allowed {
            rules_map
                .entry(a.diagnostic.rule.to_string())
                .or_default()
                .allowed += 1;
        }
        Self { rules: rules_map }
    }

    /// Renders the committed JSON form.
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n  \"version\": 1,\n  \"rules\": {\n");
        let last = self.rules.len().saturating_sub(1);
        for (i, (rule, c)) in self.rules.iter().enumerate() {
            out.push_str(&format!(
                "    \"{}\": {{ \"violations\": {}, \"allowed\": {} }}{}\n",
                escape(rule),
                c.violations,
                c.allowed,
                if i < last { "," } else { "" }
            ));
        }
        out.push_str("  }\n}\n");
        out
    }

    /// Parses the committed JSON form.
    pub fn parse(text: &str) -> Result<Self, String> {
        let rules_start = text
            .find("\"rules\"")
            .ok_or_else(|| "missing \"rules\" object".to_string())?;
        let mut rest = &text[rules_start + "\"rules\"".len()..];
        rest = rest
            .trim_start()
            .strip_prefix(':')
            .and_then(|r| r.trim_start().strip_prefix('{'))
            .ok_or_else(|| "\"rules\" is not an object".to_string())?;
        let mut rules_map = BTreeMap::new();
        loop {
            rest = rest.trim_start();
            if rest.starts_with('}') {
                break;
            }
            rest = rest.strip_prefix(',').unwrap_or(rest).trim_start();
            let (rule, after_key) = parse_string(rest)?;
            rest = after_key
                .trim_start()
                .strip_prefix(':')
                .ok_or_else(|| format!("{rule}: expected `:`"))?;
            let (violations, r) = parse_field(rest, "violations")?;
            let (allowed_count, r) = parse_field(r, "allowed")?;
            rest = r
                .trim_start()
                .strip_prefix('}')
                .ok_or_else(|| format!("{rule}: unterminated counts object"))?;
            rules_map.insert(
                rule,
                Counts {
                    violations,
                    allowed: allowed_count,
                },
            );
        }
        Ok(Self { rules: rules_map })
    }

    /// The ratchet: every count in `current` must be `<=` the committed
    /// count. Returns one message per regression, empty when the ratchet
    /// holds. Rules absent from the committed baseline start at zero.
    #[must_use]
    pub fn regressions(&self, current: &Self) -> Vec<String> {
        let mut out = Vec::new();
        for (rule, now) in &current.rules {
            let base = self.rules.get(rule).copied().unwrap_or_default();
            if now.violations > base.violations {
                out.push(format!(
                    "{rule}: violations went {} -> {} (baseline ratchet only goes down)",
                    base.violations, now.violations
                ));
            }
            if now.allowed > base.allowed {
                out.push(format!(
                    "{rule}: suppressed findings went {} -> {}; new escape hatches need a \
                     reviewed `--write-baseline` update",
                    base.allowed, now.allowed
                ));
            }
        }
        out
    }
}

/// Parses a leading `"string"`, returning it and the remainder.
fn parse_string(s: &str) -> Result<(String, &str), String> {
    let body = s
        .strip_prefix('"')
        .ok_or_else(|| format!("expected a string at {:?}", &s[..s.len().min(20)]))?;
    let end = body
        .find('"')
        .ok_or_else(|| "unterminated string".to_string())?;
    Ok((body[..end].to_string(), &body[end + 1..]))
}

/// Parses `{ "name": 123` (first field) or `, "name": 123` and returns the
/// number plus the remainder after it.
fn parse_field<'a>(s: &'a str, name: &str) -> Result<(u64, &'a str), String> {
    let s = s.trim_start();
    let s = s
        .strip_prefix('{')
        .or_else(|| s.strip_prefix(','))
        .map_or(s, str::trim_start);
    let (key, rest) = parse_string(s)?;
    if key != name {
        return Err(format!("expected field {name:?}, found {key:?}"));
    }
    let rest = rest
        .trim_start()
        .strip_prefix(':')
        .ok_or_else(|| format!("{name}: expected `:`"))?
        .trim_start();
    let digits: String = rest.chars().take_while(char::is_ascii_digit).collect();
    if digits.is_empty() {
        return Err(format!("{name}: expected a number"));
    }
    let value = digits.parse::<u64>().map_err(|e| format!("{name}: {e}"))?;
    Ok((value, &rest[digits.len()..]))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::report::{Allowed, AllowedBy, Diagnostic};

    fn report(v: &[&'static str], a: &[&'static str]) -> Report {
        let diag = |rule: &'static str| Diagnostic {
            rule,
            file: "crates/x/src/a.rs".to_string(),
            line: 1,
            col: 1,
            message: "m".to_string(),
        };
        Report {
            files_scanned: 1,
            violations: v.iter().map(|r| diag(r)).collect(),
            allowed: a
                .iter()
                .map(|r| Allowed {
                    diagnostic: diag(r),
                    by: AllowedBy::Inline,
                })
                .collect(),
        }
    }

    #[test]
    fn roundtrips_through_json() {
        let b = Baseline::from_report(&report(
            &["panic-hygiene"],
            &["atomics-audit", "atomics-audit", "commit-reachability"],
        ));
        let parsed = Baseline::parse(&b.to_json()).unwrap();
        assert_eq!(parsed, b);
        assert_eq!(parsed.rules["atomics-audit"].allowed, 2);
        assert_eq!(parsed.rules["panic-hygiene"].violations, 1);
        // Every rule appears even at zero.
        assert_eq!(parsed.rules.len(), crate::rules::ALL.len());
    }

    #[test]
    fn ratchet_flags_only_increases() {
        let base = Baseline::from_report(&report(&[], &["atomics-audit", "atomics-audit"]));
        let fewer = Baseline::from_report(&report(&[], &["atomics-audit"]));
        assert!(base.regressions(&fewer).is_empty(), "going down is fine");
        let more = Baseline::from_report(&report(
            &[],
            &["atomics-audit", "atomics-audit", "atomics-audit"],
        ));
        let regs = base.regressions(&more);
        assert_eq!(regs.len(), 1, "{regs:?}");
        assert!(
            regs[0].contains("atomics-audit: suppressed findings went 2 -> 3"),
            "{regs:?}"
        );
        let new_violation = Baseline::from_report(&report(&["lock-order"], &[]));
        assert!(!base.regressions(&new_violation).is_empty());
    }

    #[test]
    fn parse_rejects_malformed_input() {
        assert!(Baseline::parse("{}").is_err());
        assert!(Baseline::parse("{\"rules\": {\"x\": {\"violations\": }}}").is_err());
    }
}

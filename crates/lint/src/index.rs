//! The workspace item index — step one of cross-file analysis.
//!
//! [`ItemIndex::build`] walks every scanned file's token stream and records
//! the items the call-graph layer needs: functions (with the token range of
//! their bodies), the `impl` block and inline `mod` nesting each function
//! sits in, and struct field types (one level — `field: Type<…>` records
//! the head segment `Type`). The parse is the same brace-matching approach
//! as [`crate::context::test_regions`]: token shapes, not a grammar. It is
//! deliberately approximate — good enough to resolve call sites by name
//! and receiver shape, never authoritative about types.

use std::collections::BTreeMap;

use crate::lexer::{Tok, Token};
use crate::rules::SourceFile;

/// One indexed function.
#[derive(Debug, Clone)]
pub struct FnItem {
    /// Index of the containing file in the workspace file list.
    pub file: usize,
    /// Bare function name (`check`, `render_prometheus`).
    pub name: String,
    /// `impl`/`trait` block type the function sits in, if any.
    pub impl_type: Option<String>,
    /// Inline `mod` nesting inside the file (usually empty).
    pub module: Vec<String>,
    /// 1-based position of the name identifier.
    pub line: u32,
    /// 1-based column of the name identifier.
    pub col: u32,
    /// Token-index range of the body: `(open_brace, close_brace)`,
    /// inclusive. `None` for bodyless trait methods.
    pub body: Option<(usize, usize)>,
    /// Whether the function is library code (lib context, outside
    /// `#[cfg(test)]` regions). Only lib functions join the call graph.
    pub is_lib: bool,
}

impl FnItem {
    /// Human-readable qualified name for diagnostics:
    /// `Type::name` inside an impl, `stem::name` at file scope.
    #[must_use]
    pub fn qual_name(&self, file_stem: &str) -> String {
        match &self.impl_type {
            Some(t) => format!("{t}::{}", self.name),
            None => format!("{file_stem}::{}", self.name),
        }
    }
}

/// The whole-workspace item index.
#[derive(Debug, Default)]
pub struct ItemIndex {
    /// Every indexed function, in (file, token) order.
    pub fns: Vec<FnItem>,
    /// Function ids by bare name.
    pub by_name: BTreeMap<String, Vec<usize>>,
    /// `(struct, field) -> type head` for one-level receiver typing.
    pub field_types: BTreeMap<(String, String), String>,
    /// Per-file stem (`admission` for `crates/serve/src/admission.rs`).
    pub file_stems: Vec<String>,
}

impl ItemIndex {
    /// Builds the index over every file.
    #[must_use]
    pub fn build(files: &[SourceFile]) -> Self {
        let mut idx = Self::default();
        for (fi, f) in files.iter().enumerate() {
            idx.file_stems.push(file_stem(&f.rel_path));
            let toks = &f.scanned.tokens;
            let pairs = brace_pairs(toks);
            let mut p = Parser {
                idx: &mut idx,
                file: fi,
                src: f,
                pairs: &pairs,
            };
            p.items(0, toks.len(), &mut Vec::new(), None);
        }
        for (id, item) in idx.fns.iter().enumerate() {
            idx.by_name.entry(item.name.clone()).or_default().push(id);
        }
        idx
    }

    /// Function ids whose bare name is `name`.
    #[must_use]
    pub fn named(&self, name: &str) -> &[usize] {
        self.by_name.get(name).map_or(&[], Vec::as_slice)
    }

    /// The recorded field type head for `(owner, field)`.
    #[must_use]
    pub fn field_type(&self, owner: &str, field: &str) -> Option<&str> {
        self.field_types
            .get(&(owner.to_string(), field.to_string()))
            .map(String::as_str)
    }
}

/// The file-name stem used to qualify file-scope functions.
#[must_use]
pub fn file_stem(rel_path: &str) -> String {
    rel_path
        .rsplit('/')
        .next()
        .unwrap_or(rel_path)
        .trim_end_matches(".rs")
        .to_string()
}

/// `open brace token index -> close brace token index` for every `{`.
fn brace_pairs(toks: &[Token]) -> BTreeMap<usize, usize> {
    let mut pairs = BTreeMap::new();
    let mut stack = Vec::new();
    for (i, t) in toks.iter().enumerate() {
        match t.tok {
            Tok::Punct('{') => stack.push(i),
            Tok::Punct('}') => {
                if let Some(open) = stack.pop() {
                    pairs.insert(open, i);
                }
            }
            _ => {}
        }
    }
    pairs
}

struct Parser<'a> {
    idx: &'a mut ItemIndex,
    file: usize,
    src: &'a SourceFile,
    pairs: &'a BTreeMap<usize, usize>,
}

impl Parser<'_> {
    fn tok(&self, i: usize) -> Option<&Token> {
        self.src.scanned.tokens.get(i)
    }

    fn ident(&self, i: usize) -> Option<&str> {
        match self.tok(i).map(|t| &t.tok) {
            Some(Tok::Ident(s)) => Some(s.as_str()),
            _ => None,
        }
    }

    fn punct(&self, i: usize, c: char) -> bool {
        matches!(self.tok(i).map(|t| &t.tok), Some(Tok::Punct(p)) if *p == c)
    }

    /// Indexes the items inside token range `[lo, hi)`.
    fn items(&mut self, lo: usize, hi: usize, module: &mut Vec<String>, impl_type: Option<&str>) {
        let mut i = lo;
        while i < hi {
            match self.ident(i) {
                Some("mod") => {
                    if let (Some(name), true) = (self.ident(i + 1), self.punct(i + 2, '{')) {
                        let close = self.pairs.get(&(i + 2)).copied().unwrap_or(hi);
                        module.push(name.to_string());
                        self.items(i + 3, close, module, impl_type);
                        module.pop();
                        i = close + 1;
                        continue;
                    }
                    i += 1;
                }
                Some("impl" | "trait") => {
                    if let Some((ty, open)) = self.impl_header(i, hi) {
                        let close = self.pairs.get(&open).copied().unwrap_or(hi);
                        self.items(open + 1, close, module, Some(&ty));
                        i = close + 1;
                        continue;
                    }
                    i += 1;
                }
                Some("struct") => {
                    i = self.struct_fields(i, hi);
                }
                Some("fn") => {
                    i = self.fn_item(i, hi, module, impl_type);
                }
                _ => i += 1,
            }
        }
    }

    /// Parses an `impl`/`trait` header starting at `kw`: returns the
    /// subject type name and the index of the body's opening brace.
    /// `impl<T> Foo<T>` → `Foo`; `impl Trait for Bar` → `Bar`;
    /// `trait Name` → `Name`.
    fn impl_header(&self, kw: usize, hi: usize) -> Option<(String, usize)> {
        let mut last_path_head: Option<String> = None;
        let mut angle = 0i32;
        let mut j = kw + 1;
        while j < hi {
            match self.tok(j).map(|t| t.tok.clone()) {
                Some(Tok::Punct('<')) => angle += 1,
                Some(Tok::Punct('>')) => angle -= 1,
                Some(Tok::Punct('{')) if angle <= 0 => {
                    return last_path_head.map(|t| (t, j));
                }
                Some(Tok::Punct(';')) if angle <= 0 => return None, // `impl Foo;` — not a block
                Some(Tok::Ident(s)) if angle <= 0 => match s.as_str() {
                    // `for` restarts the subject path; `where` ends it.
                    "for" => last_path_head = None,
                    "where" => {
                        // Scan on for the brace without touching the type.
                        let mut k = j + 1;
                        while k < hi && !self.punct(k, '{') {
                            k += 1;
                        }
                        return last_path_head.map(|t| (t, k));
                    }
                    "dyn" | "mut" | "const" | "unsafe" => {}
                    _ => {
                        // Path segments: keep the last one before generics.
                        last_path_head = Some(s);
                    }
                },
                Some(_) => {}
                None => return None,
            }
            j += 1;
        }
        None
    }

    /// Records field types of a `struct Name { … }`; returns the index to
    /// resume scanning from.
    fn struct_fields(&mut self, kw: usize, hi: usize) -> usize {
        let Some(name) = self.ident(kw + 1).map(str::to_string) else {
            return kw + 1;
        };
        // Find the body brace (tuple structs and unit structs hit `(`/`;`).
        let mut j = kw + 2;
        let mut angle = 0i32;
        while j < hi {
            if self.punct(j, '<') {
                angle += 1;
            } else if self.punct(j, '>') {
                angle -= 1;
            } else if angle <= 0 && (self.punct(j, ';') || self.punct(j, '(')) {
                return j + 1;
            } else if angle <= 0 && self.punct(j, '{') {
                break;
            }
            j += 1;
        }
        let Some(&close) = self.pairs.get(&j) else {
            return j + 1;
        };
        // Fields at depth 1: `ident :` not preceded by another `:`.
        let mut depth = 0i32;
        let mut k = j;
        while k < close {
            if self.punct(k, '{') {
                depth += 1;
            } else if self.punct(k, '}') {
                depth -= 1;
            } else if depth == 1
                && self.punct(k + 1, ':')
                && !self.punct(k + 2, ':')
                && !self.punct(k - 1, ':')
            {
                if let (Some(field), Some(ty)) = (self.ident(k), self.type_head(k + 2, close)) {
                    self.idx
                        .field_types
                        .insert((name.clone(), field.to_string()), ty);
                }
            }
            k += 1;
        }
        close + 1
    }

    /// The head type name of the type expression starting at `j`: skips
    /// references, lifetimes and modifiers, follows path segments, and
    /// returns the last segment before generic arguments.
    fn type_head(&self, mut j: usize, hi: usize) -> Option<String> {
        let mut head = None;
        while j < hi {
            match self.tok(j).map(|t| t.tok.clone()) {
                Some(Tok::Punct('&' | '(' | ')')) | Some(Tok::Lifetime(_)) => {}
                Some(Tok::Ident(s)) => match s.as_str() {
                    "mut" | "dyn" | "impl" | "const" => {}
                    _ => {
                        head = Some(s);
                        // `::` continues the path; anything else ends it.
                        if !(self.punct(j + 1, ':') && self.punct(j + 2, ':')) {
                            return head;
                        }
                        j += 2;
                    }
                },
                _ => return head,
            }
            j += 1;
        }
        head
    }

    /// Indexes a `fn name …` item; returns the index to resume from (one
    /// past the name — the body is scanned again by the graph layer and by
    /// nested-item indexing via recursion).
    fn fn_item(
        &mut self,
        kw: usize,
        hi: usize,
        module: &mut Vec<String>,
        impl_type: Option<&str>,
    ) -> usize {
        let Some(t) = self.tok(kw + 1).cloned() else {
            return kw + 1;
        };
        let Tok::Ident(name) = t.tok.clone() else {
            return kw + 1; // `fn(` pointer type, or `r#fn` call site
        };
        // Find the body `{` or the trailing `;` at bracket depth 0.
        let mut depth = 0i32;
        let mut j = kw + 2;
        let mut body = None;
        while j < hi {
            match self.tok(j).map(|t| &t.tok) {
                Some(Tok::Punct('(' | '[')) => depth += 1,
                Some(Tok::Punct(')' | ']')) => depth -= 1,
                Some(Tok::Punct(';')) if depth == 0 => break,
                Some(Tok::Punct('{')) if depth == 0 => {
                    body = self.pairs.get(&j).map(|&close| (j, close));
                    break;
                }
                None => break,
                _ => {}
            }
            j += 1;
        }
        self.idx.fns.push(FnItem {
            file: self.file,
            name,
            impl_type: impl_type.map(str::to_string),
            module: module.clone(),
            line: t.line,
            col: t.col,
            body,
            is_lib: self.src.is_lib_line(t.line),
        });
        if let Some((open, close)) = body {
            // Nested `fn` items inside the body keep the same scope.
            self.items(open + 1, close, module, impl_type);
            return close + 1;
        }
        j + 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::FileContext;

    fn index(src: &str) -> ItemIndex {
        let f = SourceFile::new("crates/x/src/widget.rs", src, FileContext::Lib);
        ItemIndex::build(&[f])
    }

    #[test]
    fn fns_get_scopes_and_bodies() {
        let idx = index(
            "fn free() { helper(); }\n\
             impl Widget { fn method(&self) -> u32 { 1 } }\n\
             impl fmt::Display for Widget { fn fmt(&self) {} }\n\
             trait Draw { fn draw(&self); fn blank(&self) {} }\n\
             mod inner { fn nested() {} }\n",
        );
        let names: Vec<(String, Option<String>)> = idx
            .fns
            .iter()
            .map(|f| (f.name.clone(), f.impl_type.clone()))
            .collect();
        assert_eq!(
            names,
            [
                ("free".into(), None),
                ("method".into(), Some("Widget".into())),
                ("fmt".into(), Some("Widget".into())),
                ("draw".into(), Some("Draw".into())),
                ("blank".into(), Some("Draw".into())),
                ("nested".into(), None),
            ]
        );
        assert!(idx.fns[0].body.is_some());
        assert!(idx.fns[3].body.is_none(), "bodyless trait method");
        assert_eq!(idx.fns[5].module, ["inner"]);
        assert_eq!(idx.fns[0].qual_name("widget"), "widget::free");
        assert_eq!(idx.fns[1].qual_name("widget"), "Widget::method");
    }

    #[test]
    fn struct_field_types_record_head_segments() {
        let idx = index(
            "struct Telemetry { latency: DecayingHistogram, hits: std::sync::Mutex<Vec<u64>>, \
             pub rate: obs::RateCounter }\n\
             struct Unit;\nstruct Tuple(u32, u32);\n",
        );
        assert_eq!(
            idx.field_type("Telemetry", "latency"),
            Some("DecayingHistogram")
        );
        assert_eq!(idx.field_type("Telemetry", "hits"), Some("Mutex"));
        assert_eq!(idx.field_type("Telemetry", "rate"), Some("RateCounter"));
    }

    #[test]
    fn generic_impls_and_where_clauses_resolve_the_subject() {
        let idx = index(
            "impl<T: Ord> Stack<T> { fn push2(&mut self) {} }\n\
             impl<T> From<T> for Wrapper<T> where T: Clone { fn from2(&self) {} }\n",
        );
        assert_eq!(idx.fns[0].impl_type.as_deref(), Some("Stack"));
        assert_eq!(idx.fns[1].impl_type.as_deref(), Some("Wrapper"));
    }

    #[test]
    fn test_region_fns_are_not_lib() {
        let f = SourceFile::new(
            "crates/x/src/widget.rs",
            "fn live() {}\n#[cfg(test)]\nmod tests { fn helper() {} }\n",
            FileContext::Lib,
        );
        let idx = ItemIndex::build(&[f]);
        assert!(idx.fns[0].is_lib);
        assert!(!idx.fns[1].is_lib, "test-region fn excluded from the graph");
    }
}

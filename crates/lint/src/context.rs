//! File classification and in-file context tracking.
//!
//! Every rule is scoped to a *context*: the invariants protect library code
//! on the serving path, not tests, benches or one-shot binaries. Two layers
//! decide the context of a given token:
//!
//! 1. [`classify`] maps the workspace-relative path to a [`FileContext`]
//!    (cargo's directory conventions: `tests/`, `benches/`, `examples/`,
//!    `src/bin/`, `main.rs`);
//! 2. [`test_regions`] finds `#[cfg(test)]` items inside library files, so
//!    an inline `mod tests { … }` is exempt exactly like a `tests/` file.

use crate::lexer::{Scanned, Tok};

/// Which compilation context a file belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FileContext {
    /// Library code — the serving path; all rules apply.
    Lib,
    /// A binary (`src/bin/`, `main.rs`, `build.rs`): fail-fast is fine.
    Bin,
    /// Integration tests (`tests/`).
    Test,
    /// Benchmarks (`benches/`).
    Bench,
    /// Examples (`examples/`).
    Example,
}

impl FileContext {
    /// Context name as it appears in diagnostics and the JSON report.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Self::Lib => "lib",
            Self::Bin => "bin",
            Self::Test => "test",
            Self::Bench => "bench",
            Self::Example => "example",
        }
    }
}

/// Classifies a workspace-relative path (always with `/` separators).
#[must_use]
pub fn classify(rel_path: &str) -> FileContext {
    let has_dir =
        |d: &str| rel_path.starts_with(&format!("{d}/")) || rel_path.contains(&format!("/{d}/"));
    if has_dir("tests") {
        FileContext::Test
    } else if has_dir("benches") {
        FileContext::Bench
    } else if has_dir("examples") {
        FileContext::Example
    } else if has_dir("src/bin")
        || rel_path.ends_with("/main.rs")
        || rel_path == "main.rs"
        || rel_path.ends_with("build.rs")
    {
        FileContext::Bin
    } else {
        FileContext::Lib
    }
}

/// Whether `rel_path` is a crate root (`src/lib.rs` of some package, or the
/// workspace facade's own `src/lib.rs`) — the files that must carry
/// `#![forbid(unsafe_code)]`.
#[must_use]
pub fn is_crate_root(rel_path: &str) -> bool {
    rel_path == "src/lib.rs" || rel_path.ends_with("/src/lib.rs")
}

/// An inclusive line range (1-based) covered by a `#[cfg(test)]` item.
pub type LineRange = (u32, u32);

/// Finds the line ranges of every `#[cfg(test)]` item: the attribute plus
/// the braced item that follows it (typically `mod tests { … }`, but a
/// `#[cfg(test)] fn helper() { … }` works the same way).
#[must_use]
pub fn test_regions(scanned: &Scanned) -> Vec<LineRange> {
    let toks = &scanned.tokens;
    let mut regions = Vec::new();
    let mut i = 0usize;
    while i < toks.len() {
        if let Some(after_attr) = match_test_attr(scanned, i) {
            let start_line = toks[i].line;
            if let Some(end) = item_end(scanned, after_attr) {
                regions.push((start_line, toks[end].line));
                i = end + 1;
                continue;
            }
        }
        i += 1;
    }
    regions
}

/// Whether `line` falls inside any of `regions`.
#[must_use]
pub fn in_regions(regions: &[LineRange], line: u32) -> bool {
    regions.iter().any(|&(lo, hi)| (lo..=hi).contains(&line))
}

fn is_punct(scanned: &Scanned, i: usize, c: char) -> bool {
    scanned
        .tokens
        .get(i)
        .is_some_and(|t| t.tok == Tok::Punct(c))
}

fn is_ident(scanned: &Scanned, i: usize, name: &str) -> bool {
    matches!(&scanned.tokens.get(i), Some(t) if matches!(&t.tok, Tok::Ident(s) if s == name))
}

/// Matches `#[cfg(…test…)]` starting at token `i`; returns the index one
/// past the closing `]`. `cfg(all(test, …))` counts: any `test` ident
/// inside the attribute marks the item as test-only.
fn match_test_attr(scanned: &Scanned, i: usize) -> Option<usize> {
    if !(is_punct(scanned, i, '#')
        && is_punct(scanned, i + 1, '[')
        && is_ident(scanned, i + 2, "cfg"))
    {
        return None;
    }
    let mut depth = 0usize;
    let mut saw_test = false;
    let mut j = i + 1;
    loop {
        match &scanned.tokens.get(j)?.tok {
            Tok::Punct('[') => depth += 1,
            Tok::Punct(']') => {
                depth -= 1;
                if depth == 0 {
                    return saw_test.then_some(j + 1);
                }
            }
            Tok::Ident(s) if s == "test" => saw_test = true,
            _ => {}
        }
        j += 1;
    }
}

/// From the token after an attribute, finds the index of the token ending
/// the annotated item: the matching `}` of its first top-level brace block,
/// or the `;` for item declarations without a body. Skips any further
/// attributes first.
fn item_end(scanned: &Scanned, mut i: usize) -> Option<usize> {
    // Skip stacked attributes (`#[cfg(test)] #[allow(…)] mod t { … }`).
    while is_punct(scanned, i, '#') && is_punct(scanned, i + 1, '[') {
        let mut depth = 0usize;
        let mut j = i + 1;
        loop {
            match &scanned.tokens.get(j)?.tok {
                Tok::Punct('[') => depth += 1,
                Tok::Punct(']') => {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                _ => {}
            }
            j += 1;
        }
        i = j + 1;
    }
    // Find the item body: the first `{` at bracket depth 0 (a `;` first
    // means a body-less item like `mod tests;`).
    let mut paren = 0i32;
    let mut j = i;
    loop {
        match &scanned.tokens.get(j)?.tok {
            Tok::Punct('(') | Tok::Punct('[') => paren += 1,
            Tok::Punct(')') | Tok::Punct(']') => paren -= 1,
            Tok::Punct(';') if paren == 0 => return Some(j),
            Tok::Punct('{') if paren == 0 => break,
            _ => {}
        }
        j += 1;
    }
    // Match the braces.
    let mut depth = 0i32;
    loop {
        match &scanned.tokens.get(j)?.tok {
            Tok::Punct('{') => depth += 1,
            Tok::Punct('}') => {
                depth -= 1;
                if depth == 0 {
                    return Some(j);
                }
            }
            _ => {}
        }
        j += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::scan;

    #[test]
    fn classification_follows_cargo_conventions() {
        assert_eq!(classify("crates/core/src/pool.rs"), FileContext::Lib);
        assert_eq!(classify("src/lib.rs"), FileContext::Lib);
        assert_eq!(classify("src/bin/acq.rs"), FileContext::Bin);
        assert_eq!(
            classify("crates/bench/src/bin/reproduce.rs"),
            FileContext::Bin
        );
        assert_eq!(
            classify("crates/core/tests/parallel_equivalence.rs"),
            FileContext::Test
        );
        assert_eq!(classify("tests/cli_contract.rs"), FileContext::Test);
        assert_eq!(
            classify("crates/bench/benches/ablation.rs"),
            FileContext::Bench
        );
        assert_eq!(classify("examples/quickstart.rs"), FileContext::Example);
    }

    #[test]
    fn crate_roots() {
        assert!(is_crate_root("src/lib.rs"));
        assert!(is_crate_root("crates/core/src/lib.rs"));
        assert!(!is_crate_root("crates/core/src/pool.rs"));
        assert!(!is_crate_root(
            "crates/lint/tests/fixtures/forbid_unsafe/src/liberty.rs"
        ));
    }

    #[test]
    fn cfg_test_mod_region_covers_its_braces() {
        let src = "\
fn live() { x.unwrap(); }

#[cfg(test)]
mod tests {
    #[test]
    fn t() { y.unwrap(); }
}

fn also_live() {}
";
        let scanned = scan(src);
        let regions = test_regions(&scanned);
        assert_eq!(regions, vec![(3, 7)]);
        assert!(in_regions(&regions, 6));
        assert!(!in_regions(&regions, 1));
        assert!(!in_regions(&regions, 9));
    }

    #[test]
    fn cfg_all_test_and_stacked_attrs_count() {
        let src = "\
#[cfg(all(test, feature = \"slow\"))]
#[allow(dead_code)]
mod helpers {
    fn h() {}
}
";
        let regions = test_regions(&scan(src));
        assert_eq!(regions, vec![(1, 5)]);
    }

    #[test]
    fn non_test_cfg_is_not_a_region() {
        let regions = test_regions(&scan("#[cfg(unix)]\nmod m { fn f() {} }\n"));
        assert!(regions.is_empty());
    }

    #[test]
    fn bodyless_item_ends_at_semicolon() {
        let regions = test_regions(&scan("#[cfg(test)]\nmod tests;\nfn live() {}\n"));
        assert_eq!(regions, vec![(1, 2)]);
    }
}

//! The `acq-lint` command-line entry point.
//!
//! ```text
//! acq-lint --workspace [--root <dir>] [--config <lint.toml>]
//!          [--json <report.json>] [--sarif <report.sarif>]
//!          [--baseline <lint-baseline.json>] [--write-baseline] [--verbose]
//! ```
//!
//! `--baseline` compares the run against the committed per-rule counts and
//! fails when any count *increased* (the suppression ratchet);
//! `--write-baseline` rewrites the file from the current run instead — the
//! deliberate, reviewed way to admit a new suppression.
//!
//! Exit codes: `0` clean, `1` violations found or ratchet regression, `2`
//! usage or I/O error — the same contract as `validate_metrics`.

use std::path::PathBuf;
use std::process::ExitCode;

use acq_lint::baseline::Baseline;
use acq_lint::{load_config, run_workspace, sarif};

struct Args {
    root: PathBuf,
    config: Option<PathBuf>,
    json: Option<PathBuf>,
    sarif: Option<PathBuf>,
    baseline: Option<PathBuf>,
    write_baseline: bool,
    verbose: bool,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        root: PathBuf::from("."),
        config: None,
        json: None,
        sarif: None,
        baseline: None,
        write_baseline: false,
        verbose: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            // The workspace walk is the only mode; the flag exists so the
            // CI invocation documents its own scope.
            "--workspace" => {}
            "--root" => args.root = next_path(&mut it, "--root")?,
            "--config" => args.config = Some(next_path(&mut it, "--config")?),
            "--json" => args.json = Some(next_path(&mut it, "--json")?),
            "--sarif" => args.sarif = Some(next_path(&mut it, "--sarif")?),
            "--baseline" => args.baseline = Some(next_path(&mut it, "--baseline")?),
            "--write-baseline" => args.write_baseline = true,
            "--verbose" => args.verbose = true,
            "--help" | "-h" => {
                return Err(
                    "usage: acq-lint --workspace [--root <dir>] [--config <lint.toml>] \
                     [--json <report.json>] [--sarif <report.sarif>] \
                     [--baseline <lint-baseline.json>] [--write-baseline] [--verbose]"
                        .to_string(),
                )
            }
            other => return Err(format!("unknown argument {other:?} (try --help)")),
        }
    }
    if args.write_baseline && args.baseline.is_none() {
        return Err("--write-baseline requires --baseline <path>".to_string());
    }
    Ok(args)
}

fn next_path(it: &mut impl Iterator<Item = String>, flag: &str) -> Result<PathBuf, String> {
    it.next()
        .map(PathBuf::from)
        .ok_or_else(|| format!("{flag} requires a value"))
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::from(2);
        }
    };
    let config_path = args
        .config
        .clone()
        .unwrap_or_else(|| args.root.join("lint.toml"));
    let cfg = match load_config(&config_path) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::from(2);
        }
    };
    let report = match run_workspace(&args.root, &cfg) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::from(2);
        }
    };
    if let Some(json_path) = &args.json {
        if let Err(e) = std::fs::write(json_path, report.to_json()) {
            eprintln!("error: cannot write {}: {e}", json_path.display());
            return ExitCode::from(2);
        }
    }
    if let Some(sarif_path) = &args.sarif {
        if let Err(e) = std::fs::write(sarif_path, sarif::render(&report)) {
            eprintln!("error: cannot write {}: {e}", sarif_path.display());
            return ExitCode::from(2);
        }
    }
    let mut ratchet_failed = false;
    if let Some(baseline_path) = &args.baseline {
        let current = Baseline::from_report(&report);
        if args.write_baseline {
            if let Err(e) = std::fs::write(baseline_path, current.to_json()) {
                eprintln!("error: cannot write {}: {e}", baseline_path.display());
                return ExitCode::from(2);
            }
        } else {
            let committed = match std::fs::read_to_string(baseline_path) {
                Ok(text) => match Baseline::parse(&text) {
                    Ok(b) => b,
                    Err(e) => {
                        eprintln!("error: {}: {e}", baseline_path.display());
                        return ExitCode::from(2);
                    }
                },
                Err(e) => {
                    eprintln!("error: cannot read {}: {e}", baseline_path.display());
                    return ExitCode::from(2);
                }
            };
            for regression in committed.regressions(&current) {
                eprintln!("error[baseline]: {regression}");
                ratchet_failed = true;
            }
        }
    }
    print!("{}", report.render_text(args.verbose));
    if report.is_clean() && !ratchet_failed {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

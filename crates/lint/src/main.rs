//! The `acq-lint` command-line entry point.
//!
//! ```text
//! acq-lint --workspace [--root <dir>] [--config <lint.toml>]
//!          [--json <report.json>] [--verbose]
//! ```
//!
//! Exit codes: `0` clean, `1` violations found, `2` usage or I/O error —
//! the same contract as `validate_metrics`.

use std::path::PathBuf;
use std::process::ExitCode;

use acq_lint::{load_config, run_workspace};

struct Args {
    root: PathBuf,
    config: Option<PathBuf>,
    json: Option<PathBuf>,
    verbose: bool,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        root: PathBuf::from("."),
        config: None,
        json: None,
        verbose: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            // The workspace walk is the only mode; the flag exists so the
            // CI invocation documents its own scope.
            "--workspace" => {}
            "--root" => args.root = next_path(&mut it, "--root")?,
            "--config" => args.config = Some(next_path(&mut it, "--config")?),
            "--json" => args.json = Some(next_path(&mut it, "--json")?),
            "--verbose" => args.verbose = true,
            "--help" | "-h" => {
                return Err(
                    "usage: acq-lint --workspace [--root <dir>] [--config <lint.toml>] \
                     [--json <report.json>] [--verbose]"
                        .to_string(),
                )
            }
            other => return Err(format!("unknown argument {other:?} (try --help)")),
        }
    }
    Ok(args)
}

fn next_path(it: &mut impl Iterator<Item = String>, flag: &str) -> Result<PathBuf, String> {
    it.next()
        .map(PathBuf::from)
        .ok_or_else(|| format!("{flag} requires a value"))
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::from(2);
        }
    };
    let config_path = args
        .config
        .clone()
        .unwrap_or_else(|| args.root.join("lint.toml"));
    let cfg = match load_config(&config_path) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::from(2);
        }
    };
    let report = match run_workspace(&args.root, &cfg) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::from(2);
        }
    };
    if let Some(json_path) = &args.json {
        if let Err(e) = std::fs::write(json_path, report.to_json()) {
            eprintln!("error: cannot write {}: {e}", json_path.display());
            return ExitCode::from(2);
        }
    }
    print!("{}", report.render_text(args.verbose));
    if report.is_clean() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

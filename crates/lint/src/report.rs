//! Diagnostics and report rendering.
//!
//! Text output follows rustc's shape (`error[rule]: message` plus a
//! `--> file:line:col` arrow) so editors and CI log scrapers pick the
//! positions up for free. The JSON report is the machine-readable artifact
//! CI uploads and validates against `schemas/lint.schema.json`, mirroring
//! the `validate_metrics` pattern from `acq-obs`.

use std::fmt::Write as _;

/// One finding at a source position.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Rule family name (`panic-hygiene`, …).
    pub rule: &'static str,
    /// Workspace-relative path with `/` separators.
    pub file: String,
    /// 1-based line.
    pub line: u32,
    /// 1-based column.
    pub col: u32,
    /// What is wrong and what to do instead.
    pub message: String,
}

/// How a finding was suppressed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AllowedBy {
    /// An inline `// lint-allow(<rule>): <reason>` annotation.
    Inline,
    /// A `lint.toml` `[allow]` path prefix.
    Config,
}

impl AllowedBy {
    fn name(self) -> &'static str {
        match self {
            Self::Inline => "inline",
            Self::Config => "config",
        }
    }
}

/// A suppressed finding, kept in the report so the allowlist stays audited.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Allowed {
    /// The underlying finding.
    pub diagnostic: Diagnostic,
    /// Which escape hatch suppressed it.
    pub by: AllowedBy,
}

/// The complete result of one workspace run.
#[derive(Debug, Default)]
pub struct Report {
    /// Number of `.rs` files scanned.
    pub files_scanned: usize,
    /// Violations that survived both escape hatches, sorted by position.
    pub violations: Vec<Diagnostic>,
    /// Findings suppressed by an annotation or the config allowlist.
    pub allowed: Vec<Allowed>,
}

/// Version stamp of the JSON report layout (`schemas/lint.schema.json`).
/// Version 2 added the three workspace-level rules (commit-reachability,
/// lock-order, suppression-audit) to the rule enum.
pub const REPORT_VERSION: u64 = 2;

impl Report {
    /// Sorts both lists by (file, line, col, rule) for deterministic output.
    pub fn sort(&mut self) {
        let key = |d: &Diagnostic| (d.file.clone(), d.line, d.col, d.rule);
        self.violations.sort_by_key(key);
        self.allowed.sort_by_key(|a| key(&a.diagnostic));
    }

    /// Whether the workspace is clean.
    #[must_use]
    pub fn is_clean(&self) -> bool {
        self.violations.is_empty()
    }

    /// Renders rustc-style text diagnostics plus a one-line summary.
    #[must_use]
    pub fn render_text(&self, verbose: bool) -> String {
        let mut out = String::new();
        for d in &self.violations {
            let _ = writeln!(
                out,
                "error[{}]: {}\n  --> {}:{}:{}",
                d.rule, d.message, d.file, d.line, d.col
            );
        }
        if verbose {
            for a in &self.allowed {
                let d = &a.diagnostic;
                let _ = writeln!(
                    out,
                    "note[{}]: allowed ({}) {}\n  --> {}:{}:{}",
                    d.rule,
                    a.by.name(),
                    d.message,
                    d.file,
                    d.line,
                    d.col
                );
            }
        }
        let _ = writeln!(
            out,
            "acq-lint: {} file(s), {} violation(s), {} allowed",
            self.files_scanned,
            self.violations.len(),
            self.allowed.len()
        );
        out
    }

    /// Renders the machine-readable report.
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "{{\n  \"version\": {REPORT_VERSION},\n  \"files_scanned\": {},\n",
            self.files_scanned
        ));
        out.push_str("  \"violations\": [");
        render_diags(&mut out, self.violations.iter().map(|d| (d, None)));
        out.push_str("],\n  \"allowed\": [");
        render_diags(
            &mut out,
            self.allowed.iter().map(|a| (&a.diagnostic, Some(a.by))),
        );
        out.push_str("],\n");
        out.push_str(&format!(
            "  \"summary\": {{ \"violations\": {}, \"allowed\": {}, \"clean\": {} }}\n}}\n",
            self.violations.len(),
            self.allowed.len(),
            self.is_clean()
        ));
        out
    }
}

fn render_diags<'a>(
    out: &mut String,
    diags: impl Iterator<Item = (&'a Diagnostic, Option<AllowedBy>)>,
) {
    let mut first = true;
    for (d, by) in diags {
        if !first {
            out.push(',');
        }
        first = false;
        out.push_str("\n    { ");
        let _ = write!(
            out,
            "\"rule\": \"{}\", \"file\": \"{}\", \"line\": {}, \"col\": {}, \"message\": \"{}\"",
            escape(d.rule),
            escape(&d.file),
            d.line,
            d.col,
            escape(&d.message)
        );
        if let Some(by) = by {
            let _ = write!(out, ", \"by\": \"{}\"", by.name());
        }
        out.push_str(" }");
    }
    if !first {
        out.push_str("\n  ");
    }
}

/// Minimal JSON string escaping (the report contains no exotic content).
pub(crate) fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn diag(file: &str, line: u32) -> Diagnostic {
        Diagnostic {
            rule: "panic-hygiene",
            file: file.to_string(),
            line,
            col: 5,
            message: "`.unwrap()` in library code".to_string(),
        }
    }

    #[test]
    fn text_rendering_is_rustc_shaped() {
        let mut r = Report {
            files_scanned: 2,
            violations: vec![diag("b.rs", 9), diag("a.rs", 3)],
            allowed: vec![],
        };
        r.sort();
        let text = r.render_text(false);
        assert!(text.starts_with("error[panic-hygiene]"), "{text}");
        assert!(text.contains("--> a.rs:3:5"), "{text}");
        // Sorted: a.rs before b.rs.
        assert!(text.find("a.rs").unwrap() < text.find("b.rs").unwrap());
        assert!(text.contains("2 file(s), 2 violation(s), 0 allowed"));
    }

    #[test]
    fn json_escapes_and_marks_allowed() {
        let r = Report {
            files_scanned: 1,
            violations: vec![],
            allowed: vec![Allowed {
                diagnostic: Diagnostic {
                    message: "say \"hi\"".to_string(),
                    ..diag("a.rs", 1)
                },
                by: AllowedBy::Inline,
            }],
        };
        let json = r.to_json();
        assert!(json.contains("\\\"hi\\\""), "{json}");
        assert!(json.contains("\"by\": \"inline\""), "{json}");
        assert!(json.contains("\"clean\": true"), "{json}");
    }
}

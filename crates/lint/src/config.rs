//! `lint.toml` — the checked-in allowlist and per-rule scoping.
//!
//! The parser covers exactly the TOML subset the config needs (tables,
//! string values, single- or multi-line string arrays, `#` comments), in
//! the same spirit as the JSON-schema-subset validator in `acq-obs`:
//! anything fancier would be over-engineering for an offline tool.
//!
//! ```toml
//! [allow]
//! # rule = list of workspace-relative path prefixes exempted wholesale
//! panic-hygiene = ["crates/compat/"]
//!
//! [determinism]
//! ordered_paths = ["crates/core/src/driver.rs"]
//! clock_allowed = ["crates/obs/"]
//! sleep_allowed = ["crates/core/src/fault.rs"]
//!
//! [obs-discipline]
//! worker_paths = ["crates/core/src/pool.rs"]
//! zone_stat_paths = ["crates/engine/src/zone.rs"]
//! progress_sink_paths = ["crates/core/src/driver.rs"]
//!
//! [commit-reachability]
//! # serial-emission commit functions: `<file>::<fn>` or `<file>::*`
//! roots = ["crates/serve/src/telemetry.rs::*"]
//! ```

use std::collections::BTreeMap;

use crate::rules;

/// One configuration entry with its `lint.toml` position, recorded so the
/// suppression audit can point at stale prefixes.
#[derive(Debug, Clone)]
pub struct ConfigEntry {
    /// Section name (`allow`, `determinism`, …).
    pub section: String,
    /// Key inside the section (`panic-hygiene`, `clock_allowed`, …).
    pub key: String,
    /// One array element (a path prefix or a commit root).
    pub value: String,
    /// 1-based line of the key in `lint.toml`.
    pub line: u32,
}

/// Parsed configuration. Path values are workspace-relative prefixes: an
/// entry matches a file when it is a prefix of the file's relative path, so
/// `crates/compat/` exempts a whole directory and
/// `crates/core/src/driver.rs` names one file.
#[derive(Debug, Default, Clone)]
pub struct Config {
    /// Per-rule wholesale path exemptions (`[allow]`).
    pub allow: BTreeMap<String, Vec<String>>,
    /// Emission-path files where unordered containers are forbidden.
    pub ordered_paths: Vec<String>,
    /// Paths allowed to read wall clocks (`Instant::now`, `SystemTime::now`).
    pub clock_allowed: Vec<String>,
    /// Paths allowed to call `thread::sleep`.
    pub sleep_allowed: Vec<String>,
    /// Worker-closure files where metric commits need `worker-metric-ok`.
    pub worker_paths: Vec<String>,
    /// Serial-emission commit functions (`<file>::<fn>` or `<file>::*`):
    /// the roots of the commit-reachability closure. Everything transitively
    /// callable from a root must stay wait-free unless a blocking site
    /// carries `// commit-io-ok: <reason>`.
    pub commit_roots: Vec<String>,
    /// The only files allowed to mutate the zone-map counters
    /// (`zones_pruned`/`zones_full`/`zones_scanned`): the serial emission
    /// path plus the pure scan accounting it commits from.
    pub zone_stat_paths: Vec<String>,
    /// The only files allowed to push into a progress sink
    /// (`.try_push(…)`): the driver's serial layer-boundary commits, the
    /// sink's own implementation, and the serve-side broker.
    pub progress_sink_paths: Vec<String>,
    /// Every entry with its `lint.toml` line, for the suppression audit.
    pub entries: Vec<ConfigEntry>,
}

fn prefix_match(prefixes: &[String], rel_path: &str) -> bool {
    prefixes.iter().any(|p| rel_path.starts_with(p.as_str()))
}

impl Config {
    /// Whether `rule` is exempted wholesale for `rel_path` by `[allow]`.
    #[must_use]
    pub fn allows(&self, rule: &str, rel_path: &str) -> bool {
        self.allow
            .get(rule)
            .is_some_and(|paths| prefix_match(paths, rel_path))
    }

    /// Whether `rel_path` is an ordered emission path.
    #[must_use]
    pub fn is_ordered_path(&self, rel_path: &str) -> bool {
        prefix_match(&self.ordered_paths, rel_path)
    }

    /// Whether `rel_path` may read wall clocks.
    #[must_use]
    pub fn clock_allowed(&self, rel_path: &str) -> bool {
        prefix_match(&self.clock_allowed, rel_path)
    }

    /// Whether `rel_path` may sleep.
    #[must_use]
    pub fn sleep_allowed(&self, rel_path: &str) -> bool {
        prefix_match(&self.sleep_allowed, rel_path)
    }

    /// Whether `rel_path` is a worker-closure path.
    #[must_use]
    pub fn is_worker_path(&self, rel_path: &str) -> bool {
        prefix_match(&self.worker_paths, rel_path)
    }

    /// Parses a commit root entry into `(file, fn-or-star)`.
    #[must_use]
    pub fn parse_root(entry: &str) -> Option<(&str, &str)> {
        entry.rsplit_once("::")
    }

    /// Whether `rel_path` may mutate the zone-map counters.
    #[must_use]
    pub fn is_zone_stat_path(&self, rel_path: &str) -> bool {
        prefix_match(&self.zone_stat_paths, rel_path)
    }

    /// Whether `rel_path` may push progress events into a sink.
    #[must_use]
    pub fn is_progress_sink_path(&self, rel_path: &str) -> bool {
        prefix_match(&self.progress_sink_paths, rel_path)
    }

    /// Parses the configuration text, rejecting unknown sections, unknown
    /// keys and unknown rule names so a typo cannot silently disable a rule.
    pub fn parse(text: &str) -> Result<Self, String> {
        let mut cfg = Self::default();
        let mut section = String::new();
        let mut lines = text.lines().enumerate().peekable();
        while let Some((idx, raw)) = lines.next() {
            let lineno = idx + 1;
            let line = strip_comment(raw).trim().to_string();
            if line.is_empty() {
                continue;
            }
            if let Some(name) = line.strip_prefix('[').and_then(|s| s.strip_suffix(']')) {
                section = name.trim().to_string();
                match section.as_str() {
                    "allow" | "determinism" | "obs-discipline" | "commit-reachability" => {}
                    other => return Err(format!("line {lineno}: unknown section [{other}]")),
                }
                continue;
            }
            let Some((key, value)) = line.split_once('=') else {
                return Err(format!("line {lineno}: expected `key = value`"));
            };
            let key = key.trim();
            let mut value = value.trim().to_string();
            // Multi-line arrays: keep consuming lines until brackets close.
            while value.starts_with('[') && !balanced(&value) {
                let Some((_, next)) = lines.next() else {
                    return Err(format!("line {lineno}: unterminated array for {key}"));
                };
                value.push(' ');
                value.push_str(strip_comment(next).trim());
            }
            let values =
                parse_string_array(&value).map_err(|e| format!("line {lineno}: {key}: {e}"))?;
            cfg.entries.extend(values.iter().map(|v| ConfigEntry {
                section: section.clone(),
                key: key.to_string(),
                value: v.clone(),
                line: lineno as u32,
            }));
            match (section.as_str(), key) {
                ("allow", rule) => {
                    if !rules::ALL.contains(&rule) {
                        return Err(format!(
                            "line {lineno}: unknown rule {rule:?} in [allow] (known: {})",
                            rules::ALL.join(", ")
                        ));
                    }
                    cfg.allow.insert(rule.to_string(), values);
                }
                ("determinism", "ordered_paths") => cfg.ordered_paths = values,
                ("determinism", "clock_allowed") => cfg.clock_allowed = values,
                ("determinism", "sleep_allowed") => cfg.sleep_allowed = values,
                ("obs-discipline", "worker_paths") => cfg.worker_paths = values,
                ("obs-discipline", "zone_stat_paths") => cfg.zone_stat_paths = values,
                ("obs-discipline", "progress_sink_paths") => cfg.progress_sink_paths = values,
                ("commit-reachability", "roots") => cfg.commit_roots = values,
                (s, k) => return Err(format!("line {lineno}: unknown key {k:?} in [{s}]")),
            }
        }
        Ok(cfg)
    }
}

/// Strips a `#` comment, honouring `#` inside quoted strings.
fn strip_comment(line: &str) -> &str {
    let mut in_str = false;
    for (i, c) in line.char_indices() {
        match c {
            '"' => in_str = !in_str,
            '#' if !in_str => return &line[..i],
            _ => {}
        }
    }
    line
}

fn balanced(value: &str) -> bool {
    let mut depth = 0i32;
    let mut in_str = false;
    for c in value.chars() {
        match c {
            '"' => in_str = !in_str,
            '[' if !in_str => depth += 1,
            ']' if !in_str => depth -= 1,
            _ => {}
        }
    }
    depth == 0
}

/// Parses `"a"` or `["a", "b"]` into a vector of strings.
fn parse_string_array(value: &str) -> Result<Vec<String>, String> {
    let inner = if let Some(stripped) = value.strip_prefix('[') {
        stripped
            .strip_suffix(']')
            .ok_or_else(|| "unterminated array".to_string())?
    } else {
        value
    };
    let mut out = Vec::new();
    for part in split_top_level(inner) {
        let part = part.trim();
        if part.is_empty() {
            continue;
        }
        let unq = part
            .strip_prefix('"')
            .and_then(|s| s.strip_suffix('"'))
            .ok_or_else(|| format!("expected a double-quoted string, found {part:?}"))?;
        out.push(unq.to_string());
    }
    Ok(out)
}

fn split_top_level(s: &str) -> Vec<&str> {
    let mut parts = Vec::new();
    let mut start = 0usize;
    let mut in_str = false;
    for (i, c) in s.char_indices() {
        match c {
            '"' => in_str = !in_str,
            ',' if !in_str => {
                parts.push(&s[start..i]);
                start = i + 1;
            }
            _ => {}
        }
    }
    parts.push(&s[start..]);
    parts
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_sections_arrays_and_comments() {
        let cfg = Config::parse(
            "# header\n\
             [allow]\n\
             panic-hygiene = [\"crates/compat/\", \"crates/bench/src/\"] # stubs\n\
             \n\
             [determinism]\n\
             ordered_paths = [\n\
                 \"crates/core/src/driver.rs\", # serial loop\n\
                 \"crates/core/src/store.rs\",\n\
             ]\n\
             clock_allowed = [\"crates/obs/\"]\n\
             sleep_allowed = [\"crates/core/src/fault.rs\"]\n\
             \n\
             [obs-discipline]\n\
             worker_paths = [\"crates/core/src/pool.rs\"]\n\
             zone_stat_paths = [\"crates/engine/src/zone.rs\"]\n\
             progress_sink_paths = [\"crates/core/src/driver.rs\"]\n\
             \n\
             [commit-reachability]\n\
             roots = [\"crates/serve/src/telemetry.rs::*\", \
             \"crates/core/src/driver.rs::emit_progress\"]\n",
        )
        .unwrap();
        assert!(cfg.allows("panic-hygiene", "crates/compat/rand/src/lib.rs"));
        assert!(!cfg.allows("panic-hygiene", "crates/core/src/pool.rs"));
        assert!(cfg.is_ordered_path("crates/core/src/store.rs"));
        assert!(cfg.clock_allowed("crates/obs/src/lib.rs"));
        assert!(cfg.sleep_allowed("crates/core/src/fault.rs"));
        assert!(cfg.is_worker_path("crates/core/src/pool.rs"));
        assert_eq!(
            Config::parse_root(&cfg.commit_roots[0]),
            Some(("crates/serve/src/telemetry.rs", "*"))
        );
        assert_eq!(
            Config::parse_root(&cfg.commit_roots[1]),
            Some(("crates/core/src/driver.rs", "emit_progress"))
        );
        assert!(cfg.is_zone_stat_path("crates/engine/src/zone.rs"));
        assert!(!cfg.is_zone_stat_path("crates/engine/src/executor.rs"));
        assert!(cfg.is_progress_sink_path("crates/core/src/driver.rs"));
        assert!(!cfg.is_progress_sink_path("crates/core/src/pool.rs"));
    }

    #[test]
    fn unknown_rule_and_section_are_rejected() {
        assert!(Config::parse("[allow]\npanic-hygeine = [\"x\"]\n")
            .unwrap_err()
            .contains("unknown rule"));
        assert!(Config::parse("[allows]\n")
            .unwrap_err()
            .contains("unknown section"));
        assert!(Config::parse("[determinism]\nordered = [\"x\"]\n")
            .unwrap_err()
            .contains("unknown key"));
    }

    #[test]
    fn hash_inside_string_is_not_a_comment() {
        let cfg = Config::parse("[allow]\ndeterminism = [\"a#b/\"]\n").unwrap();
        assert!(cfg.allows("determinism", "a#b/x.rs"));
    }

    #[test]
    fn entries_record_lint_toml_lines() {
        let cfg = Config::parse(
            "[allow]\n\
             panic-hygiene = [\"crates/compat/\"]\n\
             [determinism]\n\
             clock_allowed = [\n\
                 \"crates/obs/\",\n\
                 \"crates/bench/\",\n\
             ]\n",
        )
        .unwrap();
        let summary: Vec<(String, String, u32)> = cfg
            .entries
            .iter()
            .map(|e| (e.key.clone(), e.value.clone(), e.line))
            .collect();
        assert_eq!(
            summary,
            [
                ("panic-hygiene".into(), "crates/compat/".into(), 2),
                ("clock_allowed".into(), "crates/obs/".into(), 4),
                ("clock_allowed".into(), "crates/bench/".into(), 4),
            ]
        );
    }
}

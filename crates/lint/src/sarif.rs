//! SARIF 2.1.0 subset renderer.
//!
//! Emits the report as a single-run SARIF log so CI can upload it to any
//! code-scanning UI that speaks the format. Only the subset described by
//! `schemas/sarif-subset.schema.json` is produced: one `run` with the tool
//! driver's rule table, one `result` per finding with a physical location,
//! and `suppressions` entries for findings an escape hatch absorbed
//! (`inSource` for inline annotations, `external` for `lint.toml`). The
//! schema validator in `tests/workspace_clean.rs` keeps renderer and schema
//! honest against each other, the same arrangement as the JSON report.

use std::fmt::Write as _;

use crate::report::{escape, AllowedBy, Diagnostic, Report};
use crate::rules;

/// The SARIF version this renderer targets.
pub const SARIF_VERSION: &str = "2.1.0";

/// One-line rule descriptions for the driver's rule table.
#[must_use]
pub fn rule_description(rule: &str) -> &'static str {
    match rule {
        "panic-hygiene" => "library code degrades, never aborts",
        "determinism" => "no unordered iteration, clocks or sleeps on the emission path",
        "atomics-audit" => "every Ordering::Relaxed carries its soundness argument",
        "obs-discipline" => "lazy trace labels, serial-loop-only deterministic commits",
        "error-hygiene" => "public error enums stay #[non_exhaustive]",
        "forbid-unsafe" => "#![forbid(unsafe_code)] on every crate root",
        "commit-reachability" => "nothing blocking transitively callable from a commit fn",
        "lock-order" => "one global mutex acquisition order (no deadlock cycles)",
        "suppression-audit" => "dead suppressions and stale lint.toml entries are errors",
        _ => "project invariant",
    }
}

/// Renders the report as a SARIF 2.1.0 log.
#[must_use]
pub fn render(report: &Report) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str("  \"$schema\": \"https://json.schemastore.org/sarif-2.1.0.json\",\n");
    let _ = writeln!(out, "  \"version\": \"{SARIF_VERSION}\",");
    out.push_str("  \"runs\": [\n    {\n      \"tool\": {\n        \"driver\": {\n");
    out.push_str("          \"name\": \"acq-lint\",\n");
    let _ = writeln!(
        out,
        "          \"version\": \"{}\",",
        env!("CARGO_PKG_VERSION")
    );
    out.push_str("          \"informationUri\": \"https://example.invalid/acquire/acq-lint\",\n");
    out.push_str("          \"rules\": [\n");
    for (i, rule) in rules::ALL.iter().enumerate() {
        let _ = write!(
            out,
            "            {{ \"id\": \"{}\", \"shortDescription\": {{ \"text\": \"{}\" }} }}",
            escape(rule),
            escape(rule_description(rule))
        );
        out.push_str(if i + 1 < rules::ALL.len() {
            ",\n"
        } else {
            "\n"
        });
    }
    out.push_str("          ]\n        }\n      },\n");
    out.push_str("      \"results\": [");
    let mut first = true;
    for d in &report.violations {
        push_result(&mut out, &mut first, d, None);
    }
    for a in &report.allowed {
        push_result(&mut out, &mut first, &a.diagnostic, Some(a.by));
    }
    if !first {
        out.push_str("\n      ");
    }
    out.push_str("]\n    }\n  ]\n}\n");
    out
}

fn push_result(out: &mut String, first: &mut bool, d: &Diagnostic, by: Option<AllowedBy>) {
    if !*first {
        out.push(',');
    }
    *first = false;
    out.push_str("\n        {\n");
    let _ = writeln!(out, "          \"ruleId\": \"{}\",", escape(d.rule));
    let _ = writeln!(
        out,
        "          \"level\": \"{}\",",
        if by.is_some() { "note" } else { "error" }
    );
    let _ = writeln!(
        out,
        "          \"message\": {{ \"text\": \"{}\" }},",
        escape(&d.message)
    );
    out.push_str("          \"locations\": [\n");
    out.push_str("            { \"physicalLocation\": {\n");
    let _ = writeln!(
        out,
        "              \"artifactLocation\": {{ \"uri\": \"{}\" }},",
        escape(&d.file)
    );
    let _ = writeln!(
        out,
        "              \"region\": {{ \"startLine\": {}, \"startColumn\": {} }}",
        d.line, d.col
    );
    out.push_str("            } }\n          ]");
    if let Some(by) = by {
        let kind = match by {
            AllowedBy::Inline => "inSource",
            AllowedBy::Config => "external",
        };
        let _ = write!(
            out,
            ",\n          \"suppressions\": [ {{ \"kind\": \"{kind}\" }} ]"
        );
    }
    out.push_str("\n        }");
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::report::Allowed;

    fn sample() -> Report {
        let mut r = Report {
            files_scanned: 3,
            violations: vec![Diagnostic {
                rule: "lock-order",
                file: "crates/serve/src/admission.rs".to_string(),
                line: 41,
                col: 9,
                message: "lock-order cycle: \"a\" then \"b\"".to_string(),
            }],
            allowed: vec![Allowed {
                diagnostic: Diagnostic {
                    rule: "commit-reachability",
                    file: "crates/core/src/driver.rs".to_string(),
                    line: 7,
                    col: 3,
                    message: "`.lock()` reachable from commit fn".to_string(),
                },
                by: AllowedBy::Inline,
            }],
        };
        r.sort();
        r
    }

    #[test]
    fn renders_version_rules_and_both_result_kinds() {
        let s = render(&sample());
        assert!(s.contains("\"version\": \"2.1.0\""), "{s}");
        for rule in rules::ALL {
            assert!(s.contains(&format!("\"id\": \"{rule}\"")), "missing {rule}");
        }
        assert!(s.contains("\"level\": \"error\""), "{s}");
        assert!(s.contains("\"level\": \"note\""), "{s}");
        assert!(s.contains("\"kind\": \"inSource\""), "{s}");
        assert!(s.contains("\"startLine\": 41, \"startColumn\": 9"), "{s}");
    }

    #[test]
    fn message_quotes_are_escaped() {
        let s = render(&sample());
        assert!(s.contains("cycle: \\\"a\\\" then \\\"b\\\""), "{s}");
    }
}

//! The approximate workspace call graph — step two of cross-file analysis.
//!
//! For every library function indexed by [`ItemIndex`], this layer extracts
//! three things from the body tokens:
//!
//! * **call sites**, resolved to candidate workspace functions by name and
//!   receiver shape (`self.m(…)` prefers the current impl's method,
//!   `self.field.m(…)` follows the indexed field type, `Type::m(…)` and
//!   `module::m(…)` follow the qualifier, bare `m(…)` prefers same-file
//!   free functions). Resolution is deliberately an over-approximation —
//!   when the receiver's type is unknown, every method of that name is a
//!   candidate — except for ubiquitous std method names (`push`, `get`,
//!   `insert`, …), where by-name fallback would connect everything to
//!   everything and drown the rules in noise;
//! * **blocking primitives**: the same blocking sets the PR 5 textual
//!   commit-path contract used (`.lock()`, channel `recv`, stream I/O,
//!   `thread::sleep`, `print!`-family macros), now recorded per function so
//!   commit-reachability can chase them through calls. A blocking-named
//!   method that *confidently* resolves to a workspace function (e.g. a
//!   `fn lock(&self)` helper) is a call edge instead — the primitive is
//!   found inside the helper;
//! * **lock acquisitions** with an approximate hold window: from the
//!   `.lock()` site to an explicit `drop(guard)`, else to the end of the
//!   guard's enclosing scope (let-bound guards) or statement (temporary
//!   guards). `try_lock` never blocks and is not an acquisition.

use std::collections::BTreeMap;

use crate::index::{FnItem, ItemIndex};
use crate::lexer::{Tok, Token};
use crate::rules::SourceFile;

/// Blocking method calls (on unknown receivers). `try_lock` is the
/// sanctioned alternative and is a distinct identifier.
pub const BLOCKING_METHODS: [&str; 11] = [
    "lock",
    "read_line",
    "read_exact",
    "read_to_end",
    "read_to_string",
    "write_all",
    "flush",
    "recv",
    "recv_timeout",
    "wait",
    "wait_timeout",
];

/// Blocking free calls (`qualifier::name`).
pub const BLOCKING_QUALIFIED: [(&str, &str); 5] = [
    ("thread", "sleep"),
    ("fs", "read"),
    ("fs", "write"),
    ("File", "open"),
    ("File", "create"),
];

/// Blocking output macros.
pub const BLOCKING_MACROS: [&str; 4] = ["print", "println", "eprint", "eprintln"];

/// Method names too common for by-name fallback resolution: connecting
/// every `.push(…)` to every `fn push` in the workspace would make the
/// over-approximation useless.
const COMMON_METHODS: [&str; 36] = [
    "new",
    "default",
    "clone",
    "len",
    "is_empty",
    "push",
    "pop",
    "insert",
    "remove",
    "get",
    "get_mut",
    "contains",
    "contains_key",
    "iter",
    "iter_mut",
    "into_iter",
    "next",
    "clear",
    "take",
    "set",
    "extend",
    "drain",
    "entry",
    "keys",
    "values",
    "map",
    "filter",
    "fold",
    "min",
    "max",
    "cmp",
    "eq",
    "hash",
    "fmt",
    "drop",
    "write",
];

/// One resolved call site inside a function body.
#[derive(Debug, Clone)]
pub struct CallSite {
    /// Token index of the callee name identifier.
    pub tok: usize,
    /// Candidate callee function ids (empty: external / unresolved).
    pub callees: Vec<usize>,
    /// Callee name as written.
    pub name: String,
}

/// One blocking primitive inside a function body.
#[derive(Debug, Clone)]
pub struct BlockingSite {
    /// Token index of the blocking identifier.
    pub tok: usize,
    /// Diagnostic subject phrase (``blocking call `.lock(…)` ``).
    pub what: String,
}

/// One lock acquisition inside a function body.
#[derive(Debug, Clone)]
pub struct LockAcq {
    /// Token index of the `lock` identifier.
    pub tok: usize,
    /// Token index past which the guard is certainly dead.
    pub hold_end: usize,
    /// Stable lock name: `Owner.field` (owner = impl type or file stem).
    pub lock: String,
}

/// Per-function call, blocking and lock facts for the whole workspace.
#[derive(Debug, Default)]
pub struct CallGraph {
    /// Call sites per function id (parallel to `ItemIndex::fns`).
    pub calls: Vec<Vec<CallSite>>,
    /// Blocking primitives per function id.
    pub blocking: Vec<Vec<BlockingSite>>,
    /// Lock acquisitions per function id.
    pub locks: Vec<Vec<LockAcq>>,
}

impl CallGraph {
    /// Builds the graph over every indexed lib function.
    #[must_use]
    pub fn build(files: &[SourceFile], idx: &ItemIndex) -> Self {
        let mut g = Self::default();
        for (id, item) in idx.fns.iter().enumerate() {
            let mut ext = Extractor {
                files,
                idx,
                item,
                id,
                calls: Vec::new(),
                blocking: Vec::new(),
                locks: Vec::new(),
            };
            if item.is_lib {
                ext.run();
            }
            g.calls.push(ext.calls);
            g.blocking.push(ext.blocking);
            g.locks.push(ext.locks);
        }
        g
    }

    /// Functions reachable from `roots` (inclusive), with the BFS parent of
    /// each reached function for chain reconstruction.
    #[must_use]
    pub fn reachable(&self, roots: &[usize]) -> BTreeMap<usize, Option<usize>> {
        let mut parent: BTreeMap<usize, Option<usize>> = BTreeMap::new();
        let mut queue: Vec<usize> = Vec::new();
        for &r in roots {
            if let std::collections::btree_map::Entry::Vacant(e) = parent.entry(r) {
                e.insert(None);
                queue.push(r);
            }
        }
        let mut qi = 0;
        while qi < queue.len() {
            let f = queue[qi];
            qi += 1;
            for call in &self.calls[f] {
                for &callee in &call.callees {
                    if let std::collections::btree_map::Entry::Vacant(e) = parent.entry(callee) {
                        e.insert(Some(f));
                        queue.push(callee);
                    }
                }
            }
        }
        parent
    }

    /// The call chain `root → … → f` under a BFS parent map.
    #[must_use]
    pub fn chain(parent: &BTreeMap<usize, Option<usize>>, mut f: usize) -> Vec<usize> {
        let mut chain = vec![f];
        while let Some(Some(p)) = parent.get(&f) {
            chain.push(*p);
            f = *p;
        }
        chain.reverse();
        chain
    }

    /// The fixpoint lock closure: for each function, every lock name it may
    /// acquire directly or through any callee chain.
    #[must_use]
    pub fn lock_closure(&self) -> Vec<Vec<String>> {
        let n = self.calls.len();
        let mut sets: Vec<Vec<String>> = (0..n)
            .map(|f| {
                let mut s: Vec<String> = self.locks[f].iter().map(|l| l.lock.clone()).collect();
                s.sort();
                s.dedup();
                s
            })
            .collect();
        loop {
            let mut changed = false;
            for f in 0..n {
                let mut merged = sets[f].clone();
                for call in &self.calls[f] {
                    for &callee in &call.callees {
                        for l in &sets[callee] {
                            if !merged.contains(l) {
                                merged.push(l.clone());
                            }
                        }
                    }
                }
                if merged.len() != sets[f].len() {
                    merged.sort();
                    sets[f] = merged;
                    changed = true;
                }
            }
            if !changed {
                return sets;
            }
        }
    }
}

struct Extractor<'a> {
    files: &'a [SourceFile],
    idx: &'a ItemIndex,
    item: &'a FnItem,
    #[allow(dead_code)]
    id: usize,
    calls: Vec<CallSite>,
    blocking: Vec<BlockingSite>,
    locks: Vec<LockAcq>,
}

/// The receiver shape of a method call, read backwards from the `.`.
enum Receiver {
    /// `self.m(…)`.
    SelfDirect,
    /// `self.field.m(…)` — the field name.
    SelfField(String),
    /// `x.m(…)` / `x.y.m(…)` — the last plain identifier in the chain.
    Ident(String),
    /// `expr.m(…)` — a call result or index expression.
    Expr,
}

impl Extractor<'_> {
    fn toks(&self) -> &[Token] {
        &self.files[self.item.file].scanned.tokens
    }

    fn ident(&self, i: usize) -> Option<&str> {
        match self.toks().get(i).map(|t| &t.tok) {
            Some(Tok::Ident(s)) => Some(s.as_str()),
            _ => None,
        }
    }

    fn punct(&self, i: usize, c: char) -> bool {
        matches!(self.toks().get(i).map(|t| &t.tok), Some(Tok::Punct(p)) if *p == c)
    }

    fn run(&mut self) {
        let Some((open, close)) = self.item.body else {
            return;
        };
        for i in open + 1..close {
            let Some(name) = self.ident(i).map(str::to_string) else {
                continue;
            };
            // Macros: only the blocking output family matters.
            if self.punct(i + 1, '!') {
                if BLOCKING_MACROS.contains(&name.as_str()) {
                    self.blocking.push(BlockingSite {
                        tok: i,
                        what: format!("blocking output macro `{name}!`"),
                    });
                }
                continue;
            }
            if !self.punct(i + 1, '(') {
                continue;
            }
            let is_method = i >= 1 && self.punct(i - 1, '.');
            let is_qualified = i >= 3 && self.punct(i - 1, ':') && self.punct(i - 2, ':');
            if is_method {
                self.method_call(i, &name, open, close);
            } else if is_qualified {
                self.qualified_call(i, &name);
            } else {
                self.bare_call(i, &name);
            }
        }
    }

    fn method_call(&mut self, i: usize, name: &str, body_open: usize, body_close: usize) {
        let recv = self.receiver(i - 1);
        let confident = self.resolve_confident(&recv, name);
        if let Some(callees) = confident {
            self.calls.push(CallSite {
                tok: i,
                callees,
                name: name.to_string(),
            });
            return;
        }
        if name == "lock" {
            let lock = self.lock_name(&recv);
            if let Some(lock) = lock {
                let hold_end = self.hold_end(i, body_open, body_close);
                self.locks.push(LockAcq {
                    tok: i,
                    hold_end,
                    lock,
                });
            }
            self.blocking.push(BlockingSite {
                tok: i,
                what: "blocking call `.lock(…)`".to_string(),
            });
            return;
        }
        if BLOCKING_METHODS.contains(&name) {
            self.blocking.push(BlockingSite {
                tok: i,
                what: format!("blocking call `.{name}(…)`"),
            });
            return;
        }
        // Weak fallback: every workspace method of that name, unless the
        // name is too common to mean anything.
        if COMMON_METHODS.contains(&name) {
            return;
        }
        let callees: Vec<usize> = self
            .idx
            .named(name)
            .iter()
            .copied()
            .filter(|&f| self.idx.fns[f].is_lib && self.idx.fns[f].impl_type.is_some())
            .collect();
        if !callees.is_empty() {
            self.calls.push(CallSite {
                tok: i,
                callees,
                name: name.to_string(),
            });
        }
    }

    fn qualified_call(&mut self, i: usize, name: &str) {
        let Some(q) = self.ident(i - 3).map(str::to_string) else {
            // `<T as Trait>::m(…)` and similar — unresolved.
            return;
        };
        // `Type::m` first, then `module::m` (free fns in `module.rs`).
        let mut callees: Vec<usize> = self
            .idx
            .named(name)
            .iter()
            .copied()
            .filter(|&f| self.idx.fns[f].is_lib && self.idx.fns[f].impl_type.as_deref() == Some(&q))
            .collect();
        if callees.is_empty() {
            callees = self
                .idx
                .named(name)
                .iter()
                .copied()
                .filter(|&f| {
                    let item = &self.idx.fns[f];
                    item.is_lib
                        && item.impl_type.is_none()
                        && (self.idx.file_stems[item.file] == q || item.module.last() == Some(&q))
                })
                .collect();
        }
        if !callees.is_empty() {
            self.calls.push(CallSite {
                tok: i,
                callees,
                name: name.to_string(),
            });
            return;
        }
        for (qual, n) in BLOCKING_QUALIFIED {
            if name == n && q == qual {
                self.blocking.push(BlockingSite {
                    tok: i,
                    what: format!("blocking call `{qual}::{n}(…)`"),
                });
            }
        }
    }

    fn bare_call(&mut self, i: usize, name: &str) {
        // Keywords and constructors (`Some(…)`, `Ok(…)`) are not calls.
        const KEYWORDS: [&str; 8] = ["if", "while", "for", "match", "return", "move", "in", "as"];
        if KEYWORDS.contains(&name) || name.chars().next().is_some_and(char::is_uppercase) {
            return;
        }
        let same_file: Vec<usize> = self
            .idx
            .named(name)
            .iter()
            .copied()
            .filter(|&f| {
                let item = &self.idx.fns[f];
                item.is_lib && item.impl_type.is_none() && item.file == self.item.file
            })
            .collect();
        let callees = if same_file.is_empty() {
            self.idx
                .named(name)
                .iter()
                .copied()
                .filter(|&f| self.idx.fns[f].is_lib && self.idx.fns[f].impl_type.is_none())
                .collect()
        } else {
            same_file
        };
        if !callees.is_empty() {
            self.calls.push(CallSite {
                tok: i,
                callees,
                name: name.to_string(),
            });
        }
    }

    /// Reads the receiver chain backwards from the `.` at `dot`.
    fn receiver(&self, dot: usize) -> Receiver {
        let mut idents: Vec<String> = Vec::new();
        let mut j = dot;
        while j >= 1 && self.punct(j, '.') {
            match self.ident(j - 1) {
                Some(name) => {
                    idents.push(name.to_string());
                    if j < 2 {
                        break;
                    }
                    j -= 2;
                }
                None => return Receiver::Expr, // `foo().m(…)`, `a[i].m(…)`
            }
        }
        idents.reverse();
        match idents.as_slice() {
            [one] if one == "self" => Receiver::SelfDirect,
            [first, rest @ ..] if first == "self" && !rest.is_empty() => {
                Receiver::SelfField(rest[rest.len() - 1].clone())
            }
            [.., last] => Receiver::Ident(last.clone()),
            [] => Receiver::Expr,
        }
    }

    /// Type-confident resolution: the receiver's type is known and has a
    /// method of this name in the index.
    fn resolve_confident(&self, recv: &Receiver, name: &str) -> Option<Vec<usize>> {
        let ty: &str = match recv {
            Receiver::SelfDirect => self.item.impl_type.as_deref()?,
            Receiver::SelfField(field) => {
                let owner = self.item.impl_type.as_deref()?;
                self.idx.field_type(owner, field)?
            }
            Receiver::Ident(_) | Receiver::Expr => return None,
        };
        let callees: Vec<usize> = self
            .idx
            .named(name)
            .iter()
            .copied()
            .filter(|&f| self.idx.fns[f].is_lib && self.idx.fns[f].impl_type.as_deref() == Some(ty))
            .collect();
        (!callees.is_empty()).then_some(callees)
    }

    /// The stable name of the mutex acquired at a `.lock()` site:
    /// `Owner.field` where owner is the impl type (or the file stem at file
    /// scope) and field is the last identifier in the receiver chain.
    fn lock_name(&self, recv: &Receiver) -> Option<String> {
        let owner = self
            .item
            .impl_type
            .clone()
            .unwrap_or_else(|| self.idx.file_stems[self.item.file].clone());
        match recv {
            Receiver::SelfField(field) => Some(format!("{owner}.{field}")),
            Receiver::Ident(name) => Some(format!("{owner}.{name}")),
            Receiver::SelfDirect | Receiver::Expr => None,
        }
    }

    /// The token index past which the guard from the `.lock()` at `i` is
    /// certainly dead: an explicit `drop(guard)`, the end of the enclosing
    /// scope for let-bound guards, or the end of the statement for
    /// temporaries.
    fn hold_end(&self, i: usize, body_open: usize, body_close: usize) -> usize {
        let scope_close = self.enclosing_scope_close(i, body_open, body_close);
        // `let [mut] g = <chain>.lock()…` — find the binding, if any.
        let chain_start = self.chain_start(i);
        let guard = self.let_guard(chain_start);
        match guard {
            Some(g) => {
                // `drop(g)` before scope end kills the guard early.
                let toks = self.toks();
                for j in i..scope_close {
                    if self.ident(j) == Some("drop")
                        && self.punct(j + 1, '(')
                        && self.ident(j + 2) == Some(&g)
                        && self.punct(j + 3, ')')
                    {
                        return j;
                    }
                    let _ = toks;
                }
                scope_close
            }
            None => {
                // Temporary guard: dead at the end of the statement.
                let mut depth = 0i32;
                for j in i..scope_close {
                    if self.punct(j, '(') || self.punct(j, '[') {
                        depth += 1;
                    } else if self.punct(j, ')') || self.punct(j, ']') {
                        depth -= 1;
                    } else if self.punct(j, ';') && depth <= 0 {
                        return j;
                    }
                }
                scope_close
            }
        }
    }

    /// The first token of the receiver chain for the method ident at `i`.
    fn chain_start(&self, i: usize) -> usize {
        let mut j = i;
        while j >= 2 && self.punct(j - 1, '.') && self.ident(j - 2).is_some() {
            j -= 2;
        }
        j
    }

    /// `let [mut] g =` immediately before `chain_start`, if present.
    fn let_guard(&self, chain_start: usize) -> Option<String> {
        if chain_start < 3 || !self.punct(chain_start - 1, '=') {
            return None;
        }
        let g = self.ident(chain_start - 2)?;
        let kw = self.ident(chain_start - 3);
        if kw == Some("let") {
            return Some(g.to_string());
        }
        if kw == Some("mut") && self.ident(chain_start.checked_sub(4)?) == Some("let") {
            return Some(g.to_string());
        }
        None
    }

    /// The `}` closing the innermost brace scope containing token `i`.
    fn enclosing_scope_close(&self, i: usize, body_open: usize, body_close: usize) -> usize {
        let mut stack: Vec<usize> = Vec::new();
        for j in body_open..=body_close.min(self.toks().len().saturating_sub(1)) {
            if j >= i {
                break;
            }
            if self.punct(j, '{') {
                stack.push(j);
            } else if self.punct(j, '}') {
                stack.pop();
            }
        }
        let Some(&innermost) = stack.last() else {
            return body_close;
        };
        // Find its matching close.
        let mut depth = 0i32;
        for j in innermost..=body_close {
            if self.punct(j, '{') {
                depth += 1;
            } else if self.punct(j, '}') {
                depth -= 1;
                if depth == 0 {
                    return j;
                }
            }
        }
        body_close
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::FileContext;

    fn build(srcs: &[(&str, &str)]) -> (Vec<SourceFile>, ItemIndex, CallGraph) {
        let files: Vec<SourceFile> = srcs
            .iter()
            .map(|(p, s)| SourceFile::new(p, s, FileContext::Lib))
            .collect();
        let idx = ItemIndex::build(&files);
        let graph = CallGraph::build(&files, &idx);
        (files, idx, graph)
    }

    fn fn_id(idx: &ItemIndex, name: &str) -> usize {
        idx.named(name)[0]
    }

    #[test]
    fn self_calls_resolve_to_the_impl() {
        let (_, idx, g) = build(&[(
            "crates/x/src/a.rs",
            "struct A { w: Widget }\n\
             impl A { fn top(&self) { self.mid(); } fn mid(&self) {} }\n\
             impl Widget { fn mid(&self) {} }\n",
        )]);
        let top = fn_id(&idx, "top");
        assert_eq!(g.calls[top].len(), 1);
        assert_eq!(
            g.calls[top][0].callees,
            vec![idx
                .named("mid")
                .iter()
                .copied()
                .find(|&f| idx.fns[f].impl_type.as_deref() == Some("A"))
                .unwrap()],
            "self.mid() resolves to A::mid, not Widget::mid"
        );
    }

    #[test]
    fn field_typed_receivers_follow_the_field() {
        let (_, idx, g) = build(&[(
            "crates/x/src/a.rs",
            "struct A { w: Widget }\n\
             impl A { fn top(&self) { self.w.render(); } }\n\
             impl Widget { fn render(&self) {} }\n\
             impl Gadget { fn render(&self) {} }\n",
        )]);
        let top = fn_id(&idx, "top");
        let widget_render = idx
            .named("render")
            .iter()
            .copied()
            .find(|&f| idx.fns[f].impl_type.as_deref() == Some("Widget"))
            .unwrap();
        assert_eq!(g.calls[top][0].callees, vec![widget_render]);
    }

    #[test]
    fn cross_file_module_calls_resolve_by_stem() {
        let (_, idx, g) = build(&[
            (
                "crates/x/src/driver.rs",
                "fn commit() { pool::execute_batch(); }\n",
            ),
            ("crates/x/src/pool.rs", "pub fn execute_batch() {}\n"),
        ]);
        let commit = fn_id(&idx, "commit");
        assert_eq!(
            g.calls[commit][0].callees,
            vec![fn_id(&idx, "execute_batch")]
        );
    }

    #[test]
    fn blocking_primitives_are_recorded_not_resolved() {
        let (_, idx, g) = build(&[(
            "crates/x/src/a.rs",
            "struct A { m: Mutex }\n\
             impl A { fn f(&self, rx: Receiver<u8>) { let g = self.m.lock(); rx.recv(); \
             std::thread::sleep(d); println!(\"x\"); self.m.try_lock(); } }\n",
        )]);
        let f = fn_id(&idx, "f");
        let whats: Vec<&str> = g.blocking[f].iter().map(|b| b.what.as_str()).collect();
        assert_eq!(whats.len(), 4, "{whats:?}");
        assert!(whats[0].contains(".lock"));
        assert!(whats[1].contains(".recv"));
        assert!(whats[2].contains("thread::sleep"));
        assert!(whats[3].contains("println!"));
        assert_eq!(g.locks[f].len(), 1);
        assert_eq!(g.locks[f][0].lock, "A.m");
    }

    #[test]
    fn blocking_named_helpers_become_call_edges() {
        // `self.lock()` resolves to the indexed helper; the primitive lives
        // inside the helper and is reached transitively.
        let (_, idx, g) = build(&[(
            "crates/x/src/registry.rs",
            "struct R { inner: Mutex }\n\
             impl R { fn get(&self) { self.lock(); } fn lock(&self) { self.inner.lock(); } }\n",
        )]);
        let get = fn_id(&idx, "get");
        assert_eq!(
            g.blocking[get].len(),
            0,
            "self.lock() is a call, not a primitive"
        );
        assert_eq!(g.calls[get].len(), 1);
        let helper = g.calls[get][0].callees[0];
        assert_eq!(g.blocking[helper].len(), 1);
        assert_eq!(g.locks[helper][0].lock, "R.inner");
    }

    #[test]
    fn reachability_chains_reconstruct() {
        let (_, idx, g) = build(&[(
            "crates/x/src/a.rs",
            "fn root() { middle(); }\nfn middle() { leaf(); }\nfn leaf() {}\nfn island() {}\n",
        )]);
        let parent = g.reachable(&[fn_id(&idx, "root")]);
        assert!(parent.contains_key(&fn_id(&idx, "leaf")));
        assert!(!parent.contains_key(&fn_id(&idx, "island")));
        let chain = CallGraph::chain(&parent, fn_id(&idx, "leaf"));
        let names: Vec<&str> = chain.iter().map(|&f| idx.fns[f].name.as_str()).collect();
        assert_eq!(names, ["root", "middle", "leaf"]);
    }

    #[test]
    fn lock_closure_rolls_up_through_calls() {
        let (_, idx, g) = build(&[(
            "crates/x/src/a.rs",
            "struct A { x: Mutex } struct B { y: Mutex }\n\
             impl A { fn outer(&self, b: &B) { let g = self.x.lock(); self.helper(); } \
             fn helper(&self) {} }\n\
             impl B { fn inner_lock(&self) { let g = self.y.lock(); } }\n",
        )]);
        let closure = g.lock_closure();
        assert_eq!(closure[fn_id(&idx, "outer")], ["A.x"]);
        assert_eq!(closure[fn_id(&idx, "inner_lock")], ["B.y"]);
    }

    #[test]
    fn hold_windows_end_at_drop_or_statement() {
        let (_, idx, g) = build(&[(
            "crates/x/src/a.rs",
            "struct A { m: Mutex, n: Mutex }\n\
             impl A { fn f(&self) { let g = self.m.lock(); g.x += 1; drop(g); \
             self.n.lock().unwrap().y = 2; other(); } }\n\
             fn other() {}\n",
        )]);
        let f = fn_id(&idx, "f");
        assert_eq!(g.locks[f].len(), 2);
        let toks_dropped_before = g.locks[f][0].hold_end < g.locks[f][1].tok;
        assert!(toks_dropped_before, "drop(g) ends the first hold window");
        // The temporary guard dies at its `;`, before the `other()` call.
        let other_call = g.calls[f]
            .iter()
            .find(|c| c.name == "other")
            .expect("other() resolved");
        assert!(g.locks[f][1].hold_end < other_call.tok);
    }
}

// Seeded obs-discipline fixture: an eager trace label and a worker-path
// metric commit without its worker-metric-ok justification.

pub fn seeded() {
    obs.trace(1, format!("eager label"));
    obs.trace(1, || format!("lazy label"));
    m.cells.inc();
    m.cells.inc(); // worker-metric-ok: fixture counter, order-free
}

// Seeded obs-discipline fixture: eager trace label, unannotated worker
// metric commit, and a zone-counter mutation off the zone_stat_paths.

pub fn seeded() {
    obs.trace(1, format!("eager label"));
    obs.trace(1, || format!("lazy label"));
    m.cells.inc();
    m.cells.inc(); // worker-metric-ok: fixture counter, order-free
}

pub fn zones(stats: &mut ExecStats) {
    stats.zones_pruned += 1;
    let _total = stats.zones_full + stats.zones_scanned;
}

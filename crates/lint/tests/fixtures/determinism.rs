// Seeded determinism fixture: checked under a config whose ordered_paths
// cover the virtual path the test assigns, with no clock or sleep grants.

use std::collections::HashMap;
use std::time::Instant;

pub fn seeded() {
    let m: HashMap<u32, u32> = HashMap::new();
    let t = Instant::now();
    std::thread::sleep(std::time::Duration::from_millis(1));
    let _ = (m, t);
}

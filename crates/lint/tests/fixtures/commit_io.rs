// Seeded commit-path fixture: blocking lock acquisition, blocking stream
// I/O, an output macro and a sleep, plus the sanctioned alternatives.

pub fn seeded(stream: &mut TcpStream) {
    let guard = self.last_decay_ms.lock();
    stream.write_all(b"metrics");
    println!("scraped");
    std::thread::sleep(POLL);
    let fine = self.last_decay_ms.try_lock();
    self.total.fetch_add(1, Ordering::Relaxed); // relaxed-ok: wait-free commit
    let cold = self.last_decay_ms.lock(); // commit-io-ok: one-time init before serving
}

// Seeded lock-order fixture: `Gate.a` then `Gate.b` in fwd() but `Gate.b`
// then `Gate.a` in rev() — no global acquisition order exists.

struct Gate { a: Mutex<u32>, b: Mutex<u32> }

impl Gate {
    pub fn fwd(&self) {
        let x = self.a.lock();
        let y = self.b.lock();
    }
    pub fn rev(&self) {
        let y = self.b.lock();
        let x = self.a.lock();
    }
}

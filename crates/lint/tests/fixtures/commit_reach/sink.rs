// Seeded commit-reachability fixture, file 3 of 3: blocking primitives
// two hops from the commit root, plus the sanctioned alternatives.

pub fn store(t: &Telemetry) {
    let guard = t.history.lock();
    println!("stored");
    drop(guard);
    let fine = t.history.try_lock();
    t.total.fetch_add(1, Ordering::Relaxed); // relaxed-ok: wait-free commit
    let cold = t.history.lock(); // commit-io-ok: one-time init before serving
}

// Seeded commit-reachability fixture, file 1 of 3: the commit root. The
// blocking work hides two call hops away, in sink.rs.

pub fn emit() {
    relay::forward();
}

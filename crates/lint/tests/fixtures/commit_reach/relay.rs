// Seeded commit-reachability fixture, file 2 of 3: the innocent middle
// hop between the commit root and the blocking sink.

pub fn forward() {
    sink::store();
}

// Seeded commit-reachability fixture (journal flavour), file 2 of 2: the
// blocking disk write one call hop from the append root — exactly the
// mistake the journal's ring/writer-thread split exists to prevent.

pub fn persist(j: &Journal, record: String) {
    j.file.write_all(record.as_bytes());
    j.written.fetch_add(1, Ordering::Relaxed); // relaxed-ok: wait-free tally
}

// Seeded commit-reachability fixture (journal flavour), file 1 of 2: a
// journal append root that wrongly persists inline instead of handing the
// record to the wait-free ring for the writer thread to drain.

pub fn try_append(j: &Journal, record: String) {
    let slot = j.slots[0].try_lock();
    j.head.fetch_add(1, Ordering::Relaxed); // relaxed-ok: wait-free cursor
    writer::persist(j, record);
}

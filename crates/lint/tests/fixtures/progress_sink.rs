// Seeded progress-sink fixture: a `.try_push(…)` off the sanctioned
// progress_sink_paths, alongside calls the fifth contract must not flag.

pub fn seeded(sink: &ProgressSink, queue: &mut Vec<u64>) {
    sink.try_push(event);
    queue.push(7);
    try_push(standalone);
}

// Seeded atomics-audit fixture: every bare Relaxed needs a relaxed-ok reason.

use std::sync::atomic::{AtomicU64, Ordering};

pub fn seeded(c: &AtomicU64) -> u64 {
    c.fetch_add(1, Ordering::Relaxed);
    c.load(Ordering::Relaxed) // relaxed-ok: fixture tally, read at rest
}

// Seeded error-hygiene fixture: a public error enum without non_exhaustive.

#[derive(Debug)]
pub enum SeededError {
    Boom,
}

#[non_exhaustive]
#[derive(Debug)]
pub enum FineError {
    Quiet,
}

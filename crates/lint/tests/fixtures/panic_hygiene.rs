// Seeded panic-hygiene fixture: never compiled, scanned as library code by
// crates/lint/tests/fixtures.rs, which asserts these exact positions.

pub fn seeded(x: Option<u32>) -> u32 {
    let a = x.unwrap();
    let b = x.expect("boom");
    if a > b {
        panic!("nope");
    }
    todo!()
}

pub fn allowed(x: Option<u32>) -> u32 {
    x.unwrap() // lint-allow(panic-hygiene): fixture invariant, always Some
}

pub struct Parser;
impl Parser {
    fn expect(&self, _t: u32) {}
    pub fn run(&self) {
        self.expect(1); // a parser's own `expect` method is not a panic
    }
}

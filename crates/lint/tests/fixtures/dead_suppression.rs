// Seeded suppression-audit fixture: one live annotation, one dead one.

pub fn live(x: Option<u32>) -> u32 {
    x.unwrap() // lint-allow(panic-hygiene): fixture invariant holds
}

pub fn dead() -> u32 {
    checked_add() // lint-allow(panic-hygiene): stale since the refactor
}

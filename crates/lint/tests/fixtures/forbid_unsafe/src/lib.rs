// Seeded forbid-unsafe fixture: a crate root without the forbid attribute
// and an unsafe block in library code.

pub fn seeded(p: *const u8) -> u8 {
    unsafe { p.read() }
}

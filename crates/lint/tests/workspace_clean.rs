//! The linter must ship clean on its own workspace, and the JSON and SARIF
//! reports it emits must validate against their committed schemas — the
//! same contracts CI enforces with `validate_metrics`. The committed
//! `lint-baseline.json` ratchet and the serve crate's lock order are
//! self-checked here too: the repo is its own richest fixture.

use std::collections::{BTreeMap, BTreeSet};
use std::path::{Path, PathBuf};

use acq_lint::baseline::Baseline;
use acq_lint::report::REPORT_VERSION;
use acq_lint::rules::lock_order;
use acq_lint::{
    check_source, load_config, load_workspace, run_workspace, sarif, Config, FileContext, Report,
};
use acq_obs::{json, schema};

fn repo_root() -> PathBuf {
    // crates/lint -> crates -> workspace root.
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("workspace root exists")
        .to_path_buf()
}

fn committed_schema(rel: &str) -> json::JsonValue {
    let path = repo_root().join(rel);
    let text = std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("{}: {e}", path.display()));
    json::parse(&text).unwrap_or_else(|e| panic!("{rel} parses: {e:?}"))
}

fn lint_schema() -> json::JsonValue {
    committed_schema("schemas/lint.schema.json")
}

fn run_repo() -> Report {
    let root = repo_root();
    let cfg = load_config(&root.join("lint.toml")).expect("lint.toml parses");
    run_workspace(&root, &cfg).expect("workspace walk succeeds")
}

#[test]
fn the_workspace_is_lint_clean() {
    let report = run_repo();
    assert!(
        report.is_clean(),
        "acq-lint must ship clean on its own repo:\n{}",
        report.render_text(false)
    );
    assert!(
        report.files_scanned > 100,
        "the walk saw only {} files — is the root detection broken?",
        report.files_scanned
    );
    // The escape hatches are in use (annotated sites, compat allows) and
    // every use is audited in the report.
    assert!(!report.allowed.is_empty());
}

#[test]
fn the_json_report_validates_against_the_committed_schema() {
    let report = run_repo();
    let value = json::parse(&report.to_json()).expect("report JSON parses");
    let errors = schema::validate(&lint_schema(), &value);
    assert!(errors.is_empty(), "schema violations: {errors:?}");
    assert_eq!(
        value.pointer("/version").and_then(json::JsonValue::as_u64),
        Some(REPORT_VERSION)
    );
    assert_eq!(
        value
            .pointer("/summary/clean")
            .and_then(json::JsonValue::as_bool),
        Some(true)
    );
}

fn dirty_report() -> Report {
    let cfg = Config::default();
    let (violations, allowed) = check_source(
        "crates/core/src/fixture.rs",
        "fn f(x: Option<u32>) { x.unwrap(); }",
        FileContext::Lib,
        &cfg,
    );
    assert_eq!(violations.len(), 1);
    Report {
        files_scanned: 1,
        violations,
        allowed,
    }
}

#[test]
fn a_dirty_report_also_validates_against_the_schema() {
    // Exercise the `violations` array branch of the schema, which the clean
    // repo run never populates.
    let report = dirty_report();
    let value = json::parse(&report.to_json()).expect("report JSON parses");
    let errors = schema::validate(&lint_schema(), &value);
    assert!(errors.is_empty(), "schema violations: {errors:?}");
    assert_eq!(
        value
            .pointer("/summary/clean")
            .and_then(json::JsonValue::as_bool),
        Some(false)
    );
}

#[test]
fn the_sarif_log_validates_against_the_committed_schema() {
    let sarif_schema = committed_schema("schemas/sarif-subset.schema.json");
    // The clean repo run exercises the rule table and the suppression
    // (level=note) branch; the dirty sample exercises level=error results.
    for report in [run_repo(), dirty_report()] {
        let value = json::parse(&sarif::render(&report)).expect("SARIF JSON parses");
        let errors = schema::validate(&sarif_schema, &value);
        assert!(errors.is_empty(), "SARIF schema violations: {errors:?}");
    }
}

#[test]
fn the_committed_baseline_matches_the_current_run_and_roundtrips() {
    let path = repo_root().join("lint-baseline.json");
    let text = std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("{}: {e}", path.display()));
    let committed = Baseline::parse(&text).expect("lint-baseline.json parses");
    let current = Baseline::from_report(&run_repo());
    // The ratchet: no per-rule count may exceed the committed baseline.
    let regressions = committed.regressions(&current);
    assert!(
        regressions.is_empty(),
        "baseline regressions: {regressions:#?}"
    );
    // And the committed file must not lag behind either — when suppressions
    // are removed the baseline is re-written in the same change, so the two
    // stay byte-for-byte in sync (`--write-baseline` emits this rendering).
    assert_eq!(
        text,
        current.to_json(),
        "stale lint-baseline.json: rerun with --baseline lint-baseline.json --write-baseline"
    );
    let reparsed = Baseline::parse(&current.to_json()).expect("rendered baseline reparses");
    assert!(reparsed.regressions(&current).is_empty());
    assert!(current.regressions(&reparsed).is_empty());
}

#[test]
fn the_serve_crate_acquires_its_locks_in_one_global_order() {
    // The lock-order rule only *errors* on cycles; this self-check pins the
    // stronger property for the overload-control files, which juggle three
    // mutexes (`Admission.clients`, `Admission.state`, the progress
    // registry and response queues): the union of every acquisition edge
    // must form one consistent global order — topologically sortable, no
    // lock ever taken in both orders anywhere in the workspace.
    let ws = load_workspace(&repo_root()).expect("workspace loads");
    let edges = lock_order::edges(&ws);

    let serve_files = [
        "crates/serve/src/admission.rs",
        "crates/serve/src/progress.rs",
        "crates/serve/src/server.rs",
    ];
    for file in serve_files {
        let acquires = ws
            .index
            .fns
            .iter()
            .enumerate()
            .filter(|(_, item)| ws.files[item.file].rel_path == file)
            .map(|(f, _)| ws.graph.locks[f].len())
            .sum::<usize>();
        assert!(
            acquires > 0,
            "{file}: call graph sees no lock acquisitions — extractor regression?"
        );
    }

    // Kahn's algorithm over the full edge set: every lock is a node, every
    // hold-then-acquire pair a directed edge. A global order exists iff the
    // graph is acyclic.
    let mut succ: BTreeMap<&str, BTreeSet<&str>> = BTreeMap::new();
    let mut indegree: BTreeMap<&str, usize> = BTreeMap::new();
    for e in &edges {
        indegree.entry(e.from.as_str()).or_default();
        indegree.entry(e.to.as_str()).or_default();
        if succ
            .entry(e.from.as_str())
            .or_default()
            .insert(e.to.as_str())
        {
            *indegree.entry(e.to.as_str()).or_default() += 1;
        }
        assert!(
            !succ
                .get(e.to.as_str())
                .is_some_and(|s| s.contains(e.from.as_str())),
            "locks `{}` and `{}` are acquired in both orders (second order in `{}` at {}:{}:{})",
            e.from,
            e.to,
            e.holder,
            e.file,
            e.line,
            e.col
        );
    }
    let mut ready: Vec<&str> = indegree
        .iter()
        .filter(|(_, d)| **d == 0)
        .map(|(l, _)| *l)
        .collect();
    let mut sorted = 0usize;
    while let Some(lock) = ready.pop() {
        sorted += 1;
        for next in succ.get(lock).into_iter().flatten() {
            let d = indegree.get_mut(next).expect("node was registered");
            *d -= 1;
            if *d == 0 {
                ready.push(next);
            }
        }
    }
    assert_eq!(
        sorted,
        indegree.len(),
        "lock graph has a cycle; edges: {:#?}",
        edges
            .iter()
            .map(|e| format!("{} -> {} in {}", e.from, e.to, e.holder))
            .collect::<Vec<_>>()
    );
}

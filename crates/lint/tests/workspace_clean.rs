//! The linter must ship clean on its own workspace, and the JSON report it
//! emits must validate against `schemas/lint.schema.json` — the same
//! contract CI enforces with `validate_metrics`.

use std::path::{Path, PathBuf};

use acq_lint::report::REPORT_VERSION;
use acq_lint::{check_source, load_config, run_workspace, Config, FileContext, Report};
use acq_obs::{json, schema};

fn repo_root() -> PathBuf {
    // crates/lint -> crates -> workspace root.
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("workspace root exists")
        .to_path_buf()
}

fn lint_schema() -> json::JsonValue {
    let path = repo_root().join("schemas/lint.schema.json");
    let text = std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("{}: {e}", path.display()));
    json::parse(&text).expect("lint.schema.json parses")
}

fn run_repo() -> Report {
    let root = repo_root();
    let cfg = load_config(&root.join("lint.toml")).expect("lint.toml parses");
    run_workspace(&root, &cfg).expect("workspace walk succeeds")
}

#[test]
fn the_workspace_is_lint_clean() {
    let report = run_repo();
    assert!(
        report.is_clean(),
        "acq-lint must ship clean on its own repo:\n{}",
        report.render_text(false)
    );
    assert!(
        report.files_scanned > 100,
        "the walk saw only {} files — is the root detection broken?",
        report.files_scanned
    );
    // The escape hatches are in use (annotated sites, compat allows) and
    // every use is audited in the report.
    assert!(!report.allowed.is_empty());
}

#[test]
fn the_json_report_validates_against_the_committed_schema() {
    let report = run_repo();
    let value = json::parse(&report.to_json()).expect("report JSON parses");
    let errors = schema::validate(&lint_schema(), &value);
    assert!(errors.is_empty(), "schema violations: {errors:?}");
    assert_eq!(
        value.pointer("/version").and_then(json::JsonValue::as_u64),
        Some(REPORT_VERSION)
    );
    assert_eq!(
        value
            .pointer("/summary/clean")
            .and_then(json::JsonValue::as_bool),
        Some(true)
    );
}

#[test]
fn a_dirty_report_also_validates_against_the_schema() {
    // Exercise the `violations` array branch of the schema, which the clean
    // repo run never populates.
    let cfg = Config::default();
    let (violations, allowed) = check_source(
        "crates/core/src/fixture.rs",
        "fn f(x: Option<u32>) { x.unwrap(); }",
        FileContext::Lib,
        &cfg,
    );
    assert_eq!(violations.len(), 1);
    let report = Report {
        files_scanned: 1,
        violations,
        allowed,
    };
    let value = json::parse(&report.to_json()).expect("report JSON parses");
    let errors = schema::validate(&lint_schema(), &value);
    assert!(errors.is_empty(), "schema violations: {errors:?}");
    assert_eq!(
        value
            .pointer("/summary/clean")
            .and_then(json::JsonValue::as_bool),
        Some(false)
    );
}

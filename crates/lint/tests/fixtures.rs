//! Fixture tests: every rule family must detect its seeded violation at an
//! exact `file:line:col`, and each escape hatch must suppress precisely —
//! this is the proof that the analyzer sees what it claims to see.
//!
//! The fixtures under `tests/fixtures/` are never compiled; the workspace
//! walk classifies them as test-context files (inert for every rule), and
//! these tests re-check them with a forced [`FileContext::Lib`].

use std::path::Path;

use acq_lint::{
    check_source, check_workspace, Allowed, AllowedBy, Config, Diagnostic, FileContext, SourceFile,
    Workspace,
};

fn fixture(name: &str) -> String {
    let path = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name);
    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("{}: {e}", path.display()))
}

/// Builds a workspace from fixture files re-homed at virtual lib paths, the
/// workspace-rule analogue of forcing [`FileContext::Lib`] in `check_source`.
fn fixture_workspace(files: &[(&str, &str)]) -> Workspace {
    Workspace::new(
        files
            .iter()
            .map(|(fixture_name, rel_path)| {
                SourceFile::new(rel_path, &fixture(fixture_name), FileContext::Lib)
            })
            .collect(),
    )
}

/// `(line, col)` pairs of the violations attributed to `rule`.
fn positions(diags: &[Diagnostic], rule: &str) -> Vec<(u32, u32)> {
    diags
        .iter()
        .filter(|d| d.rule == rule)
        .map(|d| (d.line, d.col))
        .collect()
}

fn allowed_positions(allowed: &[Allowed], rule: &str) -> Vec<(u32, u32, AllowedBy)> {
    allowed
        .iter()
        .filter(|a| a.diagnostic.rule == rule)
        .map(|a| (a.diagnostic.line, a.diagnostic.col, a.by))
        .collect()
}

#[test]
fn panic_hygiene_fixture_exact_positions() {
    let (v, a) = check_source(
        "crates/core/src/fixture.rs",
        &fixture("panic_hygiene.rs"),
        FileContext::Lib,
        &Config::default(),
    );
    assert_eq!(
        positions(&v, "panic-hygiene"),
        [(5, 15), (6, 15), (8, 9), (10, 5)],
        "unwrap / expect / panic! / todo! at their seeded positions"
    );
    // The annotated unwrap is suppressed but stays audited, and the
    // parser-style `self.expect(…)` produces nothing at all.
    assert_eq!(
        allowed_positions(&a, "panic-hygiene"),
        [(14, 7, AllowedBy::Inline)]
    );
    assert_eq!(v.len(), 4, "no other rule fires on this fixture: {v:?}");
}

#[test]
fn determinism_fixture_exact_positions() {
    let cfg = Config::parse("[determinism]\nordered_paths = [\"virtual/\"]\n").unwrap();
    let (v, a) = check_source(
        "virtual/emit.rs",
        &fixture("determinism.rs"),
        FileContext::Lib,
        &cfg,
    );
    assert_eq!(
        positions(&v, "determinism"),
        [(4, 23), (8, 12), (8, 32), (9, 22), (10, 18)],
        "HashMap import, both uses, Instant::now and thread::sleep"
    );
    assert_eq!(v.len(), 5, "{v:?}");
    assert!(a.is_empty());
}

#[test]
fn determinism_fixture_is_silent_off_the_ordered_paths() {
    // Off ordered_paths the containers pass; clocks and sleeps still need
    // their own grants, which this config provides.
    let cfg = Config::parse(
        "[determinism]\nclock_allowed = [\"virtual/\"]\nsleep_allowed = [\"virtual/\"]\n",
    )
    .unwrap();
    let (v, _) = check_source(
        "virtual/emit.rs",
        &fixture("determinism.rs"),
        FileContext::Lib,
        &cfg,
    );
    assert!(v.is_empty(), "{v:?}");
}

#[test]
fn atomics_audit_fixture_exact_positions() {
    let (v, a) = check_source(
        "crates/core/src/fixture.rs",
        &fixture("atomics_audit.rs"),
        FileContext::Lib,
        &Config::default(),
    );
    assert_eq!(positions(&v, "atomics-audit"), [(6, 30)]);
    assert_eq!(v.len(), 1, "{v:?}");
    // A `relaxed-ok:` reason satisfies the rule outright (the justification
    // lives in the code); nothing is even routed to the allowed list.
    assert!(a.is_empty());
}

#[test]
fn obs_discipline_fixture_exact_positions() {
    let cfg = Config::parse("[obs-discipline]\nworker_paths = [\"virtual/\"]\n").unwrap();
    let (v, a) = check_source(
        "virtual/worker.rs",
        &fixture("obs_discipline.rs"),
        FileContext::Lib,
        &cfg,
    );
    assert_eq!(
        positions(&v, "obs-discipline"),
        [(5, 9), (7, 13), (12, 11)],
        "eager trace label, unannotated worker metric commit, zone mutation"
    );
    assert_eq!(v.len(), 3, "{v:?}");
    assert!(a.is_empty());
}

#[test]
fn obs_discipline_zone_mutation_is_silent_on_zone_stat_paths() {
    // Granting the fixture's path in zone_stat_paths silences the zone
    // check alone; the unrelated trace-label violation still fires (no
    // worker_paths here, so the metric commit is off-contract anyway).
    let cfg = Config::parse("[obs-discipline]\nzone_stat_paths = [\"virtual/\"]\n").unwrap();
    let (v, _) = check_source(
        "virtual/zone.rs",
        &fixture("obs_discipline.rs"),
        FileContext::Lib,
        &cfg,
    );
    assert_eq!(
        positions(&v, "obs-discipline"),
        [(5, 9)],
        "only the eager trace label remains: {v:?}"
    );
}

#[test]
fn progress_sink_fixture_exact_positions() {
    let (v, a) = check_source(
        "virtual/worker.rs",
        &fixture("progress_sink.rs"),
        FileContext::Lib,
        &Config::default(),
    );
    assert_eq!(
        positions(&v, "obs-discipline"),
        [(5, 10)],
        "the method-call try_push alone; plain push and the free call pass"
    );
    assert_eq!(v.len(), 1, "{v:?}");
    assert!(a.is_empty());
}

#[test]
fn progress_sink_fixture_is_silent_on_the_sanctioned_paths() {
    let cfg = Config::parse("[obs-discipline]\nprogress_sink_paths = [\"virtual/\"]\n").unwrap();
    let (v, _) = check_source(
        "virtual/driver.rs",
        &fixture("progress_sink.rs"),
        FileContext::Lib,
        &cfg,
    );
    assert!(v.is_empty(), "{v:?}");
}

#[test]
fn commit_reachability_fixture_exact_positions() {
    // A blocking lock and an output macro two call hops from the commit
    // root, across three files.
    let ws = fixture_workspace(&[
        ("commit_reach/commit.rs", "virtual/commit.rs"),
        ("commit_reach/relay.rs", "virtual/relay.rs"),
        ("commit_reach/sink.rs", "virtual/sink.rs"),
    ]);
    let cfg =
        Config::parse("[commit-reachability]\nroots = [\"virtual/commit.rs::emit\"]\n").unwrap();
    let (v, a) = check_workspace(&ws, &cfg);
    assert_eq!(
        positions(&v, "commit-reachability"),
        [(5, 27), (6, 5)],
        "the blocking lock and the println! in sink.rs: {v:?}"
    );
    assert!(v.iter().all(|d| d.file == "virtual/sink.rs"), "{v:?}");
    assert!(
        v[0].message
            .contains("via `commit::emit → relay::forward → sink::store`"),
        "the two-hop chain is printed: {}",
        v[0].message
    );
    assert_eq!(v.len(), 2, "no other rule fires on this fixture: {v:?}");
    // try_lock and the relaxed atomic pass outright; the commit-io-ok lock
    // is suppressed but stays audited.
    assert_eq!(
        allowed_positions(&a, "commit-reachability"),
        [(10, 26, AllowedBy::Inline)]
    );
}

#[test]
fn commit_reachability_flags_journal_write_on_the_append_root() {
    // The journal contract: `try_append` is a commit root, so a disk write
    // reachable from it — here one hop away in the writer module — must be
    // flagged. The wait-free pieces (try_lock slot, relaxed cursor) pass.
    let ws = fixture_workspace(&[
        ("commit_reach_journal/journal.rs", "virtual/journal.rs"),
        ("commit_reach_journal/writer.rs", "virtual/writer.rs"),
    ]);
    let cfg =
        Config::parse("[commit-reachability]\nroots = [\"virtual/journal.rs::try_append\"]\n")
            .unwrap();
    let (v, a) = check_workspace(&ws, &cfg);
    assert_eq!(
        positions(&v, "commit-reachability"),
        [(6, 12)],
        "the write_all in writer.rs, at its exact position: {v:?}"
    );
    assert_eq!(v[0].file, "virtual/writer.rs", "{v:?}");
    assert!(
        v[0].message
            .contains("via `journal::try_append → writer::persist`"),
        "the call chain from the append root is printed: {}",
        v[0].message
    );
    assert_eq!(v.len(), 1, "no other rule fires on this fixture: {v:?}");
    assert!(a.is_empty(), "{a:?}");
}

#[test]
fn commit_reachability_roots_are_function_granular() {
    // Rooting a *different* function in the same file leaves the blocking
    // sink unreachable — and the suppression audit then calls out the
    // now-dead `commit-io-ok` annotation instead.
    let ws = fixture_workspace(&[
        ("commit_reach/commit.rs", "virtual/commit.rs"),
        ("commit_reach/relay.rs", "virtual/relay.rs"),
        ("commit_reach/sink.rs", "virtual/sink.rs"),
    ]);
    let (v, _) = check_workspace(&ws, &Config::default());
    assert!(positions(&v, "commit-reachability").is_empty(), "{v:?}");
    assert_eq!(
        positions(&v, "suppression-audit"),
        [(10, 34)],
        "without roots the commit-io-ok annotation is dead: {v:?}"
    );
}

#[test]
fn lock_order_fixture_exact_positions() {
    let ws = fixture_workspace(&[("lock_cycle.rs", "virtual/gate.rs")]);
    let (v, a) = check_workspace(&ws, &Config::default());
    assert_eq!(
        positions(&v, "lock-order"),
        [(9, 24)],
        "one cycle, anchored at fwd()'s nested acquisition: {v:?}"
    );
    assert_eq!(v.len(), 1, "{v:?}");
    let msg = &v[0].message;
    assert!(
        msg.contains("`Gate.a` → `Gate.b`") || msg.contains("`Gate.b` → `Gate.a`"),
        "{msg}"
    );
    assert!(
        msg.contains("`Gate::fwd`") && msg.contains("`Gate::rev`"),
        "{msg}"
    );
    assert!(a.is_empty(), "{a:?}");
}

#[test]
fn dead_suppression_fixture_exact_positions() {
    let ws = fixture_workspace(&[("dead_suppression.rs", "virtual/helper.rs")]);
    let (v, a) = check_workspace(&ws, &Config::default());
    assert_eq!(
        positions(&v, "suppression-audit"),
        [(8, 19)],
        "the stale lint-allow, at its comment position: {v:?}"
    );
    assert_eq!(v.len(), 1, "{v:?}");
    assert!(
        v[0].message.contains("dead suppression"),
        "{}",
        v[0].message
    );
    // The live annotation still suppresses its unwrap, audited as usual.
    assert_eq!(
        allowed_positions(&a, "panic-hygiene"),
        [(4, 7, AllowedBy::Inline)]
    );
}

#[test]
fn error_hygiene_fixture_exact_positions() {
    let (v, _) = check_source(
        "crates/query/src/fixture.rs",
        &fixture("error_hygiene.rs"),
        FileContext::Lib,
        &Config::default(),
    );
    assert_eq!(positions(&v, "error-hygiene"), [(4, 10)]);
    assert!(v[0].message.contains("SeededError"), "{:?}", v[0].message);
    assert_eq!(v.len(), 1, "FineError must pass: {v:?}");
}

#[test]
fn forbid_unsafe_fixture_exact_positions() {
    let (v, _) = check_source(
        "fixtures/forbid_unsafe/src/lib.rs",
        &fixture("forbid_unsafe/src/lib.rs"),
        FileContext::Lib,
        &Config::default(),
    );
    assert_eq!(
        positions(&v, "forbid-unsafe"),
        [(1, 1), (5, 5)],
        "missing crate-root attribute and the unsafe block itself"
    );
    assert_eq!(v.len(), 2, "{v:?}");
}

#[test]
fn config_allowlist_suppresses_but_stays_audited() {
    let cfg = Config::parse("[allow]\npanic-hygiene = [\"virtual/\"]\n").unwrap();
    let (v, a) = check_source(
        "virtual/vendored.rs",
        &fixture("panic_hygiene.rs"),
        FileContext::Lib,
        &cfg,
    );
    assert!(v.is_empty(), "{v:?}");
    // All five findings (the four seeded ones plus the inline-annotated
    // unwrap) are recorded; the config allow takes precedence over inline.
    assert_eq!(a.len(), 5);
    assert!(a.iter().all(|x| x.by == AllowedBy::Config));
}

#[test]
fn annotations_without_a_reason_do_not_count() {
    for src in [
        "fn f(x: Option<u32>) { x.unwrap(); // lint-allow(panic-hygiene):\n}",
        "fn f(x: Option<u32>) { x.unwrap(); // lint-allow(panic-hygiene)\n}",
    ] {
        let (v, a) = check_source(
            "crates/core/src/x.rs",
            src,
            FileContext::Lib,
            &Config::default(),
        );
        assert_eq!(
            v.len(),
            1,
            "reason-less annotation must not suppress: {src}"
        );
        assert!(a.is_empty());
    }
}

#[test]
fn fixtures_are_inert_in_their_real_test_context() {
    // The workspace walk classifies tests/fixtures/*.rs as test files, where
    // none of the library-context rules apply — the seeded violations must
    // not leak into the repo's own lint run.
    for name in [
        "panic_hygiene.rs",
        "determinism.rs",
        "atomics_audit.rs",
        "progress_sink.rs",
    ] {
        let rel = format!("crates/lint/tests/fixtures/{name}");
        let (v, _) = check_source(&rel, &fixture(name), FileContext::Test, &Config::default());
        assert!(v.is_empty(), "{name}: {v:?}");
    }
}

//! The TQGen baseline (§8.2, from Mishra-Koudas-Zuzarte, SIGMOD 2008).
//!
//! TQGen generates queries with target cardinalities for DBMS testing by
//! discretising every predicate's range into a fixed number of levels,
//! executing **every combination** of levels, picking the best, and zooming
//! the per-dimension ranges around it for the next round. It achieves very
//! low aggregate error (Fig. 8b) but executes `rounds × levels^d` full
//! queries — exponential in the number of predicates, which is why Fig. 9a
//! shows it two to three orders of magnitude slower than ACQUIRE. It also
//! *"seeks only to attain the desired cardinality and disregards
//! proximity"* (§9), so its refinement scores are 2–3× ACQUIRE's (Fig. 8c).

use acq_engine::Executor;
use acq_query::{AcqQuery, Norm};

use crate::common::{domain_caps, BaselineError, BaselineOutcome};

/// TQGen tuning knobs; defaults follow the spirit of the parameters the
/// paper reports using from reference 11 (a coarse grid refined over a few rounds).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TqGenParams {
    /// Discretisation levels per predicate per round.
    pub levels_per_dim: u32,
    /// Zoom-in rounds.
    pub rounds: u32,
    /// Safety cap on total full-query executions (the exponential blow-up
    /// is the point of the comparison, but benches need an upper bound).
    pub max_queries: u64,
}

impl Default for TqGenParams {
    fn default() -> Self {
        Self {
            levels_per_dim: 5,
            rounds: 4,
            max_queries: 200_000,
        }
    }
}

/// Runs TQGen.
pub fn tqgen(
    exec: &mut Executor,
    query: &AcqQuery,
    norm: &Norm,
    params: &TqGenParams,
) -> Result<BaselineOutcome, BaselineError> {
    assert!(
        params.levels_per_dim >= 2,
        "TQGen needs at least two levels per dimension"
    );
    let mut query = query.clone();
    exec.populate_domains(&mut query)?;
    query.validate_with_norm(norm)?;
    let d = query.dims();

    let caps = domain_caps(&query, 1000.0);
    let rq = exec.resolve(&query)?;
    let rel = exec.base_relation(&rq, &caps)?;

    let target = query.constraint.target;
    let err_fn = query.error_fn;
    let levels = params.levels_per_dim as usize;

    // Current per-dimension search ranges.
    let mut lo = vec![0.0f64; d];
    let mut hi = caps.clone();
    let mut queries_executed = 0u64;
    let mut best: Option<(Vec<f64>, f64, f64)> = None;

    'rounds: for _ in 0..params.rounds {
        // Candidate levels per dimension (inclusive linspace).
        let grid: Vec<Vec<f64>> = (0..d)
            .map(|k| {
                (0..levels)
                    .map(|l| lo[k] + (hi[k] - lo[k]) * l as f64 / (levels - 1) as f64)
                    .collect()
            })
            .collect();
        // Execute every combination (the exponential enumeration).
        let mut idx = vec![0usize; d];
        loop {
            let bounds: Vec<f64> = idx.iter().zip(&grid).map(|(&i, g)| g[i]).collect();
            if queries_executed >= params.max_queries {
                break 'rounds;
            }
            let actual = exec
                .full_aggregate(&rq, &rel, &bounds)?
                .value()
                .unwrap_or(f64::NAN);
            queries_executed += 1;
            let e = err_fn.error(target, actual);
            if best.as_ref().is_none_or(|b| e < b.2) {
                best = Some((bounds, actual, e));
            }
            // Odometer with carry; terminates after the last combination.
            let mut k = d;
            let mut wrapped = false;
            loop {
                if k == 0 {
                    wrapped = true;
                    break;
                }
                k -= 1;
                if idx[k] + 1 < levels {
                    idx[k] += 1;
                    break;
                }
                idx[k] = 0; // carry into the next dimension
            }
            if wrapped {
                break;
            }
        }
        // Zoom each dimension's range around the best combination.
        let Some((ref b, _, err)) = best else { break };
        if err == 0.0 {
            break;
        }
        for k in 0..d {
            let width = (hi[k] - lo[k]) / (levels - 1) as f64;
            lo[k] = (b[k] - width).max(0.0);
            hi[k] = (b[k] + width).min(caps[k]);
        }
    }

    // lint-allow(panic-hygiene): the level loop always evaluates >= 1 candidate
    let (pscores, aggregate, error) = best.expect("TQGen executes at least one candidate");
    Ok(BaselineOutcome {
        sql: query.refined_sql(&pscores),
        qscore: norm.qscore(&pscores),
        pscores,
        aggregate,
        error,
        queries_executed,
        stats: exec.stats(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use acq_engine::{Catalog, DataType, Field, TableBuilder, Value};
    use acq_query::{AggConstraint, AggregateSpec, CmpOp, ColRef, Interval, Predicate, RefineSide};

    fn catalog() -> Catalog {
        let mut b = TableBuilder::new(
            "t",
            vec![
                Field::new("x", DataType::Float),
                Field::new("y", DataType::Float),
            ],
        )
        .unwrap();
        for i in 0..1000 {
            b.push_row(vec![
                Value::Float(f64::from(i) * 0.1),
                Value::Float(f64::from((i * 7) % 1000) * 0.1),
            ]);
        }
        let mut cat = Catalog::new();
        cat.register(b.finish().unwrap()).unwrap();
        cat
    }

    fn query(target: f64) -> AcqQuery {
        AcqQuery::builder()
            .table("t")
            .predicate(Predicate::select(
                ColRef::new("t", "x"),
                Interval::new(0.0, 10.0),
                RefineSide::Upper,
            ))
            .predicate(Predicate::select(
                ColRef::new("t", "y"),
                Interval::new(0.0, 10.0),
                RefineSide::Upper,
            ))
            .constraint(AggConstraint::new(
                AggregateSpec::count(),
                CmpOp::Eq,
                target,
            ))
            .build()
            .unwrap()
    }

    #[test]
    fn converges_to_low_error() {
        let mut exec = Executor::new(catalog());
        let out = tqgen(&mut exec, &query(300.0), &Norm::L1, &TqGenParams::default()).unwrap();
        assert!(out.error <= 0.05, "error {}", out.error);
    }

    #[test]
    fn query_count_is_exponential_in_dims() {
        let params = TqGenParams {
            levels_per_dim: 4,
            rounds: 2,
            max_queries: 1_000_000,
        };
        let mut exec = Executor::new(catalog());
        let out = tqgen(&mut exec, &query(300.0), &Norm::L1, &params).unwrap();
        // Unless it exits early on a perfect hit, 2 rounds x 4^2 candidates.
        assert!(
            out.queries_executed == 32 || out.error == 0.0,
            "{} queries",
            out.queries_executed
        );
    }

    #[test]
    fn respects_query_budget() {
        let params = TqGenParams {
            levels_per_dim: 6,
            rounds: 10,
            max_queries: 20,
        };
        let mut exec = Executor::new(catalog());
        let out = tqgen(&mut exec, &query(300.0), &Norm::L1, &params).unwrap();
        assert!(out.queries_executed <= 20);
    }
}

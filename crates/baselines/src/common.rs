//! Shared baseline plumbing.

use std::fmt;

use acq_engine::{EngineError, ExecStats};
use acq_query::{AcqError, AcqQuery};

/// Errors raised by baseline techniques.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum BaselineError {
    /// The technique cannot express this constraint (e.g. Top-k and
    /// non-COUNT aggregates — *"translating other aggregate constraints is
    /// difficult if not impossible"*, §8.2).
    Unsupported(String),
    /// The query failed validation.
    Query(AcqError),
    /// The evaluation layer failed.
    Engine(EngineError),
}

impl fmt::Display for BaselineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Unsupported(msg) => write!(f, "unsupported by this baseline: {msg}"),
            Self::Query(e) => write!(f, "invalid ACQ: {e}"),
            Self::Engine(e) => write!(f, "evaluation layer error: {e}"),
        }
    }
}

impl std::error::Error for BaselineError {}

impl From<AcqError> for BaselineError {
    fn from(e: AcqError) -> Self {
        Self::Query(e)
    }
}

impl From<EngineError> for BaselineError {
    fn from(e: EngineError) -> Self {
        Self::Engine(e)
    }
}

/// The result a baseline produces, aligned with
/// [`acquire_core::RefinedQueryResult`] so experiments can tabulate all
/// techniques uniformly.
#[derive(Debug, Clone)]
pub struct BaselineOutcome {
    /// Predicate refinement vector of the produced (or implied) refined
    /// query, percent per flexible predicate.
    pub pscores: Vec<f64>,
    /// Query refinement score under the experiment's norm.
    pub qscore: f64,
    /// The achieved aggregate value.
    pub aggregate: f64,
    /// Aggregate error against the constraint target.
    pub error: f64,
    /// Full queries the technique executed against the evaluation layer.
    pub queries_executed: u64,
    /// Evaluation-layer work counters.
    pub stats: ExecStats,
    /// The refined query rendered as SQL.
    pub sql: String,
}

/// Per-flexible-predicate PScore caps derived from predicate domains — the
/// same caps ACQUIRE's refined space uses, so all techniques search the same
/// bounded universe.
pub(crate) fn domain_caps(query: &AcqQuery, fallback: f64) -> Vec<f64> {
    query
        .flexible()
        .iter()
        .map(|&i| match query.predicates[i].max_useful_score() {
            Some(m) if m.is_finite() => m,
            _ => fallback,
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use acq_query::{AggConstraint, AggregateSpec, CmpOp, ColRef, Interval, Predicate, RefineSide};

    #[test]
    fn caps_use_domains_with_fallback() {
        let q = AcqQuery::builder()
            .table("t")
            .predicate(
                Predicate::select(
                    ColRef::new("t", "a"),
                    Interval::new(0.0, 10.0),
                    RefineSide::Upper,
                )
                .with_domain(Interval::new(0.0, 30.0)),
            )
            .predicate(Predicate::select(
                ColRef::new("t", "b"),
                Interval::new(0.0, 10.0),
                RefineSide::Upper,
            ))
            .constraint(AggConstraint::new(AggregateSpec::count(), CmpOp::Eq, 5.0))
            .build()
            .unwrap();
        assert_eq!(domain_caps(&q, 500.0), vec![200.0, 500.0]);
    }
}

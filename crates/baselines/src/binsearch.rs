//! The BinSearch baseline (§8.2, from Mishra-Koudas-Zuzarte, reference 11 of the paper).
//!
//! BinSearch refines one predicate at a time, in a fixed order: it binary
//! -searches the current predicate's bound (executing a full query per
//! probe) until the target aggregate is bracketed or the predicate is
//! exhausted, then moves on. It is fast — a handful of probes per dimension
//! — but *"heavily influenced by the order in which predicates are refined;
//! some orders produce accurate results whereas others produce large
//! errors"* (§9): once an early predicate is pushed to a bound that cannot
//! be corrected by later ones, the error is locked in. Fig. 8b/9b show the
//! resulting error variance (up to 45%).

use acq_engine::Executor;
use acq_query::{AcqQuery, Norm};

use crate::common::{domain_caps, BaselineError, BaselineOutcome};

/// BinSearch tuning knobs.
#[derive(Debug, Clone, PartialEq)]
pub struct BinSearchParams {
    /// The order in which flexible predicates are refined (indices into the
    /// flexible-dimension list). `None` means declaration order.
    pub order: Option<Vec<usize>>,
    /// Maximum bisection probes per predicate.
    pub probes_per_dim: u32,
    /// Stop as soon as the relative aggregate error falls below this.
    pub tolerance: f64,
}

impl Default for BinSearchParams {
    fn default() -> Self {
        Self {
            order: None,
            probes_per_dim: 16,
            tolerance: 0.01,
        }
    }
}

/// Runs BinSearch. Works for any aggregate whose value grows with
/// refinement (the paper only evaluates COUNT).
pub fn binsearch(
    exec: &mut Executor,
    query: &AcqQuery,
    norm: &Norm,
    params: &BinSearchParams,
) -> Result<BaselineOutcome, BaselineError> {
    let mut query = query.clone();
    exec.populate_domains(&mut query)?;
    query.validate_with_norm(norm)?;
    let d = query.dims();
    let order: Vec<usize> = match &params.order {
        Some(o) => {
            let mut o = o.clone();
            o.retain(|&i| i < d);
            for i in 0..d {
                if !o.contains(&i) {
                    o.push(i);
                }
            }
            o
        }
        None => (0..d).collect(),
    };

    let caps = domain_caps(&query, 1000.0);
    let rq = exec.resolve(&query)?;
    let rel = exec.base_relation(&rq, &caps)?;

    let target = query.constraint.target;
    let err_fn = query.error_fn;
    let mut bounds = vec![0.0f64; d];
    let mut queries_executed = 0u64;

    let eval = |exec: &mut Executor, bounds: &[f64]| -> Result<f64, BaselineError> {
        let v = exec
            .full_aggregate(&rq, &rel, bounds)?
            .value()
            .unwrap_or(f64::NAN);
        Ok(v)
    };

    let mut actual = eval(exec, &bounds)?;
    queries_executed += 1;
    let mut best = (bounds.clone(), actual, err_fn.error(target, actual));

    'outer: for &dim in &order {
        if best.2 <= params.tolerance {
            break;
        }
        // Does pushing this predicate to its cap reach the target?
        let mut hi_bounds = bounds.clone();
        hi_bounds[dim] = caps[dim];
        let at_cap = eval(exec, &hi_bounds)?;
        queries_executed += 1;
        let cap_err = err_fn.error(target, at_cap);
        if cap_err < best.2 {
            best = (hi_bounds.clone(), at_cap, cap_err);
        }
        if at_cap < target {
            // Even the full expansion undershoots: lock the predicate at its
            // cap and let later predicates make up the rest.
            bounds = hi_bounds;
            continue;
        }
        // The target is bracketed within [0, cap] on this dimension.
        let (mut lo, mut hi) = (bounds[dim], caps[dim]);
        for _ in 0..params.probes_per_dim {
            let mid = 0.5 * (lo + hi);
            bounds[dim] = mid;
            actual = eval(exec, &bounds)?;
            queries_executed += 1;
            let e = err_fn.error(target, actual);
            if e < best.2 {
                best = (bounds.clone(), actual, e);
            }
            if e <= params.tolerance {
                break 'outer;
            }
            if actual < target {
                lo = mid;
            } else {
                hi = mid;
            }
        }
        // BinSearch fixes the dimension at its best probe and moves on.
        bounds = best.0.clone();
    }

    let (pscores, aggregate, error) = best;
    Ok(BaselineOutcome {
        sql: query.refined_sql(&pscores),
        qscore: norm.qscore(&pscores),
        pscores,
        aggregate,
        error,
        queries_executed,
        stats: exec.stats(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use acq_engine::{Catalog, DataType, Field, TableBuilder, Value};
    use acq_query::{AggConstraint, AggregateSpec, CmpOp, ColRef, Interval, Predicate, RefineSide};

    /// x uniform on [0, 100); y cycles 0..100 so both dimensions can be
    /// bisected smoothly.
    fn catalog() -> Catalog {
        let mut b = TableBuilder::new(
            "t",
            vec![
                Field::new("x", DataType::Float),
                Field::new("y", DataType::Float),
            ],
        )
        .unwrap();
        for i in 0..1000 {
            b.push_row(vec![
                Value::Float(f64::from(i) * 0.1),
                Value::Float(f64::from(i % 100)),
            ]);
        }
        let mut cat = Catalog::new();
        cat.register(b.finish().unwrap()).unwrap();
        cat
    }

    fn query(target: f64) -> AcqQuery {
        AcqQuery::builder()
            .table("t")
            .predicate(Predicate::select(
                ColRef::new("t", "x"),
                Interval::new(0.0, 10.0),
                RefineSide::Upper,
            ))
            .predicate(Predicate::select(
                ColRef::new("t", "y"),
                Interval::new(0.0, 10.0),
                RefineSide::Upper,
            ))
            .constraint(AggConstraint::new(
                AggregateSpec::count(),
                CmpOp::Eq,
                target,
            ))
            .build()
            .unwrap()
    }

    #[test]
    fn reaches_reachable_targets() {
        let mut exec = Executor::new(catalog());
        let out = binsearch(
            &mut exec,
            &query(200.0),
            &Norm::L1,
            &BinSearchParams::default(),
        )
        .unwrap();
        assert!(out.error <= 0.02, "error {}", out.error);
        assert!(out.queries_executed > 1);
    }

    #[test]
    fn order_changes_the_result() {
        let mut e1 = Executor::new(catalog());
        let a = binsearch(
            &mut e1,
            &query(300.0),
            &Norm::L1,
            &BinSearchParams {
                order: Some(vec![0, 1]),
                ..Default::default()
            },
        )
        .unwrap();
        let mut e2 = Executor::new(catalog());
        let b = binsearch(
            &mut e2,
            &query(300.0),
            &Norm::L1,
            &BinSearchParams {
                order: Some(vec![1, 0]),
                ..Default::default()
            },
        )
        .unwrap();
        // Different orders refine different predicates (the paper's
        // order-sensitivity claim); the two refined queries differ.
        assert_ne!(a.pscores, b.pscores);
    }

    #[test]
    fn locks_capped_dimensions() {
        // Target larger than one dimension alone can deliver.
        let mut exec = Executor::new(catalog());
        let out = binsearch(
            &mut exec,
            &query(900.0),
            &Norm::L1,
            &BinSearchParams::default(),
        )
        .unwrap();
        assert!(out.error <= 0.05, "error {}", out.error);
        assert!(out.pscores[0] > 0.0 && out.pscores[1] > 0.0);
    }

    #[test]
    fn partial_order_is_completed() {
        let mut exec = Executor::new(catalog());
        let out = binsearch(
            &mut exec,
            &query(200.0),
            &Norm::L1,
            &BinSearchParams {
                order: Some(vec![1]),
                ..Default::default()
            },
        )
        .unwrap();
        assert!(out.error.is_finite());
    }
}

//! The Top-k ranking baseline (§8.2).
//!
//! The paper expresses a COUNT-constrained ACQ as a ranking query using
//! existing DBMS capabilities:
//!
//! ```sql
//! SELECT * FROM table1 ORDER BY
//!   (case when (x <= 10) then 0 else (x - 10)/(x.max - x.min) end) +
//!   (case when (y <= 20) then 0 else (y - 20)/(y.max - y.min) end)
//! LIMIT A_exp
//! ```
//!
//! i.e. rank every tuple by its total normalised predicate overshoot and
//! keep exactly `A_exp` of them. By construction the result has the right
//! cardinality (no aggregate error), but:
//!
//! * only COUNT constraints can be translated (§8.2);
//! * the whole table must be scored and sorted on every invocation, so the
//!   cost is independent of how little refinement was actually needed
//!   (Fig. 8a's flat Top-k curve);
//! * the selected tuples "will likely be skewed in certain predicate
//!   dimensions" (§9), so the *implied* refined query — the minimal query
//!   covering all selected tuples, which we derive to make refinement
//!   comparable — scores worse than ACQUIRE's (Fig. 8c).

use acq_engine::Executor;
use acq_query::{AcqQuery, AggFunc, Norm};

use crate::common::{domain_caps, BaselineError, BaselineOutcome};

/// Runs the Top-k baseline. Errors on non-COUNT constraints.
pub fn topk(
    exec: &mut Executor,
    query: &AcqQuery,
    norm: &Norm,
) -> Result<BaselineOutcome, BaselineError> {
    if query.constraint.spec.func != AggFunc::Count {
        return Err(BaselineError::Unsupported(format!(
            "Top-k ranking can only express COUNT constraints, not {}",
            query.constraint.spec
        )));
    }
    let mut query = query.clone();
    exec.populate_domains(&mut query)?;
    query.validate_with_norm(norm)?;
    let caps = domain_caps(&query, f64::INFINITY);
    let rq = exec.resolve(&query)?;
    let rel = exec.base_relation(&rq, &caps)?;
    let d = rq.dims();

    // Score every tuple (the ORDER BY expression).
    let bound = rq.bind(&rel)?;
    let mut scores = vec![0.0; d];
    let mut ranked: Vec<(f64, Vec<f64>)> = Vec::with_capacity(rel.len());
    for row in 0..rel.len() {
        if bound.score_into(&rel, row, &mut scores) {
            ranked.push((norm.qscore(&scores), scores.clone()));
        }
    }
    exec.stats_mut().tuples_scanned += rel.len() as u64;
    exec.stats_mut().full_queries += 1;

    let k = (query.constraint.target.round() as usize).min(ranked.len());
    // The LIMIT clause: keep the k best-ranked tuples (full sort, as the
    // DBMS ORDER BY would do).
    ranked.sort_by(|a, b| a.0.total_cmp(&b.0));
    let selected = &ranked[..k];

    // The implied refined query: per-dimension maximum refinement over the
    // selected tuples (the smallest refined query covering them all).
    let mut pscores = vec![0.0; d];
    for (_, s) in selected {
        for (p, v) in pscores.iter_mut().zip(s) {
            *p = f64::max(*p, *v);
        }
    }
    let qscore = norm.qscore(&pscores);
    let aggregate = k as f64;
    // "A Top-k query explicitly specifies the number of tuples to return and
    // hence has no aggregate error by definition" (§8.4.1) — unless fewer
    // admissible tuples exist than requested.
    let error = query.error_fn.error(query.constraint.target, aggregate);

    Ok(BaselineOutcome {
        sql: query.refined_sql(&pscores),
        pscores,
        qscore,
        aggregate,
        error,
        queries_executed: 1,
        stats: exec.stats(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use acq_engine::{Catalog, DataType, Field, TableBuilder, Value};
    use acq_query::{AggConstraint, AggregateSpec, CmpOp, ColRef, Interval, Predicate, RefineSide};

    fn catalog() -> Catalog {
        let mut b = TableBuilder::new(
            "t",
            vec![
                Field::new("x", DataType::Float),
                Field::new("y", DataType::Float),
            ],
        )
        .unwrap();
        // x = i, y skewed: most tuples need large y-refinement.
        for i in 0..100 {
            b.push_row(vec![
                Value::Float(f64::from(i)),
                Value::Float(if i % 10 == 0 { 0.0 } else { 90.0 }),
            ]);
        }
        let mut cat = Catalog::new();
        cat.register(b.finish().unwrap()).unwrap();
        cat
    }

    fn query(target: f64) -> AcqQuery {
        AcqQuery::builder()
            .table("t")
            .predicate(Predicate::select(
                ColRef::new("t", "x"),
                Interval::new(0.0, 10.0),
                RefineSide::Upper,
            ))
            .predicate(Predicate::select(
                ColRef::new("t", "y"),
                Interval::new(0.0, 10.0),
                RefineSide::Upper,
            ))
            .constraint(AggConstraint::new(
                AggregateSpec::count(),
                CmpOp::Eq,
                target,
            ))
            .build()
            .unwrap()
    }

    #[test]
    fn returns_exact_cardinality() {
        let mut exec = Executor::new(catalog());
        let out = topk(&mut exec, &query(30.0), &Norm::L1).unwrap();
        assert_eq!(out.aggregate, 30.0);
        assert_eq!(out.error, 0.0);
        assert_eq!(out.queries_executed, 1);
    }

    #[test]
    fn implied_query_covers_selection() {
        let mut exec = Executor::new(catalog());
        let out = topk(&mut exec, &query(30.0), &Norm::L1).unwrap();
        // The implied refined query admits at least the selected tuples, so
        // running it must return >= 30 rows.
        let mut q = query(30.0);
        exec.populate_domains(&mut q).unwrap();
        let rq = exec.resolve(&q).unwrap();
        let caps: Vec<f64> = out.pscores.clone();
        let rel = exec.base_relation(&rq, &caps).unwrap();
        let n = exec
            .full_aggregate(&rq, &rel, &out.pscores)
            .unwrap()
            .value()
            .unwrap();
        assert!(n >= 30.0, "implied query admits {n}");
    }

    #[test]
    fn rejects_non_count() {
        let mut exec = Executor::new(catalog());
        let mut q = query(30.0);
        q.constraint =
            AggConstraint::new(AggregateSpec::sum(ColRef::new("t", "y")), CmpOp::Ge, 100.0);
        assert!(matches!(
            topk(&mut exec, &q, &Norm::L1),
            Err(BaselineError::Unsupported(_))
        ));
    }

    #[test]
    fn clamps_k_to_available_tuples() {
        let mut exec = Executor::new(catalog());
        let out = topk(&mut exec, &query(5000.0), &Norm::L1).unwrap();
        assert_eq!(out.aggregate, 100.0);
        assert!(out.error > 0.9);
    }
}

//! # acq-baselines — the techniques the paper compares against (§8.2)
//!
//! The paper evaluates ACQUIRE against three extensions of existing
//! techniques, all reimplemented here from their published descriptions:
//!
//! * [`mod@topk`] — **Top-k** tuple ranking: `ORDER BY` the per-predicate
//!   overshoot of each tuple, `LIMIT A_exp`. It can only express COUNT
//!   constraints, never refines join predicates, and returns tuples rather
//!   than a refined query; we additionally derive the minimal covering
//!   refined query so its refinement score can be compared (Fig. 8c/9c).
//! * [`mod@binsearch`] — **BinSearch** (Mishra, Koudas & Zuzarte, SIGMOD 2008):
//!   binary search on one predicate bound at a time, in a fixed order. Fast,
//!   but extremely sensitive to the predicate order — *"even a single change
//!   to the order can change the error by a factor of 100"* (§8.4.1).
//! * [`mod@tqgen`] — **TQGen** (same paper): iterative grid search over all
//!   combinations of discretised predicate bounds, zooming into the best
//!   cell each round. Accurate but exponential in the number of predicates
//!   (Fig. 9a shows it 500× slower than ACQUIRE at d = 5).
//!
//! All baselines execute **full queries** against the same evaluation layer
//! ACQUIRE uses, so execution-time and work-counter comparisons are
//! apples-to-apples.

#![forbid(unsafe_code)]
#![deny(missing_docs)]
#![deny(rustdoc::broken_intra_doc_links)]

pub mod binsearch;
mod common;
pub mod topk;
pub mod tqgen;

pub use binsearch::{binsearch, BinSearchParams};
pub use common::{BaselineError, BaselineOutcome};
pub use topk::topk;
pub use tqgen::{tqgen, TqGenParams};

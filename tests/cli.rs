//! Integration tests for the `acq` command-line binary.

use std::process::Command;

fn acq() -> Command {
    Command::new(env!("CARGO_BIN_EXE_acq"))
}

#[test]
fn demo_expansion_run() {
    let out = acq()
        .args([
            "--demo",
            "users",
            "--demo-rows",
            "5000",
            "--stats",
            "SELECT * FROM users CONSTRAINT COUNT(*) = 2K WHERE age <= 30 AND income <= 60000",
        ])
        .output()
        .expect("binary runs");
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("constraint satisfied"), "{stdout}");
    assert!(stdout.contains("CONSTRAINT COUNT(*) = 2000"), "{stdout}");
    assert!(stdout.contains("work: cell_queries="), "{stdout}");
}

#[test]
fn demo_contraction_run() {
    let out = acq()
        .args([
            "--demo",
            "users",
            "--demo-rows",
            "5000",
            "SELECT * FROM users CONSTRAINT COUNT(*) <= 500 WHERE age <= 70 AND income <= 200000",
        ])
        .output()
        .expect("binary runs");
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("contraction"), "{stdout}");
    assert!(stdout.contains("constraint satisfied"), "{stdout}");
}

#[test]
fn overshooting_eq_constraint_falls_through_to_contraction() {
    // COUNT(*) = 100 when the original query already returns more: §7.2
    // says contract; the CLI must route there instead of dead-ending.
    let out = acq()
        .args([
            "--demo",
            "users",
            "--demo-rows",
            "500",
            "SELECT * FROM users CONSTRAINT COUNT(*) = 100 WHERE age <= 30",
        ])
        .output()
        .expect("binary runs");
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("already overshoots"), "{stdout}");
    assert!(stdout.contains("constraint satisfied"), "{stdout}");
}

#[test]
fn csv_loading_and_query() {
    let dir = std::env::temp_dir().join("acq_cli_test");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("items.csv");
    let mut csv = String::from("price,rating\n");
    for i in 0..500 {
        csv.push_str(&format!("{},{}\n", 5.0 + f64::from(i) * 0.5, i % 5));
    }
    std::fs::write(&path, csv).unwrap();

    let out = acq()
        .args([
            "--table",
            &format!("items={}", path.display()),
            "--top",
            "2",
            "SELECT * FROM items CONSTRAINT COUNT(*) = 300 WHERE price <= 50",
        ])
        .output()
        .expect("binary runs");
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("constraint satisfied"), "{stdout}");
    assert!(stdout.contains("items.price"), "{stdout}");
}

#[test]
fn bad_usage_exits_nonzero() {
    let out = acq().output().expect("binary runs");
    assert!(!out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("usage:"), "{stderr}");

    let out = acq()
        .args(["--demo", "users", "SELECT * FROM users WHERE age <= 30"])
        .output()
        .expect("binary runs");
    assert!(!out.status.success());
    assert!(
        String::from_utf8_lossy(&out.stderr).contains("CONSTRAINT"),
        "missing-constraint diagnostics"
    );
}

#[test]
fn stddev_diagnostic_through_cli() {
    let out = acq()
        .args([
            "--demo",
            "users",
            "--demo-rows",
            "1000",
            "SELECT * FROM users CONSTRAINT STDDEV(income) = 5 WHERE age <= 30",
        ])
        .output()
        .expect("binary runs");
    assert!(!out.status.success());
    assert!(
        String::from_utf8_lossy(&out.stderr).contains("optimal substructure"),
        "OSP diagnostics expected"
    );
}

//! Integration tests for join refinement (§2.4), contraction (§7.2),
//! categorical ontologies (§7.3) and user-defined aggregates (§2.6),
//! exercised through the full stack.

use std::any::Any;
use std::sync::Arc;

use acquire::core::{run_acquire, run_contraction, AcquireConfig, EvalLayerKind};
use acquire::datagen::{synthetic, users, GenConfig};
use acquire::engine::{
    Catalog, DataType, EngineResult, Executor, Field, TableBuilder, UdaState, Value,
};
use acquire::query::{
    AcqQuery, AggConstraint, AggregateSpec, CmpOp, ColRef, Interval, OntologyTree, Predicate,
    RefineSide,
};

/// §2.4: a refinable equi-join `left.j = right.j` is relaxed into the band
/// `|left.j - right.j| <= w` until the COUNT constraint is met, "the
/// algorithm applied unchanged for select as well as join queries".
#[test]
fn join_refinement_meets_count_target() {
    let catalog = synthetic::join_pair(&GenConfig::uniform(500), 500, 500).unwrap();
    // Exact matches on a continuous attribute are essentially absent, so the
    // join must widen.
    let query = AcqQuery::builder()
        .table("left")
        .table("right")
        .predicate(Predicate::equi_join(
            ColRef::new("left", "j"),
            ColRef::new("right", "j"),
        ))
        .constraint(AggConstraint::new(
            AggregateSpec::count(),
            CmpOp::Ge,
            2_000.0,
        ))
        .build()
        .unwrap();

    let mut exec = Executor::new(catalog.clone());
    let out = run_acquire(
        &mut exec,
        &query,
        &AcquireConfig::default(),
        EvalLayerKind::GridIndex,
    )
    .unwrap();
    assert!(out.satisfied, "band join should reach 2000 pairs");
    let best = out.best().unwrap();
    assert!(best.aggregate >= 2_000.0 * 0.95);
    assert!(
        best.pscores[0] > 0.0,
        "the join width must have been refined"
    );
    assert!(best.sql.contains("|left.j - right.j| <="), "{}", best.sql);

    // Independent verification with a nested-loop count.
    let w = best.pscores[0]; // denominator 100 => score == absolute width
    let lt = catalog.table("left").unwrap();
    let rt = catalog.table("right").unwrap();
    let mut expected = 0u64;
    for i in 0..lt.num_rows() {
        let a = lt.column_by_name("j").unwrap().get_f64(i).unwrap();
        for j in 0..rt.num_rows() {
            let b = rt.column_by_name("j").unwrap().get_f64(j).unwrap();
            if (a - b).abs() <= w {
                expected += 1;
            }
        }
    }
    assert_eq!(expected as f64, best.aggregate);
}

/// §7.2 end-to-end: an overshooting COUNT <= budget query is contracted,
/// and the contraction verifies independently.
#[test]
fn contraction_meets_budget_and_verifies() {
    let mut catalog = Catalog::new();
    catalog
        .register(users::users(&GenConfig::uniform(20_000)).unwrap())
        .unwrap();
    let table = catalog.table("users").unwrap();
    let income = table.numeric_domain("income").unwrap();
    let query = AcqQuery::builder()
        .table("users")
        .predicate(
            Predicate::select(
                ColRef::new("users", "income"),
                Interval::new(income.lo(), 200_000.0),
                RefineSide::Upper,
            )
            .with_domain(income),
        )
        .predicate(
            Predicate::select(
                ColRef::new("users", "age"),
                Interval::new(13.0, 70.0),
                RefineSide::Upper,
            )
            .with_domain(table.numeric_domain("age").unwrap()),
        )
        .constraint(AggConstraint::new(
            AggregateSpec::count(),
            CmpOp::Le,
            2_000.0,
        ))
        .build()
        .unwrap();

    let mut exec = Executor::new(catalog.clone());
    let out = run_contraction(
        &mut exec,
        &query,
        &AcquireConfig::default(),
        EvalLayerKind::GridIndex,
    )
    .unwrap();
    assert!(out.satisfied);
    let best = out.best().unwrap();
    assert!(
        best.aggregate <= 2_000.0 * 1.05,
        "aggregate {}",
        best.aggregate
    );
    // Minimal change: the best contraction keeps a substantial audience.
    assert!(best.aggregate >= 1_000.0, "aggregate {}", best.aggregate);
    // And contraction pscores are measured w.r.t. Q (0 = unchanged).
    assert!(best.pscores.iter().all(|&c| c >= 0.0));
    assert!(best.pscores.iter().any(|&c| c > 0.0));
}

/// §7.3 end-to-end through SQL with a registered ontology.
#[test]
fn categorical_refinement_through_sql_binder() {
    let mut b = TableBuilder::new(
        "restaurants",
        vec![
            Field::new("cuisine", DataType::Str),
            Field::new("price", DataType::Float),
        ],
    )
    .unwrap();
    let cuisines = ["Gyro", "Falafel", "Shawarma", "Sushi", "PadThai"];
    for i in 0..300 {
        b.push_row(vec![
            Value::from(cuisines[i % cuisines.len()]),
            Value::Float((i % 30) as f64),
        ]);
    }
    let mut catalog = Catalog::new();
    catalog.register(b.finish().unwrap()).unwrap();

    let ast = acquire::sql::parse(
        "SELECT * FROM restaurants CONSTRAINT COUNT(*) >= 150 \
         WHERE cuisine IN ('Gyro') AND price <= 100",
    )
    .unwrap();
    let query = acquire::sql::Binder::new(&catalog)
        .with_ontology("cuisine", Arc::new(OntologyTree::sample_cuisine()))
        .bind(&ast)
        .unwrap();

    let mut exec = Executor::new(catalog);
    let out = run_acquire(
        &mut exec,
        &query,
        &AcquireConfig::default(),
        EvalLayerKind::CachedScore,
    )
    .unwrap();
    assert!(out.satisfied);
    let best = out.best().unwrap();
    // Only 60 Gyro places exist; reaching 150 requires rolling up at least
    // to Mediterranean (which adds Falafel and Shawarma: 180 places).
    assert!(best.aggregate >= 150.0 * 0.95);
    assert!(best.sql.contains("rollup"), "{}", best.sql);
}

/// A user-defined aggregate (sum of squares) flows through registration,
/// OSP-based incremental computation, and the driver.
#[derive(Debug, Clone, Default)]
struct SumSq(f64);

impl UdaState for SumSq {
    fn update(&mut self, v: f64) {
        self.0 += v * v;
    }
    fn merge(&mut self, other: &dyn UdaState) -> EngineResult<()> {
        let o = other
            .as_any()
            .downcast_ref::<SumSq>()
            .expect("same UDA type");
        self.0 += o.0;
        Ok(())
    }
    fn value(&self) -> Option<f64> {
        Some(self.0)
    }
    fn clone_box(&self) -> Box<dyn UdaState> {
        Box::new(self.clone())
    }
    fn as_any(&self) -> &dyn Any {
        self
    }
}

#[test]
fn user_defined_aggregate_end_to_end() {
    let catalog = synthetic::numeric_catalog(&GenConfig::uniform(2_000), 2).unwrap();
    let query = AcqQuery::builder()
        .table("t")
        .predicate(
            Predicate::select(
                ColRef::new("t", "x0"),
                Interval::new(0.0, 200.0),
                RefineSide::Upper,
            )
            .with_domain(Interval::new(0.0, 1000.0)),
        )
        .constraint(AggConstraint::new(
            AggregateSpec::uda("SUMSQ", ColRef::new("t", "x1")),
            CmpOp::Ge,
            2.0e8,
        ))
        .build()
        .unwrap();

    let mut exec = Executor::new(catalog);
    exec.uda_registry_mut()
        .register("SUMSQ", || Box::<SumSq>::default());
    let out = run_acquire(
        &mut exec,
        &query,
        &AcquireConfig::default(),
        EvalLayerKind::GridIndex,
    )
    .unwrap();
    let best = out.best().or(out.closest.as_ref()).unwrap();
    assert!(best.aggregate > 0.0);
    if out.satisfied {
        assert!(best.aggregate >= 2.0e8 * 0.95);
    }
}

/// STDDEV is rejected everywhere with the §2.6 explanation.
#[test]
fn stddev_rejected_through_the_stack() {
    let catalog = synthetic::numeric_catalog(&GenConfig::uniform(100), 1).unwrap();
    let err = acquire::sql::compile(
        "SELECT * FROM t CONSTRAINT STDDEV(x0) = 5 WHERE x0 < 100",
        &catalog,
    )
    .unwrap_err();
    assert!(err.to_string().contains("optimal substructure"), "{err}");
}

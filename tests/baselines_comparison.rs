//! Cross-crate comparison tests: the qualitative claims of §8 hold on
//! seeded workloads.

use acquire::baselines::{binsearch, topk, tqgen, BinSearchParams, TqGenParams};
use acquire::core::{run_acquire, AcquireConfig, EvalLayerKind};
use acquire::datagen::{tpch, GenConfig};
use acquire::engine::Executor;
use acquire::query::{
    AcqQuery, AggConstraint, AggregateSpec, CmpOp, ColRef, Interval, Norm, Predicate, RefineSide,
};

fn lineitem_query(rows: usize, ratio: f64, zipf: bool) -> (acquire::engine::Catalog, AcqQuery) {
    let cfg = if zipf {
        GenConfig::skewed(rows)
    } else {
        GenConfig::uniform(rows)
    };
    let catalog = tpch::generate_lineitem(&cfg).unwrap();
    let table = catalog.table("lineitem").unwrap();
    let mut b = AcqQuery::builder().table("lineitem");
    for col in ["l_quantity", "l_extendedprice", "l_discount"] {
        let domain = table.numeric_domain(col).unwrap();
        let bound = domain.lo() + 0.45 * domain.width();
        b = b.predicate(
            Predicate::select(
                ColRef::new("lineitem", col),
                Interval::new(domain.lo(), bound),
                RefineSide::Upper,
            )
            .with_domain(domain),
        );
    }
    let mut query = b
        .constraint(AggConstraint::new(AggregateSpec::count(), CmpOp::Eq, 1.0))
        .build()
        .unwrap();
    // Set the target from the ratio.
    let mut exec = Executor::new(catalog.clone());
    let rq = exec.resolve(&query).unwrap();
    let zeros = vec![0.0; 3];
    let rel = exec.base_relation(&rq, &zeros).unwrap();
    let actual = exec
        .full_aggregate(&rq, &rel, &zeros)
        .unwrap()
        .value()
        .unwrap();
    assert!(actual > 0.0);
    // Keep the target reachable: no refinement can admit more tuples than
    // the table holds (relevant for skewed data, where the original query
    // already covers most of the mass).
    query.constraint.target = (actual / ratio).min(rows as f64 * 0.9);
    (catalog, query)
}

/// §8.5 conclusion 4: ACQUIRE's refinement scores beat (or tie) every
/// baseline's, typically by 2x or more.
#[test]
fn acquire_refines_less_than_baselines() {
    let (catalog, query) = lineitem_query(10_000, 0.3, false);
    let cfg = AcquireConfig::default();

    let mut exec = Executor::new(catalog.clone());
    let acq = run_acquire(&mut exec, &query, &cfg, EvalLayerKind::GridIndex).unwrap();
    assert!(acq.satisfied);
    let acq_q = acq.best().unwrap().qscore;

    let mut exec = Executor::new(catalog.clone());
    let tk = topk(&mut exec, &query, &Norm::L1).unwrap();
    let mut exec = Executor::new(catalog.clone());
    let bs = binsearch(&mut exec, &query, &Norm::L1, &BinSearchParams::default()).unwrap();
    let mut exec = Executor::new(catalog.clone());
    let tq = tqgen(
        &mut exec,
        &query,
        &Norm::L1,
        &TqGenParams {
            levels_per_dim: 4,
            rounds: 2,
            max_queries: 50_000,
        },
    )
    .unwrap();

    // The grid granularity gives ACQUIRE at most one layer of slack; allow
    // 10% before declaring a violation.
    for (name, q) in [
        ("topk", tk.qscore),
        ("binsearch", bs.qscore),
        ("tqgen", tq.qscore),
    ] {
        assert!(
            acq_q <= q * 1.10 + 1e-9,
            "{name} refined less than ACQUIRE: {q} vs {acq_q}"
        );
    }
}

/// §8.5 conclusion 2: ACQUIRE's error stays below δ while meeting the
/// constraint, across ratios and skew settings.
#[test]
fn acquire_error_always_within_delta() {
    for zipf in [false, true] {
        for ratio in [0.2, 0.5, 0.8] {
            let (catalog, query) = lineitem_query(8_000, ratio, zipf);
            let cfg = AcquireConfig::default();
            let mut exec = Executor::new(catalog);
            let out = run_acquire(&mut exec, &query, &cfg, EvalLayerKind::GridIndex).unwrap();
            assert!(out.satisfied, "ratio {ratio} zipf {zipf}");
            assert!(
                out.best().unwrap().error <= cfg.delta + 1e-12,
                "ratio {ratio} zipf {zipf}: err {}",
                out.best().unwrap().error
            );
        }
    }
}

/// §8.4.1: ACQUIRE issues dramatically less evaluation-layer work than
/// TQGen (the "2 orders of magnitude" headline, measured in tuples scanned).
#[test]
fn acquire_work_is_far_below_tqgen() {
    let (catalog, query) = lineitem_query(10_000, 0.3, false);
    let cfg = AcquireConfig::default();

    let mut exec = Executor::new(catalog.clone());
    let acq = run_acquire(&mut exec, &query, &cfg, EvalLayerKind::GridIndex).unwrap();
    let acq_scanned = acq.stats.tuples_scanned;

    let mut exec = Executor::new(catalog);
    let tq = tqgen(&mut exec, &query, &Norm::L1, &TqGenParams::default()).unwrap();
    let tq_scanned = tq.stats.tuples_scanned;

    assert!(
        tq_scanned > acq_scanned * 10,
        "TQGen scanned {tq_scanned}, ACQUIRE {acq_scanned}"
    );
}

/// Top-k hits the cardinality exactly but over-refines: the implied covering
/// query is skewed along some dimension (the §9 argument).
#[test]
fn topk_over_refines() {
    let (catalog, query) = lineitem_query(10_000, 0.3, false);
    let cfg = AcquireConfig::default();
    let mut exec = Executor::new(catalog.clone());
    let acq = run_acquire(&mut exec, &query, &cfg, EvalLayerKind::GridIndex).unwrap();
    let mut exec = Executor::new(catalog);
    let tk = topk(&mut exec, &query, &Norm::L1).unwrap();
    // Top-k returns exactly round(target) tuples; with fractional clamped
    // targets that leaves at most a rounding error.
    assert!(
        tk.error < 1e-3,
        "top-k error is rounding only: {}",
        tk.error
    );
    assert!(
        tk.qscore >= acq.best().unwrap().qscore,
        "top-k {} vs acquire {}",
        tk.qscore,
        acq.best().unwrap().qscore
    );
}

/// BinSearch results depend on the predicate order (§8.4.1); ACQUIRE's do
/// not (it has no order to choose).
#[test]
fn binsearch_is_order_sensitive() {
    let (catalog, query) = lineitem_query(10_000, 0.25, false);
    let mut refinements = Vec::new();
    for order in [vec![0usize, 1, 2], vec![2, 1, 0], vec![1, 2, 0]] {
        let mut exec = Executor::new(catalog.clone());
        let out = binsearch(
            &mut exec,
            &query,
            &Norm::L1,
            &BinSearchParams {
                order: Some(order),
                ..Default::default()
            },
        )
        .unwrap();
        refinements.push(out.pscores);
    }
    assert!(
        refinements.windows(2).any(|w| w[0] != w[1]),
        "different orders should produce different refinements: {refinements:?}"
    );
}

//! Integration tests for the `acq journal` subcommand: replaying a durable
//! query journal offline, torn final line included, exactly as an operator
//! would after pulling the file off a crashed box.

use std::io::Write as _;
use std::process::Command;

fn acq() -> Command {
    Command::new(env!("CARGO_BIN_EXE_acq"))
}

/// Writes a three-segment-free journal with two query records, one alert
/// record, one malformed line and a torn (newline-less) tail.
fn write_fixture(tag: &str) -> std::path::PathBuf {
    let path = std::env::temp_dir().join(format!(
        "acq-journal-cli-{tag}-{}.journal",
        std::process::id()
    ));
    let mut f = std::fs::File::create(&path).unwrap();
    f.write_all(
        concat!(
            "{\"v\":1,\"kind\":\"query\",\"at_ms\":10,\"id\":1,\"status\":200,\"termination\":\"satisfied\",\"outcome_key\":\"00000000deadbeef\"}\n",
            "{\"v\":1,\"kind\":\"query\",\"at_ms\":20,\"id\":2,\"status\":503,\"error\":\"shed: at capacity\"}\n",
            "{\"v\":1,\"kind\":\"alert\",\"at_ms\":30,\"rule\":\"shed-rate-high\",\"transition\":\"firing\",\"value\":2.5,\"threshold\":0.2}\n",
            "not json at all\n",
            "{\"v\":1,\"kind\":\"query\",\"at_ms\":40,\"id\":3"
        )
        .as_bytes(),
    )
    .unwrap();
    path
}

#[test]
fn replay_prints_records_and_reports_the_torn_tail_on_stderr() {
    let path = write_fixture("replay");
    let out = acq()
        .args(["journal", "replay", path.to_str().unwrap()])
        .output()
        .expect("binary runs");
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    let stderr = String::from_utf8_lossy(&out.stderr);
    // Every intact line replays verbatim, in order — even the malformed one
    // (replay is cat-with-recovery, not a validator).
    assert_eq!(stdout.lines().count(), 4, "{stdout}");
    assert!(
        stdout.lines().next().unwrap().contains("\"id\":1"),
        "{stdout}"
    );
    assert!(stdout.contains("not json at all"), "{stdout}");
    // The torn tail is never printed as data; it is reported honestly.
    assert!(!stdout.contains("\"id\":3"), "{stdout}");
    assert!(stderr.contains("1 torn"), "{stderr}");
    let _ = std::fs::remove_file(&path);
}

#[test]
fn summarize_counts_kinds_terminations_and_damage() {
    let path = write_fixture("summarize");
    let out = acq()
        .args(["journal", "summarize", path.to_str().unwrap()])
        .output()
        .expect("binary runs");
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    for needle in [
        "2 query",
        "1 alert",
        "malformed: 1",
        "torn: 1",
        "termination satisfied: 1",
        "alert shed-rate-high firing: 1",
    ] {
        assert!(stdout.contains(needle), "missing `{needle}` in:\n{stdout}");
    }
    let _ = std::fs::remove_file(&path);
}

#[test]
fn grep_filters_records_by_fixed_string() {
    let path = write_fixture("grep");
    let out = acq()
        .args(["journal", "grep", "shed", path.to_str().unwrap()])
        .output()
        .expect("binary runs");
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert_eq!(stdout.lines().count(), 2, "{stdout}");
    assert!(stdout.contains("shed: at capacity"), "{stdout}");
    assert!(stdout.contains("shed-rate-high"), "{stdout}");
    let _ = std::fs::remove_file(&path);
}

#[test]
fn missing_journal_is_a_clean_error_not_a_panic() {
    let out = acq()
        .args(["journal", "summarize", "/nonexistent-acq/q.journal"])
        .output()
        .expect("binary runs");
    assert!(!out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("no such journal"), "{stderr}");
}

#[test]
fn journal_usage_is_printed_for_bad_invocations() {
    let out = acq().args(["journal"]).output().expect("binary runs");
    assert!(!out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("summarize"), "{stderr}");
    assert!(stderr.contains("replay"), "{stderr}");
}

//! The §3 "estimation and/or sampling" evaluation-layer strategies,
//! exercised end-to-end: search over a sample (or a histogram estimate),
//! then verify the recommended refinement against the full, exact data.

use acquire::core::{
    acquire, run_acquire, AcquireConfig, EvalLayerKind, EvaluationLayer, HistogramEstimator,
    RefinedSpace,
};
use acquire::datagen::{tpch, GenConfig};
use acquire::engine::{sample_catalog_tables, scale_target_for_sample, Catalog, Executor};
use acquire::query::{
    AcqQuery, AggConstraint, AggregateSpec, CmpOp, ColRef, Interval, Predicate, RefineSide,
};

fn lineitem_workload(rows: usize, target: f64) -> (Catalog, AcqQuery) {
    let catalog = tpch::generate_lineitem(&GenConfig::uniform(rows)).unwrap();
    let table = catalog.table("lineitem").unwrap();
    let mut b = AcqQuery::builder().table("lineitem");
    for col in ["l_quantity", "l_extendedprice"] {
        let domain = table.numeric_domain(col).unwrap();
        let bound = domain.lo() + 0.4 * domain.width();
        b = b.predicate(
            Predicate::select(
                ColRef::new("lineitem", col),
                Interval::new(domain.lo(), bound),
                RefineSide::Upper,
            )
            .with_domain(domain),
        );
    }
    let query = b
        .constraint(AggConstraint::new(
            AggregateSpec::count(),
            CmpOp::Eq,
            target,
        ))
        .build()
        .unwrap();
    (catalog, query)
}

fn exact_count(catalog: &Catalog, query: &AcqQuery, pscores: &[f64]) -> f64 {
    let mut exec = Executor::new(catalog.clone());
    let mut q = query.clone();
    exec.populate_domains(&mut q).unwrap();
    let rq = exec.resolve(&q).unwrap();
    let rel = exec.base_relation(&rq, pscores).unwrap();
    exec.full_aggregate(&rq, &rel, pscores)
        .unwrap()
        .value()
        .unwrap()
}

/// Fig. 10a's "1K dataset to mimic a sample based approach", done properly:
/// search over a 10% Bernoulli sample with a scaled target; the refinement
/// found there lands within a few sampling-error percent on the full data.
#[test]
fn sampled_search_approximates_full_search() {
    let (catalog, query) = lineitem_workload(40_000, 20_000.0);

    let (sampled, rate) = sample_catalog_tables(&catalog, &["lineitem"], 0.1, 77).unwrap();
    let sampled_query = scale_target_for_sample(&query, rate);
    assert!(sampled_query.constraint.target < query.constraint.target);

    let mut exec = Executor::new(sampled);
    let out = run_acquire(
        &mut exec,
        &sampled_query,
        &AcquireConfig::default(),
        EvalLayerKind::GridIndex,
    )
    .unwrap();
    assert!(
        out.satisfied,
        "sampled search should satisfy the scaled target"
    );
    let best = out.best().unwrap();

    // Apply the sample-derived refinement to the FULL data.
    let full_count = exact_count(&catalog, &query, &best.pscores);
    let rel_err = (full_count - 20_000.0).abs() / 20_000.0;
    assert!(
        rel_err < 0.15,
        "sample-derived refinement reaches {full_count} on full data (err {rel_err:.3})"
    );
}

/// The histogram estimator drives a search without touching tuples per
/// query; its recommendation verifies on exact data within the compounded
/// estimation tolerance.
#[test]
fn estimator_search_verifies_on_exact_data() {
    let (catalog, query) = lineitem_workload(30_000, 15_000.0);
    let cfg = AcquireConfig::default();
    let mut q = query.clone();
    Executor::new(catalog.clone())
        .populate_domains(&mut q)
        .unwrap();
    let space = RefinedSpace::new(&q, &cfg).unwrap();
    let caps = space.caps();

    let mut exec = Executor::new(catalog.clone());
    let mut est = HistogramEstimator::new(&mut exec, &q, &caps, space.step()).unwrap();
    let n = est.universe_size();
    let out = acquire(&mut est, &q, &cfg).unwrap();
    assert!(out.satisfied);
    let best = out.best().unwrap();

    let full_count = exact_count(&catalog, &q, &best.pscores);
    let rel_err = (full_count - 15_000.0).abs() / 15_000.0;
    assert!(
        rel_err < 0.25,
        "estimator-derived refinement reaches {full_count} (err {rel_err:.3})"
    );
    // And the estimator never re-scanned tuples per query: total scans are
    // exactly one build pass over the base relation.
    assert!(
        est.stats().tuples_scanned <= 2 * n as u64 + 30_000,
        "estimator scans: {}",
        est.stats().tuples_scanned
    );
}

/// Sampling keeps dimension tables intact so FK joins still work.
#[test]
fn sampling_preserves_join_dimensions() {
    let catalog = tpch::generate_q2(&GenConfig::uniform(10_000)).unwrap();
    let (sampled, _) = sample_catalog_tables(&catalog, &["partsupp"], 0.2, 5).unwrap();
    assert_eq!(
        sampled.table("part").unwrap().num_rows(),
        catalog.table("part").unwrap().num_rows()
    );
    assert!(sampled.table("partsupp").unwrap().num_rows() < 3_000);

    // A join query over the sampled catalog still executes.
    let q = AcqQuery::builder()
        .table("supplier")
        .table("part")
        .table("partsupp")
        .join(
            ColRef::new("supplier", "s_suppkey"),
            ColRef::new("partsupp", "ps_suppkey"),
        )
        .join(
            ColRef::new("part", "p_partkey"),
            ColRef::new("partsupp", "ps_partkey"),
        )
        .predicate(Predicate::select(
            ColRef::new("part", "p_retailprice"),
            Interval::new(900.0, 1400.0),
            RefineSide::Upper,
        ))
        .constraint(AggConstraint::new(AggregateSpec::count(), CmpOp::Ge, 100.0))
        .build()
        .unwrap();
    let mut exec = Executor::new(sampled);
    let out = run_acquire(
        &mut exec,
        &q,
        &AcquireConfig::default(),
        EvalLayerKind::CachedScore,
    )
    .unwrap();
    assert!(out.original_aggregate > 0.0);
}

//! Property tests of the paper's core invariants, across crates:
//!
//! * the incremental aggregate of any grid query equals naive full
//!   re-execution of the corresponding refined query (§5.1);
//! * Expand emits grid queries in non-decreasing QScore layers (Theorem 2)
//!   and containment order (Theorem 3);
//! * the recommended query of a full ACQUIRE run verifies independently.

use proptest::prelude::*;

use acquire::core::expand::{BfsExpander, Expander, LinfExpander};
use acquire::core::explore::Explorer;
use acquire::core::{
    run_acquire, AcquireConfig, CachedScoreEvaluator, EvalLayerKind, EvaluationLayer, RefinedSpace,
};
use acquire::engine::{Catalog, DataType, Executor, Field, TableBuilder, Value};
use acquire::query::{
    dominates, AcqQuery, AggConstraint, AggregateSpec, CmpOp, ColRef, Interval, Norm, Predicate,
    RefineSide,
};

/// Builds a random table `t` with `dims` float columns of values in
/// [0, 100] plus a payload column `v`.
fn build_catalog(dims: usize, cells: &[Vec<f64>], payload: &[f64]) -> Catalog {
    let mut fields: Vec<Field> = (0..dims)
        .map(|i| Field::new(format!("x{i}"), DataType::Float))
        .collect();
    fields.push(Field::new("v", DataType::Float));
    let mut b = TableBuilder::new("t", fields).unwrap();
    for (row, p) in cells.iter().zip(payload) {
        let mut vals: Vec<Value> = p_row(row);
        vals.push(Value::Float(*p));
        b.push_row(vals);
    }
    let mut cat = Catalog::new();
    cat.register(b.finish().unwrap()).unwrap();
    cat
}

fn p_row(row: &[f64]) -> Vec<Value> {
    row.iter().map(|&v| Value::Float(v)).collect()
}

fn query_for(dims: usize, bounds: &[f64], agg: AggregateSpec, target: f64) -> AcqQuery {
    let mut b = AcqQuery::builder().table("t");
    for (i, &bound) in bounds.iter().enumerate().take(dims) {
        b = b.predicate(
            Predicate::select(
                ColRef::new("t", format!("x{i}")),
                Interval::new(0.0, bound.max(1.0)),
                RefineSide::Upper,
            )
            .with_domain(Interval::new(0.0, 100.0)),
        );
    }
    let op = if agg.func == acquire::query::AggFunc::Count {
        CmpOp::Eq
    } else {
        CmpOp::Ge
    };
    b.constraint(AggConstraint::new(agg, op, target))
        .build()
        .unwrap()
}

fn rows_strategy(dims: usize) -> impl Strategy<Value = (Vec<Vec<f64>>, Vec<f64>)> {
    let row = prop::collection::vec(0.0f64..100.0, dims);
    (
        prop::collection::vec(row, 30..200),
        prop::collection::vec(-50.0f64..50.0, 200),
    )
        .prop_map(|(rows, mut payload)| {
            payload.truncate(rows.len());
            while payload.len() < rows.len() {
                payload.push(1.0);
            }
            (rows, payload)
        })
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]

    /// §5.1: incremental aggregate computation == naive full execution, for
    /// every grid point in the first layers, for COUNT and SUM.
    #[test]
    fn incremental_equals_naive(
        (rows, payload) in rows_strategy(2),
        bound0 in 5.0f64..60.0,
        bound1 in 5.0f64..60.0,
        use_sum in any::<bool>(),
    ) {
        let dims = 2;
        let catalog = build_catalog(dims, &rows, &payload);
        let agg = if use_sum {
            AggregateSpec::sum(ColRef::new("t", "v"))
        } else {
            AggregateSpec::count()
        };
        let query = query_for(dims, &[bound0, bound1], agg, 10.0);
        let cfg = AcquireConfig::default();
        let space = RefinedSpace::new(&query, &cfg).unwrap();
        let caps = space.caps();
        let mut exec = Executor::new(catalog);
        let mut eval = CachedScoreEvaluator::new(&mut exec, &query, &caps).unwrap();
        let mut explorer = Explorer::new();
        let mut expander = BfsExpander::new(&space);
        while let Some(p) = expander.next_query() {
            let layer = RefinedSpace::l1_layer(&p);
            if layer > 8 { break; }
            let inc = explorer.compute_aggregate(&mut eval, &space, &p, layer).unwrap().value();
            let naive = eval.full_aggregate(&space.bounds(&p)).unwrap().value();
            match (inc, naive) {
                (Some(a), Some(b)) => prop_assert!((a - b).abs() < 1e-9, "{p:?}: {a} vs {b}"),
                (a, b) => prop_assert_eq!(a, b),
            }
        }
    }

    /// Theorem 2 + Theorem 3 for both expanders on random limit shapes.
    #[test]
    fn expanders_are_ordered(
        limits in prop::collection::vec(0u32..6, 1..4),
        linf in any::<bool>(),
    ) {
        // Build a query whose per-dimension domains produce these limits.
        let dims = limits.len();
        let mut b = AcqQuery::builder().table("t");
        let cfg = AcquireConfig::default();
        let step = cfg.gamma / dims as f64;
        for (i, &l) in limits.iter().enumerate() {
            // interval [0, 10], max useful score = l * step  => domain hi.
            let hi = 10.0 + (f64::from(l) * step) / 100.0 * 10.0;
            b = b.predicate(
                Predicate::select(
                    ColRef::new("t", format!("x{i}")),
                    Interval::new(0.0, 10.0),
                    RefineSide::Upper,
                )
                .with_domain(Interval::new(0.0, hi)),
            );
        }
        let q = b
            .constraint(AggConstraint::new(AggregateSpec::count(), CmpOp::Eq, 5.0))
            .build()
            .unwrap();
        let cfg = if linf { cfg.with_norm(Norm::LInf) } else { cfg };
        let space = RefinedSpace::new(&q, &cfg).unwrap();
        let mut points = Vec::new();
        if linf {
            let mut e = LinfExpander::new(&space);
            while let Some(p) = e.next_query() { points.push(p); }
        } else {
            let mut e = BfsExpander::new(&space);
            while let Some(p) = e.next_query() { points.push(p); }
        }
        // Exhaustive and unique.
        let expected: usize = space.limits().iter().map(|&l| l as usize + 1).product();
        prop_assert_eq!(points.len(), expected);
        let set: std::collections::HashSet<_> = points.iter().cloned().collect();
        prop_assert_eq!(set.len(), points.len());
        // Non-decreasing layers.
        let layer = |p: &[u32]| if linf {
            RefinedSpace::linf_layer(p)
        } else {
            RefinedSpace::l1_layer(p)
        };
        for w in points.windows(2) {
            prop_assert!(layer(&w[0]) <= layer(&w[1]));
        }
        // Containment order (Theorem 3): a point emitted later is never
        // contained in (component-wise <=) an earlier point.
        for (i, a) in points.iter().enumerate() {
            for b in points.iter().skip(i + 1) {
                let b_contained_in_a = b.iter().zip(a).all(|(x, y)| x <= y) && a != b;
                prop_assert!(!b_contained_in_a,
                    "{b:?} is contained in {a:?} but was emitted later");
            }
        }
        // Sanity for the f64 dominance helper too.
        prop_assert!(dominates(&[0.0, 1.0], &[0.0, 1.0]));
    }

    /// Full-run invariant: on random data the recommended refinement always
    /// verifies against an independent executor and respects delta.
    #[test]
    fn acquire_outcome_verifies(
        (rows, payload) in rows_strategy(2),
        ratio_pct in 15u32..90,
    ) {
        let catalog = build_catalog(2, &rows, &payload);
        let query = query_for(2, &[20.0, 20.0], AggregateSpec::count(), 1.0);
        // Compute A_actual, then target via the ratio.
        let mut exec = Executor::new(catalog.clone());
        let rq = exec.resolve(&query).unwrap();
        let rel = exec.base_relation(&rq, &[0.0, 0.0]).unwrap();
        let actual = exec.full_aggregate(&rq, &rel, &[0.0, 0.0]).unwrap().value().unwrap();
        prop_assume!(actual >= 1.0);
        let mut query = query;
        query.constraint.target = actual / (f64::from(ratio_pct) / 100.0);

        let mut exec = Executor::new(catalog.clone());
        let out = run_acquire(&mut exec, &query, &AcquireConfig::default(), EvalLayerKind::GridIndex)
            .unwrap();
        let best = out.best().or(out.closest.as_ref()).unwrap().clone();
        // Independent verification.
        let mut exec2 = Executor::new(catalog);
        let rq2 = exec2.resolve(&query).unwrap();
        let rel2 = exec2.base_relation(&rq2, &best.pscores).unwrap();
        let verified = exec2
            .full_aggregate(&rq2, &rel2, &best.pscores)
            .unwrap()
            .value()
            .unwrap();
        prop_assert!((verified - best.aggregate).abs() < 1e-9);
        if out.satisfied {
            prop_assert!(best.error <= 0.05 + 1e-12);
        }
    }
}

//! End-to-end: SQL text → parse → bind → ACQUIRE → independently verify the
//! recommended refined query by re-executing it against the engine.

use acquire::core::{run_acquire, AcquireConfig, EvalLayerKind};
use acquire::datagen::{tpch, users, GenConfig};
use acquire::engine::{Catalog, Executor};
use acquire::sql::compile;

/// Re-executes a refinement (given as flexible-predicate PScores) and
/// returns the aggregate, using a fresh executor so no state is shared with
/// the search.
fn independent_aggregate(
    catalog: &Catalog,
    query: &acquire::query::AcqQuery,
    pscores: &[f64],
) -> f64 {
    let mut exec = Executor::new(catalog.clone());
    let mut q = query.clone();
    exec.populate_domains(&mut q).unwrap();
    let rq = exec.resolve(&q).unwrap();
    let rel = exec.base_relation(&rq, pscores).unwrap();
    exec.full_aggregate(&rq, &rel, pscores)
        .unwrap()
        .value()
        .unwrap_or(f64::NAN)
}

#[test]
fn count_acq_from_sql_meets_target_and_verifies() {
    let mut catalog = Catalog::new();
    catalog
        .register(users::users(&GenConfig::uniform(20_000)).unwrap())
        .unwrap();
    let query = compile(
        "SELECT * FROM users CONSTRAINT COUNT(*) = 5K \
         WHERE 25 <= age <= 35 AND income <= 80000",
        &catalog,
    )
    .unwrap();

    let mut exec = Executor::new(catalog.clone());
    let out = run_acquire(
        &mut exec,
        &query,
        &AcquireConfig::default(),
        EvalLayerKind::GridIndex,
    )
    .unwrap();
    assert!(out.satisfied, "target should be reachable");
    let best = out.best().unwrap();
    assert!(best.error <= 0.05);

    // The reported aggregate must match an independent re-execution.
    let mut q = query.clone();
    Executor::new(catalog.clone())
        .populate_domains(&mut q)
        .unwrap();
    let verified = independent_aggregate(&catalog, &q, &best.pscores);
    assert_eq!(
        verified, best.aggregate,
        "search result must reproduce independently"
    );
    assert!((verified - 5_000.0).abs() / 5_000.0 <= 0.05);
}

#[test]
fn q2_sum_acq_from_sql_with_joins() {
    let catalog = tpch::generate_q2(&GenConfig::uniform(20_000)).unwrap();
    let query = compile(
        "SELECT * FROM supplier, part, partsupp \
         CONSTRAINT SUM(ps_availqty) >= 50K \
         WHERE (s_suppkey = ps_suppkey) NOREFINE AND (p_partkey = ps_partkey) NOREFINE \
         AND (p_retailprice < 1000) AND (s_acctbal < 2000)",
        &catalog,
    )
    .unwrap();
    assert_eq!(query.structural_joins.len(), 2);
    assert_eq!(query.dims(), 2);

    let mut exec = Executor::new(catalog.clone());
    let out = run_acquire(
        &mut exec,
        &query,
        &AcquireConfig::default(),
        EvalLayerKind::GridIndex,
    )
    .unwrap();
    let best = out.best().or(out.closest.as_ref()).unwrap().clone();
    // Hinge semantics: satisfied means >= 95% of the target.
    if out.satisfied {
        assert!(
            best.aggregate >= 50_000.0 * 0.95,
            "aggregate {}",
            best.aggregate
        );
    }
    // Verify independently.
    let mut q = query.clone();
    Executor::new(catalog.clone())
        .populate_domains(&mut q)
        .unwrap();
    let verified = independent_aggregate(&catalog, &q, &best.pscores);
    assert!((verified - best.aggregate).abs() < 1e-6);
}

#[test]
fn all_evaluation_layers_agree_end_to_end() {
    let mut catalog = Catalog::new();
    catalog
        .register(users::users(&GenConfig::uniform(10_000)).unwrap())
        .unwrap();
    let query = compile(
        "SELECT * FROM users CONSTRAINT COUNT(*) = 3K WHERE income <= 50000 AND age <= 30",
        &catalog,
    )
    .unwrap();
    let mut results = Vec::new();
    for kind in [
        EvalLayerKind::Scan,
        EvalLayerKind::CachedScore,
        EvalLayerKind::GridIndex,
    ] {
        let mut exec = Executor::new(catalog.clone());
        let out = run_acquire(&mut exec, &query, &AcquireConfig::default(), kind).unwrap();
        let best = out.best().or(out.closest.as_ref()).unwrap().clone();
        results.push((out.satisfied, best.qscore, best.aggregate, out.explored));
    }
    assert_eq!(results[0], results[1]);
    assert_eq!(results[0], results[2]);
}

#[test]
fn refined_sql_recompiles_to_a_superset_query() {
    // ACQUIRE's output SQL is itself a valid ACQ statement: recompiling and
    // running it unrefined must reproduce the recommended aggregate
    // (closure of the dialect under refinement).
    let mut catalog = Catalog::new();
    catalog
        .register(users::users(&GenConfig::uniform(10_000)).unwrap())
        .unwrap();
    let query = compile(
        "SELECT * FROM users CONSTRAINT COUNT(*) = 4K WHERE income <= 60000",
        &catalog,
    )
    .unwrap();
    let mut exec = Executor::new(catalog.clone());
    let out = run_acquire(
        &mut exec,
        &query,
        &AcquireConfig::default(),
        EvalLayerKind::GridIndex,
    )
    .unwrap();
    let best = out.best().expect("reachable");

    let recompiled = compile(&best.sql, &catalog).expect("output SQL is valid ACQ input");
    let mut exec2 = Executor::new(catalog.clone());
    let mut q2 = recompiled.clone();
    exec2.populate_domains(&mut q2).unwrap();
    let rq = exec2.resolve(&q2).unwrap();
    let zeros = vec![0.0; q2.dims()];
    let rel = exec2.base_relation(&rq, &zeros).unwrap();
    let n = exec2
        .full_aggregate(&rq, &rel, &zeros)
        .unwrap()
        .value()
        .unwrap();
    // Display rounding of bounds may admit a tuple more or less.
    assert!(
        (n - best.aggregate).abs() <= best.aggregate * 0.01 + 2.0,
        "recompiled {} vs recommended {}",
        n,
        best.aggregate
    );
}

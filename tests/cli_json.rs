//! `acq --json` output contract tests (hand-rolled JSON must stay valid and
//! stable enough to script against).

use std::process::Command;

fn acq_json(sql: &str) -> String {
    let out = Command::new(env!("CARGO_BIN_EXE_acq"))
        .args([
            "--demo",
            "users",
            "--demo-rows",
            "3000",
            "--json",
            "--top",
            "3",
            sql,
        ])
        .output()
        .expect("binary runs");
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    String::from_utf8(out.stdout).expect("utf8")
}

/// A tiny structural JSON validator: object/array/string/number/bool/null
/// with correct nesting — enough to prove the output is machine-parseable
/// without pulling in a JSON dependency.
fn validate_json(s: &str) -> Result<(), String> {
    let b: Vec<char> = s.trim().chars().collect();
    let mut i = 0usize;
    fn ws(b: &[char], i: &mut usize) {
        while *i < b.len() && b[*i].is_whitespace() {
            *i += 1;
        }
    }
    fn value(b: &[char], i: &mut usize) -> Result<(), String> {
        ws(b, i);
        match b.get(*i) {
            Some('{') => {
                *i += 1;
                ws(b, i);
                if b.get(*i) == Some(&'}') {
                    *i += 1;
                    return Ok(());
                }
                loop {
                    ws(b, i);
                    string(b, i)?;
                    ws(b, i);
                    if b.get(*i) != Some(&':') {
                        return Err(format!("expected ':' at {i}"));
                    }
                    *i += 1;
                    value(b, i)?;
                    ws(b, i);
                    match b.get(*i) {
                        Some(',') => *i += 1,
                        Some('}') => {
                            *i += 1;
                            return Ok(());
                        }
                        other => return Err(format!("expected ',' or '}}' at {i}: {other:?}")),
                    }
                }
            }
            Some('[') => {
                *i += 1;
                ws(b, i);
                if b.get(*i) == Some(&']') {
                    *i += 1;
                    return Ok(());
                }
                loop {
                    value(b, i)?;
                    ws(b, i);
                    match b.get(*i) {
                        Some(',') => *i += 1,
                        Some(']') => {
                            *i += 1;
                            return Ok(());
                        }
                        other => return Err(format!("expected ',' or ']' at {i}: {other:?}")),
                    }
                }
            }
            Some('"') => string(b, i),
            Some(c) if c.is_ascii_digit() || *c == '-' => {
                while *i < b.len()
                    && (b[*i].is_ascii_digit() || matches!(b[*i], '.' | '-' | '+' | 'e' | 'E'))
                {
                    *i += 1;
                }
                Ok(())
            }
            Some('t') | Some('f') | Some('n') => {
                while *i < b.len() && b[*i].is_ascii_alphabetic() {
                    *i += 1;
                }
                Ok(())
            }
            other => Err(format!("unexpected {other:?} at {i}")),
        }
    }
    fn string(b: &[char], i: &mut usize) -> Result<(), String> {
        if b.get(*i) != Some(&'"') {
            return Err(format!("expected '\"' at {i}"));
        }
        *i += 1;
        while let Some(&c) = b.get(*i) {
            match c {
                '\\' => *i += 2,
                '"' => {
                    *i += 1;
                    return Ok(());
                }
                _ => *i += 1,
            }
        }
        Err("unterminated string".to_string())
    }
    value(&b, &mut i)?;
    ws(&b, &mut i);
    if i != b.len() {
        return Err(format!("trailing content at {i}"));
    }
    Ok(())
}

#[test]
fn json_output_is_valid_and_complete() {
    let out = acq_json(
        "SELECT * FROM users CONSTRAINT COUNT(*) = 1K WHERE age <= 30 AND income <= 60000",
    );
    validate_json(&out).unwrap_or_else(|e| panic!("{e}\n{out}"));
    for key in [
        "\"satisfied\":true",
        "\"original_aggregate\":",
        "\"queries\":[",
        "\"pscores\":[",
        "\"sql\":\"SELECT * FROM users",
        "\"stats\":{",
        // Every engine work counter, not a hand-picked subset.
        "\"cell_queries\":",
        "\"full_queries\":",
        "\"tuples_scanned\":",
        "\"rows_joined\":",
        "\"index_probes\":",
        "\"cells_skipped\":",
        // --json always carries a metrics snapshot.
        "\"metrics\":{",
        "\"cells_executed\":",
        "\"at_most_once_violations\":0",
        "\"cell_latency_ns\":{",
        "\"exec_stats\":{",
    ] {
        assert!(out.contains(key), "missing {key}\n{out}");
    }
}

#[test]
fn json_output_on_unsatisfiable_has_closest() {
    let out = acq_json(
        "SELECT * FROM users CONSTRAINT COUNT(*) = 9M WHERE age <= 30 AND income <= 60000",
    );
    validate_json(&out).unwrap_or_else(|e| panic!("{e}\n{out}"));
    assert!(out.contains("\"satisfied\":false"), "{out}");
    assert!(out.contains("\"closest\":{"), "{out}");
    assert!(out.contains("\"queries\":[]"), "{out}");
}

#[test]
fn validator_rejects_garbage() {
    assert!(validate_json("{\"a\":1,}").is_err());
    assert!(validate_json("{\"a\" 1}").is_err());
    assert!(validate_json("[1, 2").is_err());
    assert!(validate_json("{} trailing").is_err());
    assert!(validate_json("{\"a\": [true, null, -1.5e3, \"s\\\"q\"]}").is_ok());
}
